#!/usr/bin/env python
"""HPC checkpoint/restore: the paper's motivating cluster scenario.

The introduction motivates the system with high-performance-computing
clusters: when a user's time slot ends, the job's checkpoint data migrates
to tape; when the slot comes around again, the whole working set must be
restored quickly.  Unlike the paper's random-membership workload, this
scenario has *perfectly clustered* requests: each project always restores
exactly its own checkpoint files (plus a shared software stack that every
project needs) — the regime the parallel batch scheme was designed for.

We build that workload directly with the catalog API (no generator) and
compare restore bandwidth across the three schemes.

Usage::

    python examples/hpc_checkpoint_restore.py
"""

import numpy as np

from repro import (
    ClusterProbabilityPlacement,
    ObjectCatalog,
    ObjectProbabilityPlacement,
    ParallelBatchPlacement,
    Request,
    RequestSet,
    SimulationSession,
    Workload,
)
from repro.experiments import default_settings
from repro.workload import bounded_pareto, zipf_probabilities

NUM_PROJECTS = 40
FILES_PER_PROJECT = 25
SHARED_STACK_FILES = 30  # software stack restored by every project
SEED = 7


def build_workload() -> Workload:
    rng = np.random.default_rng(SEED)

    # Shared software stack: small, hot files.
    shared_sizes = bounded_pareto(rng, SHARED_STACK_FILES, 50.0, 500.0, shape=1.2)

    # Per-project checkpoints: one big state dump plus auxiliary files.
    project_files = []
    for _ in range(NUM_PROJECTS):
        sizes = bounded_pareto(rng, FILES_PER_PROJECT - 1, 100.0, 2_000.0, shape=1.1)
        state_dump = rng.uniform(8_000.0, 20_000.0)  # 8-20 GB
        project_files.append(np.concatenate([[state_dump], sizes]))

    sizes = np.concatenate([shared_sizes] + project_files)
    catalog = ObjectCatalog(sizes)

    # One restore request per project: its own files + the shared stack.
    # Slot scheduling makes some projects far more active than others.
    popularity = zipf_probabilities(NUM_PROJECTS, alpha=0.8)
    shared_ids = tuple(range(SHARED_STACK_FILES))
    requests = []
    offset = SHARED_STACK_FILES
    for p in range(NUM_PROJECTS):
        own = tuple(range(offset, offset + FILES_PER_PROJECT))
        offset += FILES_PER_PROJECT
        requests.append(Request(p, shared_ids + own, float(popularity[p])))
    return Workload(catalog, RequestSet(requests))


def main() -> None:
    workload = build_workload()
    spec = default_settings(scale="small").spec()
    print(f"cluster archive: {workload!r}")
    print(f"average restore set: {workload.average_request_size_mb / 1e3:.1f} GB\n")

    print(f"{'scheme':<22} {'restore bandwidth':>18} {'avg restore time':>17}")
    results = {}
    for scheme in (
        ParallelBatchPlacement(m=4),
        ObjectProbabilityPlacement(),
        ClusterProbabilityPlacement(),
    ):
        session = SimulationSession(workload, spec, scheme=scheme)
        result = session.evaluate(num_samples=60, seed=2)
        results[scheme.name] = result
        print(
            f"{scheme.name:<22} {result.avg_bandwidth_mb_s:>13.1f} MB/s"
            f" {result.avg_response_s:>15.1f} s"
        )

    pb = results["parallel_batch"]
    print(
        f"\nwith perfectly clustered restores, parallel batch serves each project "
        f"from one tape batch: {pb.avg_switches_per_request:.1f} switches and "
        f"{pb.avg_drives_per_request:.1f} parallel drives per restore."
    )


if __name__ == "__main__":
    main()
