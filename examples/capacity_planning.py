#!/usr/bin/env python
"""Capacity planning: how many switch drives and libraries do we need?

Uses the experiment API to answer a procurement question: given the
workload, sweep the number of switch drives (m) and the number of
libraries, and report the smallest configuration meeting a restore
bandwidth target.  This is Figures 5 + 8 of the paper turned into a
planning tool.

Usage::

    python examples/capacity_planning.py
"""

from repro import ParallelBatchPlacement, PlacementError, SimulationSession
from repro.experiments import default_settings, paper_workload

BANDWIDTH_TARGET_MB_S = 150.0


def main() -> None:
    settings = default_settings(scale="small", num_samples=30)
    workload = paper_workload(settings)
    print(f"workload: {workload!r}")
    print(f"target:   >= {BANDWIDTH_TARGET_MB_S:.0f} MB/s effective restore bandwidth\n")

    print("step 1 — pick m (switch drives per library) on the full system:")
    spec = settings.spec()
    best_m, best_bw = None, 0.0
    for m in range(1, spec.library.num_drives):
        session = SimulationSession(workload, spec, scheme=ParallelBatchPlacement(m=m))
        bw = session.evaluate(num_samples=settings.samples, seed=4).avg_bandwidth_mb_s
        marker = ""
        if bw > best_bw:
            best_m, best_bw, marker = m, bw, "  <- best so far"
        print(f"  m={m}: {bw:7.1f} MB/s{marker}")
    print(f"  chosen m = {best_m}\n")

    print("step 2 — smallest library count meeting the target:")
    chosen = None
    for n in range(1, 7):
        spec_n = settings.spec(num_libraries=n)
        try:
            session = SimulationSession(
                workload, spec_n, scheme=ParallelBatchPlacement(m=best_m)
            )
        except PlacementError:
            print(f"  {n} libraries: workload does not fit ({workload.total_size_mb / 1e6:.1f} TB)")
            continue
        bw = session.evaluate(num_samples=settings.samples, seed=4).avg_bandwidth_mb_s
        ok = bw >= BANDWIDTH_TARGET_MB_S
        print(f"  {n} libraries: {bw:7.1f} MB/s {'MEETS TARGET' if ok else ''}")
        if ok and chosen is None:
            chosen = n
    if chosen is None:
        print("\nno tested configuration meets the target; add libraries or faster drives")
    else:
        print(f"\nrecommendation: {chosen} libraries with m={best_m} switch drives each")


if __name__ == "__main__":
    main()
