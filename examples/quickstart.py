#!/usr/bin/env python
"""Quickstart: place a workload, serve requests, read the paper's metrics.

Runs a scaled-down configuration (~2 s).  For the paper's full scale swap
``scale="small"`` for ``scale="paper"``.

Usage::

    python examples/quickstart.py
"""

from repro import (
    ClusterProbabilityPlacement,
    ObjectProbabilityPlacement,
    ParallelBatchPlacement,
    SimulationSession,
)
from repro.experiments import default_settings, paper_workload


def main() -> None:
    settings = default_settings(scale="small", num_samples=40)

    # 1. A synthetic workload with the paper's structure: power-law object
    #    sizes, 20-40 objects per request, Zipf request popularity.
    workload = paper_workload(settings)
    print(f"workload: {workload!r}")

    # 2. The simulated hardware: n libraries x (robot + d drives + tapes),
    #    IBM LTO-3 / STK L80 timing constants (Table 1 of the paper).
    spec = settings.spec()
    print(
        f"system:   {spec.num_libraries} libraries x {spec.library.num_drives} drives, "
        f"{spec.total_capacity_mb / 1e6:.1f} TB total\n"
    )

    # 3. Place with each scheme and serve the same sampled request stream.
    print(f"{'scheme':<22} {'bandwidth':>10} {'response':>9} {'switch':>8} {'seek':>7} {'transfer':>9}")
    for scheme in (
        ParallelBatchPlacement(m=4),
        ObjectProbabilityPlacement(),
        ClusterProbabilityPlacement(),
    ):
        session = SimulationSession(workload, spec, scheme=scheme)
        result = session.evaluate(num_samples=settings.samples, seed=1)
        print(
            f"{scheme.name:<22} {result.avg_bandwidth_mb_s:>7.1f} MB/s"
            f" {result.avg_response_s:>8.1f}s {result.avg_switch_s:>7.1f}s"
            f" {result.avg_seek_s:>6.1f}s {result.avg_transfer_s:>8.1f}s"
        )

    print(
        "\nparallel batch placement trades a little transfer parallelism for far "
        "fewer tape switches — the paper's headline result."
    )


if __name__ == "__main__":
    main()
