#!/usr/bin/env python
"""Offered-load study: when does the archive saturate, and does placement
buy real headroom?

The paper evaluates isolated restores.  An operator cares about the
*stream*: restores arrive all day, and the question is how many per hour
the system absorbs before the queue explodes — and whether a better
placement scheme moves that knee.  Uses the FCFS queueing layer plus the
paired-comparison statistics.

Usage::

    python examples/offered_load_study.py
"""

from repro import ParallelBatchPlacement, ObjectProbabilityPlacement, SimulationSession
from repro.analysis import compare_paired
from repro.experiments import default_settings, paper_workload
from repro.sim import simulate_fcfs_queue

RATES_PER_HOUR = (2.0, 5.0, 10.0, 20.0, 40.0)
NUM_ARRIVALS = 50


def main() -> None:
    settings = default_settings(scale="small")
    workload = paper_workload(settings)
    spec = settings.spec()

    sessions = {
        "parallel_batch": SimulationSession(
            workload, spec, scheme=ParallelBatchPlacement(m=4)
        ),
        "object_probability": SimulationSession(
            workload, spec, scheme=ObjectProbabilityPlacement()
        ),
    }

    print("mean sojourn time (minutes) per restore vs arrival rate:\n")
    print(f"{'arrivals/h':>10} | {'parallel batch':>15} | {'object prob':>12} | {'pb util':>8}")
    knee = {}
    for rate in RATES_PER_HOUR:
        row = []
        util = 0.0
        for name, session in sessions.items():
            result = simulate_fcfs_queue(session, rate, num_arrivals=NUM_ARRIVALS, seed=9)
            row.append(result.mean_sojourn_s / 60.0)
            if name == "parallel_batch":
                util = result.utilization
                if util > 0.8 and "parallel_batch" not in knee:
                    knee["parallel_batch"] = rate
        print(f"{rate:>10.0f} | {row[0]:>15.1f} | {row[1]:>12.1f} | {util:>8.2f}")

    # Statistical comparison of the underlying service times.
    a = sessions["parallel_batch"].evaluate(num_samples=40, seed=3)
    b = sessions["object_probability"].evaluate(num_samples=40, seed=3)
    comparison = compare_paired(a, b, metric="response_s")
    print(f"\nservice-time comparison: {comparison}")
    print(
        "\nthe sojourn gap at high load is larger than this service gap — a "
        "faster scheme drains the queue, so its advantage compounds."
    )


if __name__ == "__main__":
    main()
