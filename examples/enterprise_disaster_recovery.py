#!/usr/bin/env python
"""Enterprise disaster recovery: restore-time SLAs from a tape archive.

The paper's second motivating scenario: a data center periodically backs up
departmental data sets to tape; after a loss, "the total restore time has to
be minimized to reduce enterprise financial losses."  Here we ask the
operational question the paper's metrics support: *what restore time can we
promise per department (p50 / p95), and does the placement scheme change
which SLA we can sign?*

Departments have heterogeneous footprints (a few huge databases, many small
file shares) and correlated restores (an application restore pulls its
database plus its file shares).

Usage::

    python examples/enterprise_disaster_recovery.py
"""

import numpy as np

from repro import (
    ClusterProbabilityPlacement,
    ObjectCatalog,
    ObjectProbabilityPlacement,
    ParallelBatchPlacement,
    Request,
    RequestSet,
    SimulationSession,
    Workload,
)
from repro.experiments import default_settings
from repro.workload import bounded_pareto

NUM_DEPARTMENTS = 30
SEED = 11


def build_workload() -> Workload:
    rng = np.random.default_rng(SEED)
    sizes_list = []
    requests = []
    next_id = 0
    for dept in range(NUM_DEPARTMENTS):
        # Footprint mix: 1-3 databases (big) + 10-30 file shares (small).
        n_db = int(rng.integers(1, 4))
        n_fs = int(rng.integers(10, 31))
        db_sizes = rng.uniform(5_000.0, 25_000.0, n_db)  # 5-25 GB
        fs_sizes = bounded_pareto(rng, n_fs, 50.0, 3_000.0, shape=1.1)
        members = tuple(range(next_id, next_id + n_db + n_fs))
        next_id += n_db + n_fs
        sizes_list.append(np.concatenate([db_sizes, fs_sizes]))
        # Restore likelihood ~ how often the department's apps churn.
        requests.append(Request(dept, members, float(rng.uniform(0.5, 2.0))))
    catalog = ObjectCatalog(np.concatenate(sizes_list))
    return Workload(catalog, RequestSet(requests))


def percentile_report(name: str, responses: np.ndarray) -> str:
    p50, p95, worst = np.percentile(responses, [50, 95, 100])
    return (
        f"{name:<22} p50 {p50 / 60:>6.1f} min   p95 {p95 / 60:>6.1f} min   "
        f"worst {worst / 60:>6.1f} min"
    )


def main() -> None:
    workload = build_workload()
    spec = default_settings(scale="small").spec()
    print(f"enterprise archive: {workload!r}")
    print(f"average department restore: {workload.average_request_size_mb / 1e3:.1f} GB\n")

    print("department-restore SLA analysis (over 90 sampled restores):")
    for scheme in (
        ParallelBatchPlacement(m=4),
        ObjectProbabilityPlacement(),
        ClusterProbabilityPlacement(),
    ):
        session = SimulationSession(workload, spec, scheme=scheme)
        result = session.evaluate(num_samples=90, seed=3)
        responses = np.array([m.response_s for m in result.samples])
        print("  " + percentile_report(scheme.name, responses))

    print(
        "\nthe p95 (not the mean) is what an SLA is signed against — tail "
        "restores are dominated by tape switches, which is exactly what the "
        "parallel batch placement attacks."
    )


if __name__ == "__main__":
    main()
