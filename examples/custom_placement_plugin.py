#!/usr/bin/env python
"""Writing your own placement scheme against the public API.

Implements a deliberately simple strategy — *size-tiered placement*: small
objects (cheap to seek past, likely metadata) go to a hot always-available
tier, large objects fill the remaining tapes round-robin — registers it in
the scheme registry, and benchmarks it against the paper's three schemes.

The point is the API surface: a scheme only needs to produce a
:class:`PlacementResult` (layouts + initial mounts + tape priorities); the
simulator, metrics, and experiment tooling then work unchanged.

Usage::

    python examples/custom_placement_plugin.py
"""

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro import (
    ObjectExtent,
    PlacementResult,
    PlacementScheme,
    SimulationSession,
    SystemSpec,
    TapeId,
    Workload,
    make_scheme,
    register_scheme,
)
from repro.experiments import default_settings, default_schemes, paper_workload
from repro.placement import organ_pipe_extents


@dataclass
class SizeTieredPlacement(PlacementScheme):
    """Small objects on a hot tier, big objects round-robin elsewhere."""

    #: Objects below this size go to the hot tier.
    small_threshold_mb: float = 1000.0
    k: float = 0.9

    name = "size_tiered"

    def place(self, workload: Workload, spec: SystemSpec) -> PlacementResult:
        catalog = workload.catalog
        n, d, t = spec.num_libraries, spec.library.num_drives, spec.library.num_tapes
        fill = self.k * spec.library.tape.capacity_mb

        sizes = np.asarray(catalog.sizes_mb)
        small_first = np.lexsort((np.arange(len(catalog)), sizes))  # smallest first

        # Tapes interleaved across libraries; the first n*d tapes form the
        # hot tier and are mounted at startup.
        tape_order = [
            TapeId(lib, slot) for slot in range(t) for lib in range(n)
        ]
        assignment: Dict[TapeId, List[int]] = {tid: [] for tid in tape_order}
        used = {tid: 0.0 for tid in tape_order}

        cursor = 0
        for object_id in small_first:
            object_id = int(object_id)
            size = catalog.size_of(object_id)
            for attempt in range(len(tape_order)):
                tid = tape_order[(cursor + attempt) % len(tape_order)]
                if used[tid] + size <= fill + 1e-9:
                    assignment[tid].append(object_id)
                    used[tid] += size
                    cursor = (cursor + attempt + 1) % len(tape_order)
                    break
            else:
                raise RuntimeError("capacity exhausted")

        layouts = {
            tid: organ_pipe_extents(objs, catalog)
            for tid, objs in assignment.items()
            if objs
        }
        priority = {
            tid: self.total_priority(extents, catalog) for tid, extents in layouts.items()
        }
        mounts = self.default_initial_mounts(layouts, priority, spec)
        return PlacementResult(
            scheme=self.name,
            layouts=layouts,
            initial_mounts=mounts,
            tape_priority=priority,
        )


def main() -> None:
    register_scheme(SizeTieredPlacement.name, SizeTieredPlacement)
    print("registered custom scheme:", make_scheme("size_tiered"))

    settings = default_settings(scale="small", num_samples=40)
    workload = paper_workload(settings)
    spec = settings.spec()

    print(f"\n{'scheme':<22} {'bandwidth':>12} {'switches/req':>13}")
    for scheme in default_schemes() + [SizeTieredPlacement()]:
        session = SimulationSession(workload, spec, scheme=scheme)
        result = session.evaluate(num_samples=settings.samples, seed=5)
        print(
            f"{scheme.name:<22} {result.avg_bandwidth_mb_s:>8.1f} MB/s"
            f" {result.avg_switches_per_request:>12.1f}"
        )

    print(
        "\nsize-tiering ignores co-access structure, so it pays many switches — "
        "the same lesson the paper's object-probability baseline teaches."
    )


if __name__ == "__main__":
    main()
