"""Statistical helpers for simulation results.

The paper reports single averages over 200 sampled requests.  For a
credible comparison a user also wants uncertainty: bootstrap confidence
intervals on any metric, and a *paired* scheme comparison (both schemes are
evaluated on the identical sampled request stream, so pairing by sample
index removes most workload noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

import numpy as np

from .sim.metrics import EvaluationResult

__all__ = ["bootstrap_ci", "metric_ci", "PairedComparison", "compare_paired"]


def bootstrap_ci(
    values: Sequence[float],
    stat: Callable[[np.ndarray], float] = np.mean,
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for ``stat`` over ``values``."""
    data = np.asarray(values, dtype=np.float64)
    if data.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if data.size == 1:
        v = float(stat(data))
        return (v, v)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, data.size, size=(n_boot, data.size))
    replicates = np.apply_along_axis(stat, 1, data[idx])
    lo = (1 - confidence) / 2 * 100
    return (
        float(np.percentile(replicates, lo)),
        float(np.percentile(replicates, 100 - lo)),
    )


def metric_ci(
    result: EvaluationResult,
    metric: str = "bandwidth_mb_s",
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> Tuple[float, float]:
    """CI of the mean of a per-request metric (``bandwidth_mb_s``,
    ``response_s``, ``switch_s``, ``seek_s``, ``transfer_s``, …)."""
    values = [getattr(m, metric) for m in result.samples]
    return bootstrap_ci(values, confidence=confidence, n_boot=n_boot, seed=seed)


@dataclass(frozen=True)
class PairedComparison:
    """Outcome of a paired scheme comparison on one metric."""

    metric: str
    scheme_a: str
    scheme_b: str
    mean_a: float
    mean_b: float
    #: Mean of per-sample differences (a − b).
    mean_diff: float
    #: Bootstrap CI of the mean difference.
    diff_ci: Tuple[float, float]
    #: Fraction of samples where a's value is strictly smaller than b's.
    frac_a_lower: float

    @property
    def significant(self) -> bool:
        """True when the CI of the difference excludes zero."""
        lo, hi = self.diff_ci
        return lo > 0 or hi < 0

    def __str__(self) -> str:
        verdict = "significant" if self.significant else "not significant"
        return (
            f"{self.metric}: {self.scheme_a} {self.mean_a:.1f} vs "
            f"{self.scheme_b} {self.mean_b:.1f} "
            f"(diff {self.mean_diff:+.1f}, 95% CI [{self.diff_ci[0]:.1f}, "
            f"{self.diff_ci[1]:.1f}], {verdict})"
        )


def compare_paired(
    a: EvaluationResult,
    b: EvaluationResult,
    metric: str = "response_s",
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> PairedComparison:
    """Paired comparison of two evaluations on the same sample stream.

    Both results must come from ``evaluate()`` with the same ``num_samples``
    and ``seed`` (the runner guarantees this for ``run_comparison``); the
    per-index request ids are checked.
    """
    if len(a) != len(b):
        raise ValueError(f"sample counts differ: {len(a)} vs {len(b)}")
    ids_a = [m.request_id for m in a.samples]
    ids_b = [m.request_id for m in b.samples]
    if ids_a != ids_b:
        raise ValueError(
            "evaluations were not run on the same sampled request stream; "
            "use the same evaluation seed"
        )
    va = np.array([getattr(m, metric) for m in a.samples])
    vb = np.array([getattr(m, metric) for m in b.samples])
    diffs = va - vb
    ci = bootstrap_ci(diffs, confidence=confidence, n_boot=n_boot, seed=seed)
    return PairedComparison(
        metric=metric,
        scheme_a=a.scheme,
        scheme_b=b.scheme,
        mean_a=float(va.mean()),
        mean_b=float(vb.mean()),
        mean_diff=float(diffs.mean()),
        diff_ci=ci,
        frac_a_lower=float(np.mean(va < vb)),
    )
