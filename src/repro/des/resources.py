"""Shared resources with queueing for the DES kernel.

:class:`Resource` models a pool of ``capacity`` identical servers with a FIFO
wait queue; :class:`PriorityResource` serves waiters in priority order.  The
tape-library simulator uses a capacity-1 resource per robot arm, so all
mount/unmount operations within one library serialize behind it while robots
of different libraries proceed independently.

Usage follows the context-manager idiom::

    def user(env, robot):
        with robot.request() as req:
            yield req            # wait until the robot is ours
            yield env.timeout(7.6)
        # released automatically
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import TYPE_CHECKING, List, Optional, Tuple

from .events import Event
from .exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = ["Resource", "PriorityResource", "RequestEvent", "ReleaseEvent"]


class RequestEvent(Event):
    """Event that triggers once the resource grants this request."""

    __slots__ = ("resource", "requested_at")

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource
        #: Simulation time at which the request was issued (for wait stats).
        self.requested_at = resource.env.now
        resource._do_request(self)

    # Context-manager support: ``with resource.request() as req: yield req``
    def __enter__(self) -> "RequestEvent":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.cancel()

    def cancel(self) -> None:
        """Release the slot (if granted) or withdraw from the queue."""
        self.resource._do_cancel(self)


class PriorityRequestEvent(RequestEvent):
    """Request carrying a priority (lower value = served earlier)."""

    __slots__ = ("priority",)

    def __init__(self, resource: "PriorityResource", priority: float = 0.0) -> None:
        self.priority = priority
        super().__init__(resource)


class ReleaseEvent(Event):
    """Immediately-succeeding event produced by :meth:`Resource.release`."""

    __slots__ = ()

    def __init__(self, resource: "Resource", request: RequestEvent) -> None:
        super().__init__(resource.env)
        resource._do_cancel(request)
        self.succeed()


class Resource:
    """A pool of ``capacity`` slots with a FIFO queue.

    Setting :attr:`monitor` (see
    :class:`~repro.des.monitor.ResourceUsageMonitor`) records every
    grant/release with its simulation time — the open-system metrics layer
    uses this for per-resource utilization, and tests use it to assert
    concurrency invariants (e.g. a capacity-1 robot arm is never held
    twice).
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.users: List[RequestEvent] = []
        self.queue: List[RequestEvent] = []
        #: Optional occupancy observer (duck-typed: ``on_grant(now)`` /
        #: ``on_release(now)`` / ``on_enqueue(now)`` / ``on_dequeue(now)``);
        #: None keeps the hot path branch-cheap.
        self.monitor = None

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently in use."""
        return len(self.users)

    def request(self) -> RequestEvent:
        """Ask for a slot; the returned event triggers when granted."""
        return RequestEvent(self)

    def release(self, request: RequestEvent) -> ReleaseEvent:
        """Free the slot held by ``request``."""
        return ReleaseEvent(self, request)

    # -- internals ------------------------------------------------------
    def _do_request(self, request: RequestEvent) -> None:
        if len(self.users) < self._capacity:
            self.users.append(request)
            if self.monitor is not None:
                self.monitor.on_grant(self.env.now)
            request.succeed()
        else:
            self._enqueue(request)
            if self.monitor is not None:
                self.monitor.on_enqueue(self.env.now)

    def _enqueue(self, request: RequestEvent) -> None:
        self.queue.append(request)

    def _dequeue(self) -> Optional[RequestEvent]:
        return self.queue.pop(0) if self.queue else None

    def _remove_queued(self, request: RequestEvent) -> bool:
        try:
            self.queue.remove(request)
            return True
        except ValueError:
            return False

    def _do_cancel(self, request: RequestEvent) -> None:
        if request in self.users:
            self.users.remove(request)
            if self.monitor is not None:
                self.monitor.on_release(self.env.now)
            self._grant_next()
        else:
            if self._remove_queued(request) and self.monitor is not None:
                self.monitor.on_dequeue(self.env.now)

    def _grant_next(self) -> None:
        while len(self.users) < self._capacity:
            nxt = self._dequeue()
            if nxt is None:
                return
            if self.monitor is not None:
                self.monitor.on_dequeue(self.env.now)
            if nxt.triggered:  # withdrawn/cancelled while queued
                continue
            self.users.append(nxt)
            if self.monitor is not None:
                self.monitor.on_grant(self.env.now)
            nxt.succeed()


class PriorityResource(Resource):
    """Resource whose queue is served in (priority, FIFO) order."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        super().__init__(env, capacity)
        self._pqueue: List[Tuple[float, int, PriorityRequestEvent]] = []
        self._tiebreak = count()

    def request(self, priority: float = 0.0) -> PriorityRequestEvent:  # type: ignore[override]
        return PriorityRequestEvent(self, priority)

    @property
    def queue(self) -> List[RequestEvent]:  # type: ignore[override]
        return [entry[2] for entry in sorted(self._pqueue)]

    @queue.setter
    def queue(self, value: List[RequestEvent]) -> None:
        if value:
            raise SimulationError("PriorityResource queue cannot be assigned")
        self._pqueue = []

    def _enqueue(self, request: RequestEvent) -> None:
        assert isinstance(request, PriorityRequestEvent)
        heappush(self._pqueue, (request.priority, next(self._tiebreak), request))

    def _dequeue(self) -> Optional[RequestEvent]:
        while self._pqueue:
            _, _, request = heappop(self._pqueue)
            return request
        return None

    def _remove_queued(self, request: RequestEvent) -> bool:
        for i, (_, _, queued) in enumerate(self._pqueue):
            if queued is request:
                self._pqueue.pop(i)
                # Restore heap invariant after arbitrary removal.
                import heapq

                heapq.heapify(self._pqueue)
                return True
        return False
