"""Lightweight telemetry for simulations.

The tape simulator records *spans* (named intervals with attributes) so that
the metrics layer can decompose response times and tests can assert on
scheduling decisions without reaching into engine internals.

Spans form **causal trees**: every span carries a unique ``span_id``, an
optional ``parent_id`` (the enclosing stage) and an optional ``request_id``
(the retrieval request whose service it belongs to).  Instrumentation points
open spans with the :meth:`Trace.span` context manager, which reads the
simulation clock at entry and exit::

    with trace.span(env, "seek", parent=job_ctx.id, request=req.id, drive=name):
        yield env.timeout(seek_s)

A span closed by an exception (e.g. a drive-failure :class:`Interrupt`
unwinding a worker) is still recorded exactly once, tagged
``aborted=True`` so duration accounting can exclude work that restarted
elsewhere.

Tracing can be globally disabled with ``REPRO_TRACE=0`` in the environment;
a disabled trace's :meth:`~Trace.record` is a bound no-op that allocates no
span, and :meth:`~Trace.span` returns a shared null context manager.
"""

from __future__ import annotations

import os
from sys import intern as _intern
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "SpanContext",
    "Trace",
    "ResourceUsageMonitor",
    "trace_enabled_by_env",
]

_FALSY = {"0", "false", "off", "no"}


def trace_enabled_by_env() -> bool:
    """False when ``REPRO_TRACE`` is set to ``0``/``false``/``off``/``no``."""
    return os.environ.get("REPRO_TRACE", "1").strip().lower() not in _FALSY


class Span:
    """A named interval of simulated time.

    A plain ``__slots__`` class rather than a frozen dataclass: spans are
    the single most-allocated telemetry object (one per instrumented stage),
    and the frozen-dataclass ``object.__setattr__``-per-field constructor
    showed up directly in the kernel profile.  Field order, defaults,
    keyword construction, value equality and the ``end >= start`` check are
    all preserved.

    Attributes
    ----------
    name:
        Category, e.g. ``"transfer"``, ``"rewind"``, ``"robot_wait"``.
    start, end:
        Simulation timestamps; ``end >= start``.
    attrs:
        Free-form context (drive id, tape id, object id, …).
    span_id:
        Unique id within the owning :class:`Trace` (0 for bare literals).
    parent_id:
        The enclosing span's id, or None for a root span.
    request_id:
        The request whose service this span belongs to, if any.
    """

    __slots__ = ("name", "start", "end", "attrs", "span_id", "parent_id", "request_id")

    def __init__(
        self,
        name: str,
        start: float,
        end: float,
        attrs: Optional[Dict[str, Any]] = None,
        span_id: int = 0,
        parent_id: Optional[int] = None,
        request_id: Optional[int] = None,
    ) -> None:
        if end < start:
            raise ValueError(f"span {name!r} ends ({end}) before it starts ({start})")
        self.name = _intern(name)
        self.start = start
        self.end = end
        self.attrs = {} if attrs is None else attrs
        self.span_id = span_id
        self.parent_id = parent_id
        self.request_id = request_id

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def aborted(self) -> bool:
        """True when the instrumented stage unwound with an exception."""
        return bool(self.attrs.get("aborted", False))

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Span):
            return (
                self.name == other.name
                and self.start == other.start
                and self.end == other.end
                and self.attrs == other.attrs
                and self.span_id == other.span_id
                and self.parent_id == other.parent_id
                and self.request_id == other.request_id
            )
        return NotImplemented

    # Like the frozen dataclass it replaces (whose generated hash tripped
    # over the dict field), spans are not hashable.
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (
            f"Span(name={self.name!r}, start={self.start!r}, end={self.end!r}, "
            f"attrs={self.attrs!r}, span_id={self.span_id!r}, "
            f"parent_id={self.parent_id!r}, request_id={self.request_id!r})"
        )


class _NullSpanContext:
    """Shared no-op stand-in returned by a disabled trace (no allocation)."""

    __slots__ = ()
    id: Optional[int] = None
    span: Optional[Span] = None

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class SpanContext:
    """An *open* span: a context manager timing one stage on the DES clock.

    The id is allocated eagerly so nested stages can name this span as
    their parent while it is still open.  ``__exit__`` appends the closed
    span exactly once — re-entering a finished context raises, and an
    exception unwinding the block (worker interrupt) closes the span at the
    interruption time with ``aborted=True``.

    The exit path appends a raw field tuple rather than building a
    :class:`Span`: span objects are materialized lazily by the first query
    (see :meth:`Trace._all`), keeping per-span bookkeeping off the
    per-event hot path.
    """

    __slots__ = ("_trace", "_env", "name", "attrs", "id", "parent_id", "request_id", "_start", "_closed")

    def __init__(self, trace: "Trace", env, name: str, parent: Optional[int], request: Optional[int], attrs: Dict[str, Any]) -> None:
        self._trace = trace
        self._env = env
        self.name = name
        self.attrs = attrs
        sid = trace._next_id
        trace._next_id = sid + 1
        self.id = sid
        self.parent_id = parent
        self.request_id = request
        self._start: Optional[float] = None
        self._closed = False

    def __enter__(self) -> "SpanContext":
        if self._closed:
            raise RuntimeError(f"span context {self.name!r} (id {self.id}) already closed")
        self._start = self._env.now
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        if not self._closed:  # close exactly once
            self._closed = True
            attrs = self.attrs
            if exc_type is not None:
                attrs = dict(attrs)
                attrs["aborted"] = True
            self._trace._spans.append(
                (self.name, self._start, self._env.now, attrs,
                 self.id, self.parent_id, self.request_id)
            )
        return False


def _record_disabled(name: str, start: float, end: float, **attrs: Any) -> None:
    """No-op ``record`` bound onto disabled traces: no span, no append."""
    return None


def _span_disabled(env, name: str, parent=None, request=None, **attrs: Any) -> _NullSpanContext:
    """``span`` shadow for disabled traces: shared null context, no state."""
    return _NULL_SPAN_CONTEXT


class Trace:
    """An append-only collection of spans with causal-tree query helpers.

    Hot-path storage is *lazy*: the :class:`SpanContext` exit path appends a
    raw field tuple, and :class:`Span` objects are only built (in place, at
    most once per entry) when the trace is first queried — which in every
    simulation driver happens after ``env.run()`` returns, so span
    construction never competes with event processing for wall time.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled) and trace_enabled_by_env()
        #: Mixed storage: Span instances (from ``record``/``record_reserved``)
        #: and raw field tuples ``(name, start, end, attrs, span_id,
        #: parent_id, request_id)``, in recording order.  Tuples come from
        #: SpanContext exits and from the engine's guarded seek/transfer
        #: fast lane, which appends here directly.
        self._spans: List[Any] = []
        self._next_id = 1
        self._clean_upto = 0  # entries below this index are Span objects
        if not self.enabled:
            # Shadow the bound methods so the disabled hot path is a plain
            # function call that touches no instance state.
            self.record = _record_disabled  # type: ignore[method-assign]
            self.span = _span_disabled  # type: ignore[method-assign]

    # -- recording --------------------------------------------------------
    def _reserve_id(self) -> int:
        sid = self._next_id
        self._next_id = sid + 1
        return sid

    def _all(self) -> List[Span]:
        """The span list with any raw tuples materialized in place."""
        spans = self._spans
        n = len(spans)
        if self._clean_upto != n:
            for i in range(self._clean_upto, n):
                entry = spans[i]
                if type(entry) is tuple:
                    attrs = entry[3]
                    if type(attrs) is tuple:
                        # Flat (key, value, key, value, ...) from the engine
                        # fast lane: the dict is only built here, lazily.
                        entry = entry[:3] + (dict(zip(attrs[::2], attrs[1::2])),) + entry[4:]
                    spans[i] = Span(*entry)
            self._clean_upto = n
        return spans

    def record(
        self,
        name: str,
        start: float,
        end: float,
        parent: Optional[int] = None,
        request: Optional[int] = None,
        **attrs: Any,
    ) -> Optional[Span]:
        """Append a closed span (no-op when disabled)."""
        if not self.enabled:
            return None
        sid = self._next_id
        self._next_id = sid + 1
        span = Span(name, start, end, attrs, sid, parent, request)
        self._spans.append(span)
        return span

    def reserve_id(self) -> Optional[int]:
        """Reserve a span id to close later via :meth:`record_reserved`.

        Lets a span that *ends* after its children (e.g. a request root
        finalized once every drive lands) still be named as their parent.
        Returns None when disabled.
        """
        if not self.enabled:
            return None
        return self._reserve_id()

    def record_reserved(
        self,
        span_id: Optional[int],
        name: str,
        start: float,
        end: float,
        parent: Optional[int] = None,
        request: Optional[int] = None,
        **attrs: Any,
    ) -> Optional[Span]:
        """Close a span whose id was handed out by :meth:`reserve_id`."""
        if not self.enabled or span_id is None:
            return None
        span = Span(name, start, end, attrs, span_id, parent, request)
        self._spans.append(span)
        return span

    def span(
        self,
        env,
        name: str,
        parent: Optional[int] = None,
        request: Optional[int] = None,
        **attrs: Any,
    ):
        """Open a span as a context manager clocked by ``env.now``.

        Returns a shared null context (``id is None``) when disabled, so
        instrumentation points cost one call and no allocation.
        """
        if not self.enabled:
            return _NULL_SPAN_CONTEXT
        return SpanContext(self, env, name, parent, request, attrs)

    def clear(self) -> None:
        self._spans.clear()
        self._next_id = 1
        self._clean_upto = 0

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._all())

    def spans(self, name: Optional[str] = None, **attrs: Any) -> List[Span]:
        """Spans matching ``name`` and all given attribute values."""
        out = []
        for span in self._all():
            if name is not None and span.name != name:
                continue
            if any(span.attrs.get(k) != v for k, v in attrs.items()):
                continue
            out.append(span)
        return out

    def total(self, name: Optional[str] = None, **attrs: Any) -> float:
        """Summed duration of matching spans."""
        return sum(span.duration for span in self.spans(name, **attrs))

    def busy_time(self, name: Optional[str] = None, **attrs: Any) -> float:
        """Union length of matching spans (overlaps counted once)."""
        intervals = sorted((s.start, s.end) for s in self.spans(name, **attrs))
        total = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for start, end in intervals:
            if cur_start is None:
                cur_start, cur_end = start, end
            elif start <= cur_end:
                cur_end = max(cur_end, end)
            else:
                total += cur_end - cur_start
                cur_start, cur_end = start, end
        if cur_start is not None:
            total += cur_end - cur_start
        return total

    # -- causal-tree views ---------------------------------------------------
    def by_id(self) -> Dict[int, Span]:
        """Map span_id -> span (bare spans with id 0 are excluded)."""
        return {s.span_id: s for s in self._all() if s.span_id}

    def children(self, span_id: int) -> List[Span]:
        """Direct children of one span, in recording order."""
        return [s for s in self._all() if s.parent_id == span_id]

    def roots(self, request_id: Optional[int] = None) -> List[Span]:
        """Parentless spans (optionally restricted to one request)."""
        return [
            s
            for s in self._all()
            if s.parent_id is None
            and (request_id is None or s.request_id == request_id)
        ]

    def request_spans(self, request_id: int) -> List[Span]:
        """Every span attributed to one request, in recording order."""
        return [s for s in self._all() if s.request_id == request_id]

    def leaves(self, request_id: Optional[int] = None) -> List[Span]:
        """Spans with no children (optionally restricted to one request)."""
        all_spans = self._all()
        parents = {s.parent_id for s in all_spans if s.parent_id is not None}
        return [
            s
            for s in all_spans
            if s.span_id not in parents
            and (request_id is None or s.request_id == request_id)
        ]

    def request_ids(self) -> List[int]:
        """Distinct request ids present, in first-seen order."""
        seen: Dict[int, None] = {}
        for s in self._all():
            if s.request_id is not None:
                seen.setdefault(s.request_id, None)
        return list(seen)


class ResourceUsageMonitor:
    """Occupancy accounting for one :class:`~repro.des.resources.Resource`.

    Attach via :meth:`attach` (or assign to ``resource.monitor``); every
    grant and release is then folded into:

    * ``grants`` — total number of grants;
    * ``max_in_use`` — peak concurrent occupancy (the concurrency-invariant
      check: must never exceed the resource's capacity);
    * ``busy_s`` — union time with at least one slot in use;
    * ``slot_busy_s`` — ∫ occupancy dt (per-slot utilization numerator);
    * ``queue_depth`` / ``max_queue_depth`` / ``queue_wait_s`` — live wait
      queue length, its peak, and ∫ depth dt (mean waiters via Little's law).

    Pass a :class:`~repro.obs.MetricsRegistry` to additionally publish the
    live occupancy and queue depth as gauges and the grant count as a
    counter (names ``resource.<name>.in_use`` / ``.queue_depth`` /
    ``.grants``), sampled by the registry's periodic snapshots.
    """

    __slots__ = (
        "name", "grants", "in_use", "max_in_use", "busy_s", "slot_busy_s",
        "_since", "queue_depth", "max_queue_depth", "queue_wait_s",
        "_queue_since", "_grants_counter", "_in_use_gauge", "_queue_gauge",
    )

    def __init__(self, name: str, registry=None) -> None:
        self.name = name
        self.grants = 0
        self.in_use = 0
        self.max_in_use = 0
        self.busy_s = 0.0
        self.slot_busy_s = 0.0
        self._since: Optional[float] = None  # last occupancy change
        self.queue_depth = 0
        self.max_queue_depth = 0
        self.queue_wait_s = 0.0
        self._queue_since: Optional[float] = None
        self._grants_counter = None
        self._in_use_gauge = None
        self._queue_gauge = None
        if registry is not None:
            self.bind_registry(registry)

    def bind_registry(self, registry) -> "ResourceUsageMonitor":
        """Publish live occupancy/queue metrics into ``registry``."""
        self._grants_counter = registry.counter(
            f"resource.{self.name}.grants", unit="grants"
        )
        self._in_use_gauge = registry.gauge(f"resource.{self.name}.in_use", unit="slots")
        self._queue_gauge = registry.gauge(
            f"resource.{self.name}.queue_depth", unit="requests"
        )
        return self

    def attach(self, resource) -> "ResourceUsageMonitor":
        if resource.users:
            raise ValueError(
                f"cannot attach monitor {self.name!r}: resource already has users"
            )
        resource.monitor = self
        return self

    def _settle(self, now: float) -> None:
        if self._since is not None and self.in_use > 0:
            elapsed = now - self._since
            self.busy_s += elapsed
            self.slot_busy_s += elapsed * self.in_use
        self._since = now

    def _settle_queue(self, now: float) -> None:
        if self._queue_since is not None and self.queue_depth > 0:
            self.queue_wait_s += (now - self._queue_since) * self.queue_depth
        self._queue_since = now

    def on_grant(self, now: float) -> None:
        self._settle(now)
        self.grants += 1
        self.in_use += 1
        self.max_in_use = max(self.max_in_use, self.in_use)
        if self._grants_counter is not None:
            self._grants_counter.inc()
            self._in_use_gauge.set(self.in_use, now)

    def on_release(self, now: float) -> None:
        self._settle(now)
        self.in_use -= 1
        if self._in_use_gauge is not None:
            self._in_use_gauge.set(self.in_use, now)

    def on_enqueue(self, now: float) -> None:
        self._settle_queue(now)
        self.queue_depth += 1
        self.max_queue_depth = max(self.max_queue_depth, self.queue_depth)
        if self._queue_gauge is not None:
            self._queue_gauge.set(self.queue_depth, now)

    def on_dequeue(self, now: float) -> None:
        self._settle_queue(now)
        self.queue_depth -= 1
        if self._queue_gauge is not None:
            self._queue_gauge.set(self.queue_depth, now)

    def utilization(self, horizon_s: float, capacity: int = 1) -> float:
        """Mean fraction of ``capacity`` slots busy over ``[0, horizon_s]``."""
        if horizon_s <= 0:
            return 0.0
        return self.slot_busy_s / (horizon_s * capacity)

    def summary(self) -> Dict[str, float]:
        return {
            "grants": self.grants,
            "max_in_use": self.max_in_use,
            "busy_s": self.busy_s,
            "slot_busy_s": self.slot_busy_s,
            "max_queue_depth": self.max_queue_depth,
            "queue_wait_s": self.queue_wait_s,
        }

    def __repr__(self) -> str:
        return (
            f"<ResourceUsageMonitor {self.name}: {self.grants} grants, "
            f"peak {self.max_in_use}, busy {self.busy_s:.1f}s>"
        )
