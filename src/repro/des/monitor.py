"""Lightweight telemetry for simulations.

The tape simulator records *spans* (named intervals with attributes) so that
the metrics layer can decompose response times and tests can assert on
scheduling decisions without reaching into engine internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["Span", "Trace", "ResourceUsageMonitor"]


@dataclass(frozen=True)
class Span:
    """A named interval of simulated time.

    Attributes
    ----------
    name:
        Category, e.g. ``"transfer"``, ``"rewind"``, ``"robot_wait"``.
    start, end:
        Simulation timestamps; ``end >= start``.
    attrs:
        Free-form context (drive id, tape id, object id, …).
    """

    name: str
    start: float
    end: float
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span {self.name!r} ends ({self.end}) before it starts ({self.start})")


class Trace:
    """An append-only collection of spans with simple query helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._spans: List[Span] = []

    def record(self, name: str, start: float, end: float, **attrs: Any) -> Optional[Span]:
        """Append a span (no-op when disabled)."""
        if not self.enabled:
            return None
        span = Span(name, start, end, attrs)
        self._spans.append(span)
        return span

    def clear(self) -> None:
        self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def spans(self, name: Optional[str] = None, **attrs: Any) -> List[Span]:
        """Spans matching ``name`` and all given attribute values."""
        out = []
        for span in self._spans:
            if name is not None and span.name != name:
                continue
            if any(span.attrs.get(k) != v for k, v in attrs.items()):
                continue
            out.append(span)
        return out

    def total(self, name: Optional[str] = None, **attrs: Any) -> float:
        """Summed duration of matching spans."""
        return sum(span.duration for span in self.spans(name, **attrs))

    def busy_time(self, name: Optional[str] = None, **attrs: Any) -> float:
        """Union length of matching spans (overlaps counted once)."""
        intervals = sorted((s.start, s.end) for s in self.spans(name, **attrs))
        total = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for start, end in intervals:
            if cur_start is None:
                cur_start, cur_end = start, end
            elif start <= cur_end:
                cur_end = max(cur_end, end)
            else:
                total += cur_end - cur_start
                cur_start, cur_end = start, end
        if cur_start is not None:
            total += cur_end - cur_start
        return total


class ResourceUsageMonitor:
    """Occupancy accounting for one :class:`~repro.des.resources.Resource`.

    Attach via :meth:`attach` (or assign to ``resource.monitor``); every
    grant and release is then folded into:

    * ``grants`` — total number of grants;
    * ``max_in_use`` — peak concurrent occupancy (the concurrency-invariant
      check: must never exceed the resource's capacity);
    * ``busy_s`` — union time with at least one slot in use;
    * ``slot_busy_s`` — ∫ occupancy dt (per-slot utilization numerator).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.grants = 0
        self.in_use = 0
        self.max_in_use = 0
        self.busy_s = 0.0
        self.slot_busy_s = 0.0
        self._since: Optional[float] = None  # last occupancy change

    def attach(self, resource) -> "ResourceUsageMonitor":
        if resource.users:
            raise ValueError(
                f"cannot attach monitor {self.name!r}: resource already has users"
            )
        resource.monitor = self
        return self

    def _settle(self, now: float) -> None:
        if self._since is not None and self.in_use > 0:
            elapsed = now - self._since
            self.busy_s += elapsed
            self.slot_busy_s += elapsed * self.in_use
        self._since = now

    def on_grant(self, now: float) -> None:
        self._settle(now)
        self.grants += 1
        self.in_use += 1
        self.max_in_use = max(self.max_in_use, self.in_use)

    def on_release(self, now: float) -> None:
        self._settle(now)
        self.in_use -= 1

    def utilization(self, horizon_s: float, capacity: int = 1) -> float:
        """Mean fraction of ``capacity`` slots busy over ``[0, horizon_s]``."""
        if horizon_s <= 0:
            return 0.0
        return self.slot_busy_s / (horizon_s * capacity)

    def summary(self) -> Dict[str, float]:
        return {
            "grants": self.grants,
            "max_in_use": self.max_in_use,
            "busy_s": self.busy_s,
            "slot_busy_s": self.slot_busy_s,
        }

    def __repr__(self) -> str:
        return (
            f"<ResourceUsageMonitor {self.name}: {self.grants} grants, "
            f"peak {self.max_in_use}, busy {self.busy_s:.1f}s>"
        )
