"""Lightweight telemetry for simulations.

The tape simulator records *spans* (named intervals with attributes) so that
the metrics layer can decompose response times and tests can assert on
scheduling decisions without reaching into engine internals.

Spans form **causal trees**: every span carries a unique ``span_id``, an
optional ``parent_id`` (the enclosing stage) and an optional ``request_id``
(the retrieval request whose service it belongs to).  Instrumentation points
open spans with the :meth:`Trace.span` context manager, which reads the
simulation clock at entry and exit::

    with trace.span(env, "seek", parent=job_ctx.id, request=req.id, drive=name):
        yield env.timeout(seek_s)

A span closed by an exception (e.g. a drive-failure :class:`Interrupt`
unwinding a worker) is still recorded exactly once, tagged
``aborted=True`` so duration accounting can exclude work that restarted
elsewhere.

Tracing can be globally disabled with ``REPRO_TRACE=0`` in the environment;
a disabled trace's :meth:`~Trace.record` is a bound no-op that allocates no
span, and :meth:`~Trace.span` returns a shared null context manager.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = [
    "Span",
    "SpanContext",
    "Trace",
    "ResourceUsageMonitor",
    "trace_enabled_by_env",
]

_FALSY = {"0", "false", "off", "no"}


def trace_enabled_by_env() -> bool:
    """False when ``REPRO_TRACE`` is set to ``0``/``false``/``off``/``no``."""
    return os.environ.get("REPRO_TRACE", "1").strip().lower() not in _FALSY


@dataclass(frozen=True)
class Span:
    """A named interval of simulated time.

    Attributes
    ----------
    name:
        Category, e.g. ``"transfer"``, ``"rewind"``, ``"robot_wait"``.
    start, end:
        Simulation timestamps; ``end >= start``.
    attrs:
        Free-form context (drive id, tape id, object id, …).
    span_id:
        Unique id within the owning :class:`Trace` (0 for bare literals).
    parent_id:
        The enclosing span's id, or None for a root span.
    request_id:
        The request whose service this span belongs to, if any.
    """

    name: str
    start: float
    end: float
    attrs: Dict[str, Any] = field(default_factory=dict)
    span_id: int = 0
    parent_id: Optional[int] = None
    request_id: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def aborted(self) -> bool:
        """True when the instrumented stage unwound with an exception."""
        return bool(self.attrs.get("aborted", False))

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"span {self.name!r} ends ({self.end}) before it starts ({self.start})")


class _NullSpanContext:
    """Shared no-op stand-in returned by a disabled trace (no allocation)."""

    __slots__ = ()
    id: Optional[int] = None
    span: Optional[Span] = None

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        return False


_NULL_SPAN_CONTEXT = _NullSpanContext()


class SpanContext:
    """An *open* span: a context manager timing one stage on the DES clock.

    The id is allocated eagerly so nested stages can name this span as
    their parent while it is still open.  ``__exit__`` appends the closed
    span exactly once — re-entering a finished context raises, and an
    exception unwinding the block (worker interrupt) closes the span at the
    interruption time with ``aborted=True``.
    """

    __slots__ = ("_trace", "_env", "name", "attrs", "id", "parent_id", "request_id", "_start", "span")

    def __init__(self, trace: "Trace", env, name: str, parent: Optional[int], request: Optional[int], attrs: Dict[str, Any]) -> None:
        self._trace = trace
        self._env = env
        self.name = name
        self.attrs = attrs
        self.id = trace._reserve_id()
        self.parent_id = parent
        self.request_id = request
        self._start: Optional[float] = None
        self.span: Optional[Span] = None

    def __enter__(self) -> "SpanContext":
        if self.span is not None:
            raise RuntimeError(f"span context {self.name!r} (id {self.id}) already closed")
        self._start = self._env.now
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        if self.span is None:  # close exactly once
            attrs = self.attrs
            if exc_type is not None:
                attrs = dict(attrs)
                attrs["aborted"] = True
            self.span = self._trace._append(
                self.name, self._start, self._env.now, attrs,
                self.id, self.parent_id, self.request_id,
            )
        return False


def _record_disabled(name: str, start: float, end: float, **attrs: Any) -> None:
    """No-op ``record`` bound onto disabled traces: no span, no append."""
    return None


def _span_disabled(env, name: str, parent=None, request=None, **attrs: Any) -> _NullSpanContext:
    """``span`` shadow for disabled traces: shared null context, no state."""
    return _NULL_SPAN_CONTEXT


class Trace:
    """An append-only collection of spans with causal-tree query helpers."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled) and trace_enabled_by_env()
        self._spans: List[Span] = []
        self._next_id = 1
        if not self.enabled:
            # Shadow the bound methods so the disabled hot path is a plain
            # function call that touches no instance state.
            self.record = _record_disabled  # type: ignore[method-assign]
            self.span = _span_disabled  # type: ignore[method-assign]

    # -- recording --------------------------------------------------------
    def _reserve_id(self) -> int:
        sid = self._next_id
        self._next_id += 1
        return sid

    def _append(
        self,
        name: str,
        start: float,
        end: float,
        attrs: Dict[str, Any],
        span_id: int,
        parent_id: Optional[int],
        request_id: Optional[int],
    ) -> Span:
        span = Span(name, start, end, attrs, span_id, parent_id, request_id)
        self._spans.append(span)
        return span

    def record(
        self,
        name: str,
        start: float,
        end: float,
        parent: Optional[int] = None,
        request: Optional[int] = None,
        **attrs: Any,
    ) -> Optional[Span]:
        """Append a closed span (no-op when disabled)."""
        if not self.enabled:
            return None
        return self._append(name, start, end, attrs, self._reserve_id(), parent, request)

    def reserve_id(self) -> Optional[int]:
        """Reserve a span id to close later via :meth:`record_reserved`.

        Lets a span that *ends* after its children (e.g. a request root
        finalized once every drive lands) still be named as their parent.
        Returns None when disabled.
        """
        if not self.enabled:
            return None
        return self._reserve_id()

    def record_reserved(
        self,
        span_id: Optional[int],
        name: str,
        start: float,
        end: float,
        parent: Optional[int] = None,
        request: Optional[int] = None,
        **attrs: Any,
    ) -> Optional[Span]:
        """Close a span whose id was handed out by :meth:`reserve_id`."""
        if not self.enabled or span_id is None:
            return None
        return self._append(name, start, end, attrs, span_id, parent, request)

    def span(
        self,
        env,
        name: str,
        parent: Optional[int] = None,
        request: Optional[int] = None,
        **attrs: Any,
    ):
        """Open a span as a context manager clocked by ``env.now``.

        Returns a shared null context (``id is None``) when disabled, so
        instrumentation points cost one call and no allocation.
        """
        if not self.enabled:
            return _NULL_SPAN_CONTEXT
        return SpanContext(self, env, name, parent, request, attrs)

    def clear(self) -> None:
        self._spans.clear()
        self._next_id = 1

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def spans(self, name: Optional[str] = None, **attrs: Any) -> List[Span]:
        """Spans matching ``name`` and all given attribute values."""
        out = []
        for span in self._spans:
            if name is not None and span.name != name:
                continue
            if any(span.attrs.get(k) != v for k, v in attrs.items()):
                continue
            out.append(span)
        return out

    def total(self, name: Optional[str] = None, **attrs: Any) -> float:
        """Summed duration of matching spans."""
        return sum(span.duration for span in self.spans(name, **attrs))

    def busy_time(self, name: Optional[str] = None, **attrs: Any) -> float:
        """Union length of matching spans (overlaps counted once)."""
        intervals = sorted((s.start, s.end) for s in self.spans(name, **attrs))
        total = 0.0
        cur_start: Optional[float] = None
        cur_end = 0.0
        for start, end in intervals:
            if cur_start is None:
                cur_start, cur_end = start, end
            elif start <= cur_end:
                cur_end = max(cur_end, end)
            else:
                total += cur_end - cur_start
                cur_start, cur_end = start, end
        if cur_start is not None:
            total += cur_end - cur_start
        return total

    # -- causal-tree views ---------------------------------------------------
    def by_id(self) -> Dict[int, Span]:
        """Map span_id -> span (bare spans with id 0 are excluded)."""
        return {s.span_id: s for s in self._spans if s.span_id}

    def children(self, span_id: int) -> List[Span]:
        """Direct children of one span, in recording order."""
        return [s for s in self._spans if s.parent_id == span_id]

    def roots(self, request_id: Optional[int] = None) -> List[Span]:
        """Parentless spans (optionally restricted to one request)."""
        return [
            s
            for s in self._spans
            if s.parent_id is None
            and (request_id is None or s.request_id == request_id)
        ]

    def request_spans(self, request_id: int) -> List[Span]:
        """Every span attributed to one request, in recording order."""
        return [s for s in self._spans if s.request_id == request_id]

    def leaves(self, request_id: Optional[int] = None) -> List[Span]:
        """Spans with no children (optionally restricted to one request)."""
        parents = {s.parent_id for s in self._spans if s.parent_id is not None}
        return [
            s
            for s in self._spans
            if s.span_id not in parents
            and (request_id is None or s.request_id == request_id)
        ]

    def request_ids(self) -> List[int]:
        """Distinct request ids present, in first-seen order."""
        seen: Dict[int, None] = {}
        for s in self._spans:
            if s.request_id is not None:
                seen.setdefault(s.request_id, None)
        return list(seen)


class ResourceUsageMonitor:
    """Occupancy accounting for one :class:`~repro.des.resources.Resource`.

    Attach via :meth:`attach` (or assign to ``resource.monitor``); every
    grant and release is then folded into:

    * ``grants`` — total number of grants;
    * ``max_in_use`` — peak concurrent occupancy (the concurrency-invariant
      check: must never exceed the resource's capacity);
    * ``busy_s`` — union time with at least one slot in use;
    * ``slot_busy_s`` — ∫ occupancy dt (per-slot utilization numerator);
    * ``queue_depth`` / ``max_queue_depth`` / ``queue_wait_s`` — live wait
      queue length, its peak, and ∫ depth dt (mean waiters via Little's law).

    Pass a :class:`~repro.obs.MetricsRegistry` to additionally publish the
    live occupancy and queue depth as gauges and the grant count as a
    counter (names ``resource.<name>.in_use`` / ``.queue_depth`` /
    ``.grants``), sampled by the registry's periodic snapshots.
    """

    def __init__(self, name: str, registry=None) -> None:
        self.name = name
        self.grants = 0
        self.in_use = 0
        self.max_in_use = 0
        self.busy_s = 0.0
        self.slot_busy_s = 0.0
        self._since: Optional[float] = None  # last occupancy change
        self.queue_depth = 0
        self.max_queue_depth = 0
        self.queue_wait_s = 0.0
        self._queue_since: Optional[float] = None
        self._grants_counter = None
        self._in_use_gauge = None
        self._queue_gauge = None
        if registry is not None:
            self.bind_registry(registry)

    def bind_registry(self, registry) -> "ResourceUsageMonitor":
        """Publish live occupancy/queue metrics into ``registry``."""
        self._grants_counter = registry.counter(
            f"resource.{self.name}.grants", unit="grants"
        )
        self._in_use_gauge = registry.gauge(f"resource.{self.name}.in_use", unit="slots")
        self._queue_gauge = registry.gauge(
            f"resource.{self.name}.queue_depth", unit="requests"
        )
        return self

    def attach(self, resource) -> "ResourceUsageMonitor":
        if resource.users:
            raise ValueError(
                f"cannot attach monitor {self.name!r}: resource already has users"
            )
        resource.monitor = self
        return self

    def _settle(self, now: float) -> None:
        if self._since is not None and self.in_use > 0:
            elapsed = now - self._since
            self.busy_s += elapsed
            self.slot_busy_s += elapsed * self.in_use
        self._since = now

    def _settle_queue(self, now: float) -> None:
        if self._queue_since is not None and self.queue_depth > 0:
            self.queue_wait_s += (now - self._queue_since) * self.queue_depth
        self._queue_since = now

    def on_grant(self, now: float) -> None:
        self._settle(now)
        self.grants += 1
        self.in_use += 1
        self.max_in_use = max(self.max_in_use, self.in_use)
        if self._grants_counter is not None:
            self._grants_counter.inc()
            self._in_use_gauge.set(self.in_use, now)

    def on_release(self, now: float) -> None:
        self._settle(now)
        self.in_use -= 1
        if self._in_use_gauge is not None:
            self._in_use_gauge.set(self.in_use, now)

    def on_enqueue(self, now: float) -> None:
        self._settle_queue(now)
        self.queue_depth += 1
        self.max_queue_depth = max(self.max_queue_depth, self.queue_depth)
        if self._queue_gauge is not None:
            self._queue_gauge.set(self.queue_depth, now)

    def on_dequeue(self, now: float) -> None:
        self._settle_queue(now)
        self.queue_depth -= 1
        if self._queue_gauge is not None:
            self._queue_gauge.set(self.queue_depth, now)

    def utilization(self, horizon_s: float, capacity: int = 1) -> float:
        """Mean fraction of ``capacity`` slots busy over ``[0, horizon_s]``."""
        if horizon_s <= 0:
            return 0.0
        return self.slot_busy_s / (horizon_s * capacity)

    def summary(self) -> Dict[str, float]:
        return {
            "grants": self.grants,
            "max_in_use": self.max_in_use,
            "busy_s": self.busy_s,
            "slot_busy_s": self.slot_busy_s,
            "max_queue_depth": self.max_queue_depth,
            "queue_wait_s": self.queue_wait_s,
        }

    def __repr__(self) -> str:
        return (
            f"<ResourceUsageMonitor {self.name}: {self.grants} grants, "
            f"peak {self.max_in_use}, busy {self.busy_s:.1f}s>"
        )
