"""Item stores and level containers for the DES kernel.

These complete the kernel's resource family for general simulation use
(SimPy parity for the common surface):

* :class:`Store` — a FIFO buffer of Python objects with blocking ``get`` /
  ``put`` (bounded or unbounded);
* :class:`PriorityStore` — items leave lowest-first (items must be
  orderable, e.g. tuples or :class:`PriorityItem`);
* :class:`Container` — a continuous level (fuel, bytes, budget) with
  blocking ``get(amount)`` / ``put(amount)``.

The tape simulator itself uses plain deques (its queues never block), but
downstream models built on :mod:`repro.des` — e.g. a staging-disk eviction
model or a robot work queue — need these.
"""

from __future__ import annotations

from heapq import heappop, heappush
from itertools import count
from typing import TYPE_CHECKING, Any, List, Tuple

from .events import Event

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = ["Store", "PriorityStore", "PriorityItem", "Container"]


class StorePut(Event):
    """Triggers once the item has been accepted by the store."""

    __slots__ = ("item",)

    def __init__(self, store: "Store", item: Any) -> None:
        super().__init__(store.env)
        self.item = item
        store._put_queue.append(self)
        store._dispatch()


class StoreGet(Event):
    """Triggers with the retrieved item as its value."""

    __slots__ = ()

    def __init__(self, store: "Store") -> None:
        super().__init__(store.env)
        store._get_queue.append(self)
        store._dispatch()


class Store:
    """FIFO item store with blocking put/get.

    ``capacity`` bounds the number of buffered items (``inf`` by default).
    """

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self.capacity = capacity
        self.items: List[Any] = []
        self._put_queue: List[StorePut] = []
        self._get_queue: List[StoreGet] = []

    def put(self, item: Any) -> StorePut:
        """Offer ``item``; the returned event triggers when accepted."""
        return StorePut(self, item)

    def get(self) -> StoreGet:
        """Request an item; the event's value is the item when available."""
        return StoreGet(self)

    def __len__(self) -> int:
        return len(self.items)

    # -- internals ------------------------------------------------------
    def _do_put(self, event: StorePut) -> bool:
        if len(self.items) < self.capacity:
            self._store_item(event.item)
            event.succeed()
            return True
        return False

    def _do_get(self, event: StoreGet) -> bool:
        if self.items:
            event.succeed(self._take_item())
            return True
        return False

    def _store_item(self, item: Any) -> None:
        self.items.append(item)

    def _take_item(self) -> Any:
        return self.items.pop(0)

    def _dispatch(self) -> None:
        """Match queued puts and gets until neither side can progress."""
        progress = True
        while progress:
            progress = False
            while self._put_queue and len(self.items) < self.capacity:
                put = self._put_queue.pop(0)
                if not put.triggered:
                    self._store_item(put.item)
                    put.succeed()
                    progress = True
            while self._get_queue and self.items:
                get = self._get_queue.pop(0)
                if not get.triggered:
                    get.succeed(self._take_item())
                    progress = True


class PriorityItem:
    """Orderable wrapper pairing a priority with an arbitrary payload."""

    __slots__ = ("priority", "item")

    def __init__(self, priority: float, item: Any) -> None:
        self.priority = priority
        self.item = item

    def __lt__(self, other: "PriorityItem") -> bool:
        return self.priority < other.priority

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PriorityItem) and self.priority == other.priority

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PriorityItem({self.priority!r}, {self.item!r})"


class PriorityStore(Store):
    """Store whose items leave in ascending order (lowest first)."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        super().__init__(env, capacity)
        self._heap: List[Tuple[Any, int]] = []
        self._tiebreak = count()

    def _store_item(self, item: Any) -> None:
        heappush(self._heap, (item, next(self._tiebreak)))
        self.items = [entry[0] for entry in sorted(self._heap)]

    def _take_item(self) -> Any:
        item, _ = heappop(self._heap)
        self.items = [entry[0] for entry in sorted(self._heap)]
        return item


class ContainerPut(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._put_queue.append(self)
        container._dispatch()


class ContainerGet(Event):
    __slots__ = ("amount",)

    def __init__(self, container: "Container", amount: float) -> None:
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        super().__init__(container.env)
        self.amount = amount
        container._get_queue.append(self)
        container._dispatch()


class Container:
    """A continuous level between 0 and ``capacity`` with blocking put/get."""

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0 <= init <= capacity:
            raise ValueError(f"init level {init} outside [0, {capacity}]")
        self.env = env
        self.capacity = capacity
        self._level = float(init)
        self._put_queue: List[ContainerPut] = []
        self._get_queue: List[ContainerGet] = []

    @property
    def level(self) -> float:
        return self._level

    def put(self, amount: float) -> ContainerPut:
        """Add ``amount``; blocks while it would overflow the capacity."""
        return ContainerPut(self, amount)

    def get(self, amount: float) -> ContainerGet:
        """Remove ``amount``; blocks until the level covers it."""
        return ContainerGet(self, amount)

    def _dispatch(self) -> None:
        progress = True
        while progress:
            progress = False
            for put in list(self._put_queue):
                if self._level + put.amount <= self.capacity + 1e-12:
                    self._put_queue.remove(put)
                    if not put.triggered:
                        self._level += put.amount
                        put.succeed()
                        progress = True
                else:
                    break  # FIFO: don't let later puts jump the queue
            for get in list(self._get_queue):
                if get.amount <= self._level + 1e-12:
                    self._get_queue.remove(get)
                    if not get.triggered:
                        self._level -= get.amount
                        get.succeed()
                        progress = True
                else:
                    break
