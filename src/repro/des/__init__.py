"""A self-contained process-based discrete-event simulation kernel.

The tape-library simulator (:mod:`repro.sim`) is built on this kernel.  The
API intentionally mirrors SimPy's core surface (``Environment``, ``Timeout``,
generator processes, ``Resource``), so the simulator reads like standard
simulation code, but the implementation is entirely local — no third-party
simulation dependency is required.
"""

from .core import Environment, Infinity
from .events import AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from .exceptions import EmptySchedule, Interrupt, SimulationError
from .monitor import ResourceUsageMonitor, Span, SpanContext, Trace, trace_enabled_by_env
from .process import Process
from .resources import PriorityResource, ReleaseEvent, RequestEvent, Resource
from .scheduler import SCHEDULERS, CalendarQueue, EventScheduler, HeapScheduler, resolve_scheduler
from .stores import Container, PriorityItem, PriorityStore, Store

__all__ = [
    "Environment",
    "Infinity",
    "EventScheduler",
    "HeapScheduler",
    "CalendarQueue",
    "SCHEDULERS",
    "resolve_scheduler",
    "Event",
    "Timeout",
    "Condition",
    "ConditionValue",
    "AllOf",
    "AnyOf",
    "Process",
    "Resource",
    "PriorityResource",
    "RequestEvent",
    "Store",
    "PriorityStore",
    "PriorityItem",
    "Container",
    "ReleaseEvent",
    "Interrupt",
    "SimulationError",
    "EmptySchedule",
    "Span",
    "SpanContext",
    "Trace",
    "ResourceUsageMonitor",
    "trace_enabled_by_env",
]
