"""Pluggable event schedulers for the DES kernel.

The :class:`~repro.des.core.Environment` stores pending events as
``(time, priority, eid, event)`` tuples.  Ordering is total: ties on time
break on priority (URGENT before NORMAL), then on the monotonically
increasing event id — FIFO among equals.  Any scheduler that pops entries
in exactly this tuple order is observably identical to the binary heap,
so every seed-for-seed parity golden doubles as a scheduler oracle.

Two implementations ship:

* :class:`HeapScheduler` — the classic ``heapq`` binary heap.  The
  environment recognises it and keeps operating on the raw ``items``
  list with inline ``heappush``/``heappop`` (the PR 5 fast path), so
  choosing it costs nothing over the pre-pluggable kernel.
* :class:`CalendarQueue` — Brown's calendar queue (CACM 1988) with
  dynamic bucket resizing.  O(1) expected enqueue/dequeue independent of
  the pending-event population, which overtakes the heap's O(log n) once
  simulations hold tens of thousands of concurrent events (the 10-library
  scale-out regime).  Each bucket is itself a small heap, so intra-bucket
  order — including the event-id FIFO tie-break — is exact, not
  approximate.

Select via ``Environment(scheduler="calendar")`` or the
``REPRO_SCHEDULER`` environment variable (consulted when ``scheduler``
is ``None``).
"""

from __future__ import annotations

import os
from heapq import heappop, heappush
from typing import Any, List, Optional, Tuple, Union

__all__ = [
    "EventScheduler",
    "HeapScheduler",
    "CalendarQueue",
    "SCHEDULERS",
    "resolve_scheduler",
]

#: One pending entry: (time, priority, eid, event).
Entry = Tuple[float, int, int, Any]

Infinity = float("inf")

#: Quotients ``time / width`` at or above this are clamped to one shared
#: far-future bucket number.  The cap is below 2**53 so ``int()`` of it is
#: exact, and clamping preserves order: every clamped entry's time exceeds
#: every unclamped entry's, and clamped entries share a bucket where the
#: per-bucket heap keeps their exact relative order.
_FAR_QUOTIENT = 9.0e15
_FAR_N = 9_007_199_254_740_992  # 2**53


class EventScheduler:
    """Order-preserving priority queue of ``(time, priority, eid, event)``.

    Implementations must pop entries in ascending tuple order and raise
    ``IndexError`` from :meth:`pop` when empty (mirroring ``heappop`` so
    the environment's run loop needs no scheduler-specific handling).
    """

    def push(self, item: Entry) -> None:
        raise NotImplementedError

    def pop(self) -> Entry:
        raise NotImplementedError

    def peek_time(self) -> float:
        """Time of the minimum entry, or ``inf`` when empty."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class HeapScheduler(EventScheduler):
    """Binary-heap scheduler; the default.

    Exposes the raw heap as ``items`` so :class:`~repro.des.core.Environment`
    can bypass the method interface and keep the inline
    ``heappush``/``heappop`` fast path — behaviour and performance are
    byte-identical to the pre-pluggable kernel.
    """

    __slots__ = ("items",)

    def __init__(self) -> None:
        self.items: List[Entry] = []

    def push(self, item: Entry) -> None:
        heappush(self.items, item)

    def pop(self) -> Entry:
        return heappop(self.items)

    def peek_time(self) -> float:
        return self.items[0][0] if self.items else Infinity

    def __len__(self) -> int:
        return len(self.items)


class CalendarQueue(EventScheduler):
    """Calendar queue with per-bucket heaps and dynamic resizing.

    Entries map to an *absolute* bucket number ``n = int(t / width)`` and
    live in bucket ``n % nbuckets``; each bucket is a heap so entries that
    share a bucket keep exact tuple order.  ``pop`` scans at most one
    "year" (``nbuckets`` consecutive bucket numbers) from the current
    position and falls back to a direct search for the global minimum when
    the year is empty (sparse queue), so correctness never depends on the
    width estimate — only performance does.

    The bucket count doubles when the population exceeds twice the bucket
    count and halves below half of it (Brown's thresholds); each resize
    re-estimates the width from a sample of adjacent event spacings.
    """

    __slots__ = ("_buckets", "_nbuckets", "_width", "_cur_n", "_size")

    MIN_BUCKETS = 4

    def __init__(self, nbuckets: int = MIN_BUCKETS, width: float = 1.0) -> None:
        if nbuckets < 1:
            raise ValueError(f"nbuckets must be >= 1, got {nbuckets}")
        if not (width > 0.0) or width == Infinity:
            raise ValueError(f"width must be positive and finite, got {width}")
        self._buckets: List[List[Entry]] = [[] for _ in range(nbuckets)]
        self._nbuckets = nbuckets
        self._width = width
        #: Absolute bucket number the pop scan resumes from.  Invariant:
        #: no pending entry has a bucket number below it.
        self._cur_n = 0
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def push(self, item: Entry) -> None:
        t = item[0]
        q = t / self._width
        n = int(q) if q < _FAR_QUOTIENT else _FAR_N
        heappush(self._buckets[n % self._nbuckets], item)
        if not self._size or n < self._cur_n:
            self._cur_n = n
        self._size += 1
        if self._size > (self._nbuckets << 1):
            self._resize(self._nbuckets << 1)

    def pop(self) -> Entry:
        if not self._size:
            raise IndexError("pop from an empty CalendarQueue")
        buckets = self._buckets
        nb = self._nbuckets
        width = self._width
        n = self._cur_n
        for _ in range(nb):
            bucket = buckets[n % nb]
            if bucket:
                t = bucket[0][0]
                q = t / width
                # Same arithmetic as push, so push and pop always agree on
                # an entry's bucket number even at float bucket boundaries.
                if (int(q) if q < _FAR_QUOTIENT else _FAR_N) <= n:
                    item = heappop(bucket)
                    self._cur_n = n
                    break
            n += 1
        else:
            # Sparse queue: the whole year was ineligible.  Direct-search
            # the global minimum head by full tuple comparison (exact).
            best: Optional[List[Entry]] = None
            for bucket in buckets:
                if bucket and (best is None or bucket[0] < best[0]):
                    best = bucket
            assert best is not None  # _size > 0 guarantees a head exists
            item = heappop(best)
            q = item[0] / width
            self._cur_n = int(q) if q < _FAR_QUOTIENT else _FAR_N
        self._size -= 1
        if self._size < (self._nbuckets >> 1) and self._nbuckets > self.MIN_BUCKETS:
            self._resize(self._nbuckets >> 1)
        return item

    def peek_time(self) -> float:
        if not self._size:
            return Infinity
        best = Infinity
        for bucket in self._buckets:
            if bucket and bucket[0][0] < best:
                best = bucket[0][0]
        return best

    # -- resizing ----------------------------------------------------------
    def _resize(self, nbuckets: int) -> None:
        items = [item for bucket in self._buckets for item in bucket]
        width = self._estimate_width(items)
        self._nbuckets = nbuckets
        self._width = width
        buckets = self._buckets = [[] for _ in range(nbuckets)]
        cur_n = _FAR_N
        for item in items:
            q = item[0] / width
            n = int(q) if q < _FAR_QUOTIENT else _FAR_N
            heappush(buckets[n % nbuckets], item)
            if n < cur_n:
                cur_n = n
        if items:
            self._cur_n = cur_n

    def _estimate_width(self, items: List[Entry]) -> float:
        """Twice the mean event spacing: ``2 * span / (count - 1)``.

        Brown's rule sizes buckets so each holds O(1) entries; with the
        doubling threshold keeping ``nbuckets`` within 2x of the
        population, a width of twice the mean gap makes one year cover the
        whole live window while occupied buckets average ~2 entries.  The
        mean is taken over the full population's span (min/max, O(n) and
        allocation-free) rather than a small sample — a sample drawn in
        bucket order spans the entire window and would overestimate the
        gap by population/sample.  Falls back to the current width when
        the span is degenerate (all ties or far-future sentinels).
        """
        if len(items) < 2:
            return self._width
        lo = hi = None
        count = 0
        for item in items:
            t = item[0]
            if t == Infinity:
                continue
            count += 1
            if lo is None:
                lo = hi = t
            elif t < lo:
                lo = t
            elif t > hi:
                hi = t
        if count < 2 or hi <= lo:
            return self._width
        width = 2.0 * (hi - lo) / (count - 1)
        if not (width > 0.0) or width == Infinity:
            return self._width
        return width


#: Registry of scheduler names accepted by ``Environment(scheduler=...)``
#: and the ``REPRO_SCHEDULER`` environment variable.
SCHEDULERS = {
    "heapq": HeapScheduler,
    "calendar": CalendarQueue,
}


def resolve_scheduler(
    spec: Union[str, EventScheduler, None] = None,
) -> EventScheduler:
    """Resolve a scheduler spec to a fresh :class:`EventScheduler`.

    ``None`` consults ``REPRO_SCHEDULER`` (default ``heapq``); a string is
    looked up in :data:`SCHEDULERS`; an :class:`EventScheduler` instance is
    used as-is (it must be empty).
    """
    if spec is None:
        spec = os.environ.get("REPRO_SCHEDULER") or "heapq"
    if isinstance(spec, EventScheduler):
        return spec
    try:
        factory = SCHEDULERS[spec]
    except (KeyError, TypeError):
        known = ", ".join(sorted(SCHEDULERS))
        raise ValueError(f"unknown scheduler {spec!r}; known schedulers: {known}") from None
    return factory()
