"""The discrete-event simulation environment.

The :class:`Environment` owns the simulation clock and the event heap and
offers factory helpers (``timeout``, ``process``, ``event`` …) so that
simulation code rarely needs to import the event classes directly.

Example
-------
>>> from repro.des import Environment
>>> env = Environment()
>>> log = []
>>> def clock(env, name, tick):
...     while True:
...         log.append((name, env.now))
...         yield env.timeout(tick)
>>> _ = env.process(clock(env, "fast", 1))
>>> _ = env.process(clock(env, "slow", 2))
>>> env.run(until=4)
>>> log
[('fast', 0.0), ('slow', 0.0), ('fast', 1.0), ('slow', 2.0), ('fast', 2.0), ('fast', 3.0)]
"""

from __future__ import annotations

import heapq
from itertools import count
from typing import Any, Iterable, List, Optional, Tuple

from .events import NORMAL, URGENT, AllOf, AnyOf, Event, Timeout
from .exceptions import EmptySchedule, SimulationError, StopSimulation
from .process import Process, ProcessGenerator

__all__ = ["Environment", "Infinity"]

Infinity = float("inf")


class Environment:
    """Execution environment for an event-driven simulation.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default 0).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue: List[Tuple[float, int, int, Event]] = []
        self._eid = count()
        self._active_process: Optional[Process] = None
        #: Events processed since construction (throughput telemetry).
        self.events_processed = 0

    # -- introspection ----------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between steps)."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue[0][0] if self._queue else Infinity

    def __len__(self) -> int:
        return len(self._queue)

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that fires after ``delay``."""
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new :class:`Process` from ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition that triggers when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Put ``event`` on the heap ``delay`` time units from now."""
        heapq.heappush(self._queue, (self._now + delay, priority, next(self._eid), event))

    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        try:
            self._now, _, _, event = heapq.heappop(self._queue)
        except IndexError:
            raise EmptySchedule("no scheduled events left") from None

        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled the failure: surface it.
            assert isinstance(event._value, BaseException)
            raise event._value

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the heap empties, ``until`` time passes, or an event fires.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches it (exclusive of events at
          later times; the clock is set to ``until`` on return);
        * an :class:`Event` — run until it is processed and return its value.
        """
        if until is None:
            stop: Optional[Event] = None
            at = Infinity
        elif isinstance(until, Event):
            if until.callbacks is None:
                # Already processed.
                return until.value
            stop = until
            at = Infinity
            until.callbacks.append(_stop_simulation)
        else:
            at = float(until)
            if at <= self._now:
                raise ValueError(f"until ({at}) must be greater than now ({self._now})")
            stop = Event(self)
            stop._ok = True
            stop._value = None
            stop.callbacks = [_stop_simulation]
            heapq.heappush(self._queue, (at, URGENT, next(self._eid), stop))

        try:
            while True:
                try:
                    self.step()
                except EmptySchedule:
                    if isinstance(until, Event):
                        raise SimulationError(
                            "no scheduled events left but `until` event was not triggered"
                        ) from None
                    break
        except StopSimulation as stopped:
            return stopped.value

        if at is not Infinity and at > self._now:
            self._now = at
        return None


def _stop_simulation(event: Event) -> None:
    if not event._ok:
        event._defused = True
        raise event._value  # propagate the failure to run()'s caller
    raise StopSimulation(event._value)
