"""The discrete-event simulation environment.

The :class:`Environment` owns the simulation clock and the event heap and
offers factory helpers (``timeout``, ``process``, ``event`` …) so that
simulation code rarely needs to import the event classes directly.

Example
-------
>>> from repro.des import Environment
>>> env = Environment()
>>> log = []
>>> def clock(env, name, tick):
...     while True:
...         log.append((name, env.now))
...         yield env.timeout(tick)
>>> _ = env.process(clock(env, "fast", 1))
>>> _ = env.process(clock(env, "slow", 2))
>>> env.run(until=4)
>>> log
[('fast', 0.0), ('slow', 0.0), ('fast', 1.0), ('slow', 2.0), ('fast', 2.0), ('fast', 3.0)]
"""

from __future__ import annotations

import gc
from heapq import heappop, heappush
from typing import Any, Iterable, List, Optional, Tuple

from .events import NORMAL, URGENT, AllOf, AnyOf, Event, Timeout
from .exceptions import EmptySchedule, SimulationError, StopSimulation
from .process import Process, ProcessGenerator
from .scheduler import EventScheduler, HeapScheduler, resolve_scheduler

__all__ = ["Environment", "Infinity"]

Infinity = float("inf")


class Environment:
    """Execution environment for an event-driven simulation.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default 0).
    scheduler:
        Event-scheduler selection: a name from
        :data:`repro.des.scheduler.SCHEDULERS` (``"heapq"``,
        ``"calendar"``), an :class:`EventScheduler` instance, or ``None``
        to consult ``REPRO_SCHEDULER`` (default ``heapq``).  Every
        scheduler pops in the same (time, priority, eid) order, so the
        choice affects throughput only — results are bit-identical.
    """

    def __init__(
        self,
        initial_time: float = 0.0,
        scheduler: "str | EventScheduler | None" = None,
    ) -> None:
        self._now = float(initial_time)
        sched = resolve_scheduler(scheduler)
        self.scheduler = sched
        #: The heap scheduler is special-cased: the environment operates on
        #: its raw ``items`` list with inline ``heappush``/``heappop``,
        #: preserving the pre-pluggable fast path byte for byte.  Any other
        #: scheduler goes through the :class:`EventScheduler` interface.
        self._heapmode = type(sched) is HeapScheduler
        self._queue: List[Tuple[float, int, int, Event]] = (
            sched.items if self._heapmode else None  # type: ignore[assignment]
        )
        #: Monotonic schedule tiebreaker.  A plain int incremented inline is
        #: measurably cheaper than ``next(itertools.count())`` on the hot
        #: path while producing the exact same (time, priority, eid) order.
        self._eid = 0
        self._active_process: Optional[Process] = None
        #: Events processed since construction (throughput telemetry).
        self.events_processed = 0

    # -- introspection ----------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed (None between steps)."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        if self._heapmode:
            return self._queue[0][0] if self._queue else Infinity
        return self.scheduler.peek_time()

    def __len__(self) -> int:
        return len(self._queue) if self._heapmode else len(self.scheduler)

    # -- event factories ----------------------------------------------------
    def event(self) -> Event:
        """Create a new, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` that fires after ``delay``.

        Fast lane: a timeout is born triggered with a known value, so the
        generic untriggered-event machinery (``Event.__init__`` +
        ``succeed`` + ``_schedule``) is bypassed and the fields are set
        directly before one inline heap push.  Semantics are identical to
        ``Timeout(self, delay, value)``, including the negative-delay check.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        t = Timeout.__new__(Timeout)
        t.env = self
        t.callbacks = []
        t._value = value
        t._ok = True
        t._defused = False
        t._delay = delay
        eid = self._eid
        self._eid = eid + 1
        if self._heapmode:
            heappush(self._queue, (self._now + delay, NORMAL, eid, t))
        else:
            self.scheduler.push((self._now + delay, NORMAL, eid, t))
        return t

    def process(self, generator: ProcessGenerator) -> Process:
        """Start a new :class:`Process` from ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Condition that triggers when all ``events`` have triggered."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Condition that triggers when any of ``events`` has triggered."""
        return AnyOf(self, events)

    # -- scheduling ---------------------------------------------------------
    def _schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Put ``event`` on the schedule ``delay`` time units from now."""
        eid = self._eid
        self._eid = eid + 1
        if self._heapmode:
            heappush(self._queue, (self._now + delay, priority, eid, event))
        else:
            self.scheduler.push((self._now + delay, priority, eid, event))

    def step(self) -> None:
        """Process the next scheduled event.

        Raises
        ------
        EmptySchedule
            If no events remain.
        """
        try:
            if self._heapmode:
                self._now, _, _, event = heappop(self._queue)
            else:
                self._now, _, _, event = self.scheduler.pop()
        except IndexError:
            raise EmptySchedule("no scheduled events left") from None

        self.events_processed += 1
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled the failure: surface it.
            raise event._value

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the heap empties, ``until`` time passes, or an event fires.

        ``until`` may be:

        * ``None`` — run until no events remain;
        * a number — run until the clock reaches it (exclusive of events at
          later times; the clock is set to ``until`` on return);
        * an :class:`Event` — run until it is processed and return its value.
        """
        if until is None:
            stop: Optional[Event] = None
            at = Infinity
        elif isinstance(until, Event):
            if until.callbacks is None:
                # Already processed.
                return until.value
            stop = until
            at = Infinity
            until.callbacks.append(_stop_simulation)
        else:
            at = float(until)
            if at <= self._now:
                raise ValueError(f"until ({at}) must be greater than now ({self._now})")
            stop = Event(self)
            stop._ok = True
            stop._value = None
            stop.callbacks = [_stop_simulation]
            eid = self._eid
            self._eid = eid + 1
            if self._heapmode:
                heappush(self._queue, (at, URGENT, eid, stop))
            else:
                self.scheduler.push((at, URGENT, eid, stop))

        # Inlined event loop: ``step()`` stays the single-step public API,
        # but calling it per event costs a method dispatch plus an
        # ``events_processed`` attribute round-trip each iteration.  The
        # loop below is behaviourally identical (same pop order, same
        # callback/failure handling, same count) with the heap, pop and the
        # processed counter held in locals; the counter is flushed in the
        # ``finally`` so every exit path — StopSimulation, an unhandled
        # failure, EmptySchedule — reports the true total.
        #
        # Automatic cyclic GC is paused for the duration of the loop: the
        # event loop allocates containers (heap entries, callbacks lists,
        # span tuples) at a rate that otherwise triggers repeated full-heap
        # collections, each rescanning the large persistent workload/layout
        # object graph — measured at up to ~40% of event-processing time at
        # paper scale with tracing enabled.  Collection is re-enabled (and
        # the deferred work happens on CPython's own schedule) on every exit
        # path; a caller that already disabled GC keeps it disabled.
        # Either way the loop body below is ``pop(queue)``: in heap mode the
        # queue is the raw list and pop is C ``heappop``; otherwise the
        # queue is the scheduler instance and pop its unbound ``pop``.
        if self._heapmode:
            queue = self._queue
            pop = heappop
        else:
            queue = self.scheduler
            pop = type(self.scheduler).pop
        processed = 0
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            while True:
                try:
                    self._now, _, _, event = pop(queue)
                except IndexError:
                    if isinstance(until, Event):
                        raise SimulationError(
                            "no scheduled events left but `until` event was not triggered"
                        ) from None
                    break
                processed += 1
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event._defused:
                    # Nobody handled the failure: surface it.
                    raise event._value
        except StopSimulation as stopped:
            return stopped.value
        finally:
            self.events_processed += processed
            if gc_was_enabled:
                gc.enable()

        if at is not Infinity and at > self._now:
            self._now = at
        return None


def _stop_simulation(event: Event) -> None:
    if not event._ok:
        event._defused = True
        raise event._value  # propagate the failure to run()'s caller
    raise StopSimulation(event._value)
