"""Generator-based processes for the discrete-event simulation kernel.

A *process* wraps a Python generator.  The generator describes behaviour over
simulated time by ``yield``-ing events; the process resumes when each yielded
event is processed, receiving the event's value at the yield expression (or
having the event's exception thrown in, if it failed).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from .events import PENDING, Event
from .exceptions import Interrupt, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from .core import Environment

__all__ = ["Process", "Initialize", "InterruptEvent"]

ProcessGenerator = Generator[Event, Any, Any]


class Initialize(Event):
    """Immediately-scheduled event that starts a process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        assert self.callbacks is not None
        self.callbacks.append(process._resume)
        self._ok = True
        self._value = None
        env._schedule(self, priority=0)  # URGENT


class InterruptEvent(Event):
    """Immediately-scheduled event that throws an Interrupt into a process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process", cause: Any) -> None:
        super().__init__(env)
        assert self.callbacks is not None
        self.callbacks.append(process._throw_interrupt)
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        env._schedule(self, priority=0)  # URGENT


class Process(Event):
    """An event that is also an executing generator.

    The process event triggers when the generator returns (success, with the
    return value) or raises (failure, with the exception).  Other processes
    may therefore ``yield`` a process to wait for its completion.
    """

    __slots__ = ("_generator", "_target")

    def __init__(self, env: "Environment", generator: ProcessGenerator) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None when running
        #: its own code or finished).
        self._target: Optional[Event] = Initialize(env, self)

    @property
    def target(self) -> Optional[Event]:
        """The event the process is currently waiting for."""
        return self._target

    @property
    def is_alive(self) -> bool:
        """True while the generator has not exited."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process.

        The process is rescheduled immediately; the event it was waiting on
        remains pending and may be re-yielded by the interrupt handler.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self._target is None or isinstance(self._target, Initialize):
            # Interrupting before the first resume: deliver at start.
            pass
        InterruptEvent(self.env, self, cause)

    # -- kernel plumbing --------------------------------------------------
    def _throw_interrupt(self, event: Event) -> None:
        """Deliver an interrupt, detaching from the current target first."""
        if not self.is_alive:
            # Process ended between scheduling and delivery; swallow.
            return
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - already detached
                pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        self.env._active_process = self
        exc: Optional[BaseException] = None
        try:
            if event._ok:
                next_target = self._generator.send(event._value)
            else:
                # Mark handled: the generator gets a chance to catch it.
                event._defused = True
                assert isinstance(event._value, BaseException)
                next_target = self._generator.throw(event._value)
        except StopIteration as stop:
            self._target = None
            self.succeed(stop.value)
            return
        except BaseException as error:
            self._target = None
            # Waiters (if any) will defuse this when they handle it; with no
            # waiter the kernel crashes loudly, which is what we want.
            self.fail(error)
            return
        finally:
            self.env._active_process = None

        while not isinstance(next_target, Event):
            exc = SimulationError(f"process yielded a non-event: {next_target!r}")
            try:
                next_target = self._generator.throw(exc)
            except StopIteration as stop:
                self._target = None
                self.succeed(stop.value)
                return
            except BaseException as error:
                self._target = None
                self.fail(error)
                return

        if next_target.callbacks is not None:
            next_target.callbacks.append(self._resume)
            self._target = next_target
        else:
            # Already processed: resume immediately via an urgent event.
            self._target = next_target
            bridge = Event(self.env)
            assert bridge.callbacks is not None
            bridge.callbacks.append(self._resume)
            bridge._ok = next_target._ok
            bridge._value = next_target._value
            if not next_target._ok:
                bridge._defused = True
            self.env._schedule(bridge, priority=0)

    def __repr__(self) -> str:
        name = getattr(self._generator, "__name__", str(self._generator))
        return f"<Process {name} at {id(self):#x}>"
