"""Event primitives for the discrete-event simulation kernel.

An :class:`Event` is the unit of coordination: processes yield events and are
resumed when the event is *processed* (its callbacks run).  Events move
through three states:

``pending``   -> created, not yet triggered; may sit inside resources/queues
``triggered`` -> has a value (or exception) and is scheduled on the event heap
``processed`` -> its callbacks have run

Triggered events are ordered by the ``(time, priority, eid)`` key the
environment assigns at schedule time: ties on time break on priority
(:data:`URGENT` before :data:`NORMAL`) and then FIFO on the monotonically
increasing event id.  Every pluggable scheduler
(:mod:`repro.des.scheduler`) must honour this total order exactly — it is
what makes scheduler choice invisible to simulation results.

This mirrors the SimPy event model closely so that simulation code written
against one transfers to the other, but the implementation here is
self-contained (no third-party dependency is available in this environment).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from .exceptions import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .core import Environment

__all__ = ["PENDING", "Event", "Timeout", "Condition", "AllOf", "AnyOf"]


class _Pending:
    """Sentinel marking an event that has no value yet."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<PENDING>"


PENDING: Any = _Pending()

#: Scheduling priorities.  URGENT events at the same timestamp run before
#: NORMAL ones; the kernel uses URGENT for bookkeeping events (e.g. resource
#: releases) so user-visible state is consistent when processes resume.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    env:
        The owning :class:`~repro.des.core.Environment`.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        #: Failed events raise at the kernel level unless some waiter (or
        #: ``defused = True``) marks the failure as handled.
        self._defused: bool = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value and is scheduled."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event's value (or the exception it failed with)."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    @property
    def defused(self) -> bool:
        return self._defused

    @defused.setter
    def defused(self, value: bool) -> None:
        self._defused = bool(value)

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env._schedule(self, priority=NORMAL)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have ``exception`` thrown into them.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env._schedule(self, priority=NORMAL)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger with the state (ok/value) of another event.

        Useful as a callback: ``other.callbacks.append(this.trigger)``.
        """
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = event._ok
        self._value = event._value
        self.env._schedule(self, priority=NORMAL)

    # -- composition ----------------------------------------------------
    def __and__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.all_events, [self, other])

    def __or__(self, other: "Event") -> "Condition":
        return Condition(self.env, Condition.any_events, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed else "triggered" if self.triggered else "pending"
        )
        return f"<{type(self).__name__} ({state}) at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("_delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        super().__init__(env)
        self._delay = delay
        self._ok = True
        self._value = value
        env._schedule(self, priority=NORMAL, delay=delay)

    @property
    def delay(self) -> float:
        return self._delay

    def __repr__(self) -> str:
        return f"<Timeout delay={self._delay} at {id(self):#x}>"


class Condition(Event):
    """An event that triggers when a predicate over child events holds.

    The condition's value is an ordered dict-like mapping of the child events
    that have triggered so far to their values (see :class:`ConditionValue`).
    A failing child event fails the whole condition immediately.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise SimulationError("events belong to different environments")

        if not self._events:
            self.succeed(ConditionValue([]))
            return

        for event in self._events:
            if event.processed:
                self._check(event)
            else:
                assert event.callbacks is not None
                event.callbacks.append(self._check)

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                # The condition no longer cares; don't let the child's
                # failure crash the simulation.
                event._defused = True
            return
        self._count += 1
        if not event._ok:
            event._defused = True
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            # Only *processed* children go into the value: a pending Timeout
            # already carries its value from creation, but it has not yet
            # occurred in simulated time.
            self.succeed(
                ConditionValue([e for e in self._events if e.processed or e is event])
            )

    @staticmethod
    def all_events(events: List[Event], count: int) -> bool:
        return len(events) == count

    @staticmethod
    def any_events(events: List[Event], count: int) -> bool:
        return count > 0 or not events


class ConditionValue:
    """Ordered mapping of triggered child events to their values."""

    __slots__ = ("events",)

    def __init__(self, events: List[Event]) -> None:
        self.events = events

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(key)
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __iter__(self):
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def todict(self) -> dict:
        return {event: event._value for event in self.events}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ConditionValue {self.todict()!r}>"


class AllOf(Condition):
    """Triggers when *all* child events have triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_events, events)


class AnyOf(Condition):
    """Triggers when *any* child event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_events, events)
