"""Exception types for the discrete-event simulation kernel."""

from __future__ import annotations


class SimulationError(Exception):
    """Base class for errors raised by the DES kernel itself."""


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Internal control-flow exception that ends :meth:`Environment.run`.

    Carries the value of the event that caused the stop.
    """

    def __init__(self, value: object) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process when :meth:`Process.interrupt` is called.

    The interrupted process may catch this and continue; ``cause`` carries
    the value passed to ``interrupt()``.
    """

    @property
    def cause(self) -> object:
        return self.args[0]
