"""Requests and request sets.

A request asks for one or more whole objects (paper assumptions 2–4); a
request set carries the Zipf popularity distribution that both placement
(object probabilities, Step 1) and evaluation (sampling 200 requests) use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence

import numpy as np

from .objects import ObjectCatalog

__all__ = ["Request", "RequestSet"]


@dataclass(frozen=True)
class Request:
    """One pre-defined request: a set of object ids plus its popularity."""

    id: int
    object_ids: tuple
    probability: float

    def __post_init__(self) -> None:
        if len(self.object_ids) == 0:
            raise ValueError(f"request {self.id} asks for no objects")
        if len(set(self.object_ids)) != len(self.object_ids):
            raise ValueError(f"request {self.id} lists an object twice")
        if self.probability < 0:
            raise ValueError(f"request {self.id} has negative probability")

    def total_size_mb(self, catalog: ObjectCatalog) -> float:
        return catalog.total_size_mb(self.object_ids)

    def __len__(self) -> int:
        return len(self.object_ids)


class RequestSet:
    """The N_req pre-defined requests with a normalized popularity vector."""

    def __init__(self, requests: Sequence[Request]):
        if not requests:
            raise ValueError("request set must contain at least one request")
        self._requests: List[Request] = list(requests)
        probs = np.array([r.probability for r in self._requests], dtype=np.float64)
        total = probs.sum()
        if total <= 0:
            raise ValueError("request probabilities must sum to a positive value")
        self._probs = probs / total

    @property
    def probabilities(self) -> np.ndarray:
        """Normalized popularity vector (sums to 1)."""
        view = self._probs.view()
        view.flags.writeable = False
        return view

    def object_probabilities(self, num_objects: int) -> np.ndarray:
        """Per-object access probability: P(O) = Σ_{O ∈ R} P(R) (Step 1).

        Note these are *not* normalized — the same object may appear in
        several requests, exactly as the paper defines.
        """
        probs = np.zeros(num_objects, dtype=np.float64)
        for request, p in zip(self._requests, self._probs):
            ids = np.asarray(request.object_ids, dtype=np.intp)
            if ids.size and (ids.min() < 0 or ids.max() >= num_objects):
                raise ValueError(
                    f"request {request.id} references objects outside 0..{num_objects - 1}"
                )
            probs[ids] += p
        return probs

    def sample(self, rng: np.random.Generator, size: int) -> List[Request]:
        """Draw ``size`` requests (with replacement) per the popularity."""
        idx = rng.choice(len(self._requests), size=size, p=self._probs)
        return [self._requests[i] for i in idx]

    def average_request_size_mb(self, catalog: ObjectCatalog) -> float:
        """Popularity-weighted mean request size (the paper's "average
        request size" knob in Figures 6–9)."""
        sizes = np.array([r.total_size_mb(catalog) for r in self._requests])
        return float(np.dot(sizes, self._probs))

    def __len__(self) -> int:
        return len(self._requests)

    def __getitem__(self, index: int) -> Request:
        return self._requests[index]

    def __iter__(self) -> Iterator[Request]:
        return iter(self._requests)

    def __repr__(self) -> str:
        mean_len = np.mean([len(r) for r in self._requests])
        return f"<RequestSet {len(self)} requests, mean {mean_len:.1f} objects/request>"
