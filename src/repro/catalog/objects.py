"""The object catalog: ids, sizes, and derived access probabilities.

Objects are identified by dense integer ids ``0 .. N-1``; sizes and
probabilities live in NumPy arrays so placement algorithms can sort/scan
30 000 objects vectorized (per the HPC guides: vectorize, don't loop).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Sequence

import numpy as np

__all__ = ["StorageObject", "ObjectCatalog"]


@dataclass(frozen=True)
class StorageObject:
    """A lightweight view of one catalog entry."""

    id: int
    size_mb: float
    probability: float

    @property
    def density(self) -> float:
        """Probability density P(O)/size(O) — the Step-2 sort key."""
        return self.probability / self.size_mb

    @property
    def load(self) -> float:
        """Load P(O)×size(O) — the Sec. 5.4 balancing weight."""
        return self.probability * self.size_mb


class ObjectCatalog:
    """All objects of a workload, array-backed."""

    def __init__(self, sizes_mb: Sequence[float], probabilities: Optional[Sequence[float]] = None):
        self._sizes = np.asarray(sizes_mb, dtype=np.float64)
        if self._sizes.ndim != 1:
            raise ValueError("sizes_mb must be one-dimensional")
        if len(self._sizes) == 0:
            raise ValueError("catalog must contain at least one object")
        if np.any(self._sizes <= 0):
            raise ValueError("all object sizes must be positive")
        if probabilities is None:
            self._probs = np.zeros(len(self._sizes), dtype=np.float64)
        else:
            self.set_probabilities(probabilities)

    # -- array access ------------------------------------------------------
    @property
    def sizes_mb(self) -> np.ndarray:
        """Read-only view of object sizes."""
        view = self._sizes.view()
        view.flags.writeable = False
        return view

    @property
    def probabilities(self) -> np.ndarray:
        """Read-only view of per-object access probabilities (Step 1)."""
        view = self._probs.view()
        view.flags.writeable = False
        return view

    @property
    def densities(self) -> np.ndarray:
        """P(O)/size(O) for every object."""
        return self._probs / self._sizes

    @property
    def loads(self) -> np.ndarray:
        """P(O)×size(O) for every object."""
        return self._probs * self._sizes

    def set_probabilities(self, probabilities: Sequence[float]) -> None:
        probs = np.asarray(probabilities, dtype=np.float64)
        if probs.shape != self._sizes.shape:
            raise ValueError(
                f"probabilities shape {probs.shape} does not match catalog size {self._sizes.shape}"
            )
        if np.any(probs < 0):
            raise ValueError("probabilities must be non-negative")
        self._probs = probs.copy()

    # -- scalar access -------------------------------------------------------
    def size_of(self, object_id: int) -> float:
        return float(self._sizes[object_id])

    def probability_of(self, object_id: int) -> float:
        return float(self._probs[object_id])

    def object(self, object_id: int) -> StorageObject:
        return StorageObject(object_id, self.size_of(object_id), self.probability_of(object_id))

    def total_size_mb(self, object_ids: Optional[Sequence[int]] = None) -> float:
        if object_ids is None:
            return float(self._sizes.sum())
        return float(self._sizes[np.asarray(object_ids, dtype=np.intp)].sum())

    def __len__(self) -> int:
        return len(self._sizes)

    def __iter__(self) -> Iterator[StorageObject]:
        for i in range(len(self)):
            yield self.object(i)

    def __repr__(self) -> str:
        return (
            f"<ObjectCatalog {len(self)} objects, {self._sizes.sum() / 1e6:.2f} TB, "
            f"mean {self._sizes.mean():.0f} MB>"
        )
