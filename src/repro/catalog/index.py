"""The object-location indexing database of Sec. 6.

"Integrated with the simulator is an indexing database that stores object
locations as well as other object properties" — given a request, the
simulator resolves each object to its (tape, extent) here.

Whole objects occupy exactly one extent (the paper's model); the striping
baseline registers several *fragments* per object, each on a different
tape.  :meth:`group_by_tape` expands a request to every fragment involved,
so the simulator transparently reads striped objects from multiple drives
and the request completes only when the last fragment lands — striping's
synchronization latency needs no special-casing in the engine.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Mapping, Tuple

from ..hardware.system import TapeSystem
from ..hardware.tape import ObjectExtent, TapeId

__all__ = ["LocationIndex"]


class LocationIndex:
    """Maps every placed object id to its tape(s) and extent(s)."""

    def __init__(self) -> None:
        self._locations: Dict[int, List[Tuple[TapeId, ObjectExtent]]] = {}

    @classmethod
    def from_system(cls, system: TapeSystem) -> "LocationIndex":
        """Build the index by scanning all tape layouts.

        The bulk build runs inside every simulation's timed region (the
        index is materialized lazily on first request), so the common
        first-sighting of a whole object inserts directly; only repeat
        sightings (striped fragments — or duplicates, which must still
        raise) go through :meth:`add`'s full validation.
        """
        index = cls()
        locations = index._locations
        add = index.add
        for tape in system.all_tapes():
            tape_id = tape.id
            for extent in tape:
                object_id = extent.object_id
                if object_id not in locations:
                    locations[object_id] = [(tape_id, extent)]
                else:
                    add(object_id, tape_id, extent)
        return index

    def add(self, object_id: int, tape_id: TapeId, extent: ObjectExtent) -> None:
        entries = self._locations.get(object_id)
        if entries is None:
            self._locations[object_id] = [(tape_id, extent)]
            return
        if entries:
            first = entries[0][1]
            if extent.parts == 1 or first.parts == 1:
                raise ValueError(
                    f"object {object_id} already indexed on {entries[0][0]}; whole "
                    "objects are not replicated (no striping without fragments)"
                )
            if extent.parts != first.parts:
                raise ValueError(
                    f"object {object_id}: inconsistent fragment counts "
                    f"({extent.parts} vs {first.parts})"
                )
            if any(e.part == extent.part for _, e in entries):
                raise ValueError(
                    f"object {object_id}: fragment {extent.part} indexed twice"
                )
        entries.append((tape_id, extent))

    # -- whole-object queries ----------------------------------------------
    def locate(self, object_id: int) -> Tuple[TapeId, ObjectExtent]:
        """Location of a *whole* object (raises for striped objects)."""
        entries = self._entries(object_id)
        if len(entries) > 1 or entries[0][1].parts > 1:
            raise ValueError(
                f"object {object_id} is striped over {entries[0][1].parts} fragments; "
                "use locate_all()"
            )
        return entries[0]

    def locate_all(self, object_id: int) -> List[Tuple[TapeId, ObjectExtent]]:
        """All fragments of an object, in part order."""
        return sorted(self._entries(object_id), key=lambda te: te[1].part)

    def tape_of(self, object_id: int) -> TapeId:
        return self.locate(object_id)[0]

    def is_complete(self, object_id: int) -> bool:
        """All declared fragments of the object are present."""
        entries = self._locations.get(object_id, [])
        if not entries:
            return False
        return len(entries) == entries[0][1].parts

    def group_by_tape(self, object_ids: Iterable[int]) -> Mapping[TapeId, List[ObjectExtent]]:
        """Resolve a request's objects (all fragments) into per-tape lists.

        This is the first step of serving a request: "Given a request, the
        corresponding tapes are identified based on the object indexing
        database."
        """
        groups: Dict[TapeId, List[ObjectExtent]] = defaultdict(list)
        for object_id in object_ids:
            for tape_id, extent in self._entries(object_id):
                groups[tape_id].append(extent)
        return dict(groups)

    def _entries(self, object_id: int) -> List[Tuple[TapeId, ObjectExtent]]:
        try:
            return self._locations[object_id]
        except KeyError:
            raise KeyError(f"object {object_id} has not been placed") from None

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._locations

    def __len__(self) -> int:
        return len(self._locations)
