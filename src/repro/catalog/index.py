"""The object-location indexing database of Sec. 6.

"Integrated with the simulator is an indexing database that stores object
locations as well as other object properties" — given a request, the
simulator resolves each object to its (tape, extent) here.

Whole objects occupy exactly one extent (the paper's model); the striping
baseline registers several *fragments* per object, each on a different
tape.  :meth:`group_by_tape` expands a request to every fragment involved,
so the simulator transparently reads striped objects from multiple drives
and the request completes only when the last fragment lands — striping's
synchronization latency needs no special-casing in the engine.

The redundancy layer (:mod:`repro.redundancy`) adds the *any-of*
dimension: a fragment may exist as several interchangeable
redundancy-group members (``ObjectExtent.replicas`` copies of which
``needed`` suffice).  :meth:`group_by_tape` then resolves to the primary
read set (lowest replica indices), while :meth:`redundancy_groups` exposes
the full candidate lists for choice-of-d dispatch.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from ..hardware.system import TapeSystem
from ..hardware.tape import ObjectExtent, TapeId

__all__ = ["LocationIndex", "RedundancyGroup"]


@dataclass(frozen=True)
class RedundancyGroup:
    """One fragment's interchangeable placements: read any ``needed``.

    ``members`` are in replica order; for non-redundant fragments the group
    degenerates to a single member with ``needed == 1``, so dispatch code
    can treat every request uniformly.
    """

    object_id: int
    part: int
    needed: int
    members: Tuple[Tuple[TapeId, ObjectExtent], ...]

    @property
    def bytes_mb(self) -> float:
        """Bytes a successful read of this fragment must transfer."""
        return self.needed * self.members[0][1].size_mb


class LocationIndex:
    """Maps every placed object id to its tape(s) and extent(s)."""

    def __init__(self) -> None:
        self._locations: Dict[int, List[Tuple[TapeId, ObjectExtent]]] = {}
        self._redundant = False

    @classmethod
    def from_system(cls, system: TapeSystem) -> "LocationIndex":
        """Build the index by scanning all tape layouts.

        The bulk build runs inside every simulation's timed region (the
        index is materialized lazily on first request), so the common
        first-sighting of a whole object inserts directly; only repeat
        sightings (striped fragments — or duplicates, which must still
        raise) go through :meth:`add`'s full validation.
        """
        index = cls()
        locations = index._locations
        add = index.add
        for tape in system.all_tapes():
            tape_id = tape.id
            for extent in tape:
                object_id = extent.object_id
                if object_id not in locations:
                    locations[object_id] = [(tape_id, extent)]
                    if extent.replicas > 1:
                        index._redundant = True
                else:
                    add(object_id, tape_id, extent)
        return index

    def add(self, object_id: int, tape_id: TapeId, extent: ObjectExtent) -> None:
        entries = self._locations.get(object_id)
        if entries is None:
            self._locations[object_id] = [(tape_id, extent)]
            if extent.replicas > 1:
                self._redundant = True
            return
        if entries:
            first = entries[0][1]
            if (
                extent.parts == 1
                and first.parts == 1
                and extent.replicas == 1
                and first.replicas == 1
            ):
                raise ValueError(
                    f"object {object_id} already indexed on {entries[0][0]}; whole "
                    "objects are not replicated (declare replicas on the extents "
                    "for redundancy, or fragments for striping)"
                )
            if extent.parts != first.parts:
                raise ValueError(
                    f"object {object_id}: inconsistent fragment counts "
                    f"({extent.parts} vs {first.parts})"
                )
            if extent.replicas != first.replicas or extent.needed != first.needed:
                raise ValueError(
                    f"object {object_id}: inconsistent redundancy groups "
                    f"({extent.needed}/{extent.replicas} vs "
                    f"{first.needed}/{first.replicas})"
                )
            if any(
                e.part == extent.part and e.replica == extent.replica
                for _, e in entries
            ):
                raise ValueError(
                    f"object {object_id}: fragment {extent.part} replica "
                    f"{extent.replica} indexed twice"
                )
        if extent.replicas > 1:
            self._redundant = True
        entries.append((tape_id, extent))

    def remove_member(
        self, object_id: int, tape_id: TapeId, part: int, replica: int
    ) -> ObjectExtent:
        """Remove one redundancy-group member entry (media loss / rollback).

        The object's other members stay indexed; raises ``KeyError`` when no
        matching entry exists.  Used by the repair manager: the lost member
        is dropped so degraded reads stop routing to the dead cartridge, and
        re-added via :meth:`add` once rebuilt elsewhere.
        """
        entries = self._entries(object_id)
        for i, (tid, extent) in enumerate(entries):
            if tid == tape_id and extent.part == part and extent.replica == replica:
                del entries[i]
                return extent
        raise KeyError(
            f"object {object_id} part {part} replica {replica} "
            f"is not indexed on {tape_id}"
        )

    @property
    def has_redundancy(self) -> bool:
        """True when any indexed extent belongs to a redundancy group."""
        return self._redundant

    # -- whole-object queries ----------------------------------------------
    def locate(self, object_id: int) -> Tuple[TapeId, ObjectExtent]:
        """Location of a *whole* object (raises for striped/replicated)."""
        entries = self._entries(object_id)
        if len(entries) > 1 or entries[0][1].parts > 1:
            first = entries[0][1]
            what = (
                f"replicated over {first.replicas} members"
                if first.replicas > 1
                else f"striped over {first.parts} fragments"
            )
            raise ValueError(
                f"object {object_id} is {what}; use locate_all() or tapes_of()"
            )
        return entries[0]

    def locate_all(self, object_id: int) -> List[Tuple[TapeId, ObjectExtent]]:
        """All extents of an object, in (part, replica) order."""
        return sorted(
            self._entries(object_id), key=lambda te: (te[1].part, te[1].replica)
        )

    def tape_of(self, object_id: int) -> TapeId:
        """The tape of a single-extent object; raises on ambiguity.

        Striped or replicated objects live on several tapes — use
        :meth:`tapes_of` for the full tuple.
        """
        return self.locate(object_id)[0]

    def tapes_of(self, object_id: int) -> Tuple[TapeId, ...]:
        """Every tape holding an extent of the object, in (part, replica) order."""
        return tuple(tape_id for tape_id, _ in self.locate_all(object_id))

    def is_complete(self, object_id: int) -> bool:
        """All declared fragments (and redundancy members) are present."""
        entries = self._locations.get(object_id, [])
        if not entries:
            return False
        first = entries[0][1]
        return len(entries) == first.parts * first.replicas

    def group_by_tape(self, object_ids: Iterable[int]) -> Mapping[TapeId, List[ObjectExtent]]:
        """Resolve a request's objects (all fragments) into per-tape lists.

        This is the first step of serving a request: "Given a request, the
        corresponding tapes are identified based on the object indexing
        database."  For redundant objects the *primary* read set is chosen
        (the ``needed`` lowest replica indices per fragment) — the
        choice-of-d open-system dispatcher bypasses this and selects
        members dynamically via :meth:`redundancy_groups`.
        """
        groups: Dict[TapeId, List[ObjectExtent]] = defaultdict(list)
        if not self._redundant:
            for object_id in object_ids:
                for tape_id, extent in self._entries(object_id):
                    groups[tape_id].append(extent)
            return dict(groups)
        for object_id in object_ids:
            entries = self._entries(object_id)
            if entries[0][1].replicas == 1:
                for tape_id, extent in entries:
                    groups[tape_id].append(extent)
                continue
            needed = entries[0][1].needed
            by_part: Dict[int, List[Tuple[TapeId, ObjectExtent]]] = defaultdict(list)
            for tape_id, extent in entries:
                by_part[extent.part].append((tape_id, extent))
            for members in by_part.values():
                members.sort(key=lambda te: te[1].replica)
                for tape_id, extent in members[:needed]:
                    groups[tape_id].append(extent)
        return dict(groups)

    def redundancy_groups(self, object_ids: Iterable[int]) -> List[RedundancyGroup]:
        """A request's fragments as redundancy groups, in request order.

        Non-redundant fragments become single-member groups, so the
        choice-of-d dispatcher serves mixed catalogs with one code path.
        """
        out: List[RedundancyGroup] = []
        for object_id in object_ids:
            entries = self._entries(object_id)
            by_part: Dict[int, List[Tuple[TapeId, ObjectExtent]]] = defaultdict(list)
            for tape_id, extent in entries:
                by_part[extent.part].append((tape_id, extent))
            for part in sorted(by_part):
                members = sorted(by_part[part], key=lambda te: te[1].replica)
                out.append(
                    RedundancyGroup(
                        object_id=object_id,
                        part=part,
                        needed=members[0][1].needed,
                        members=tuple(members),
                    )
                )
        return out

    def _entries(self, object_id: int) -> List[Tuple[TapeId, ObjectExtent]]:
        try:
            return self._locations[object_id]
        except KeyError:
            raise KeyError(f"object {object_id} has not been placed") from None

    def __contains__(self, object_id: int) -> bool:
        return object_id in self._locations

    def __len__(self) -> int:
        return len(self._locations)
