"""Object catalog, request model, and the object-location index."""

from .index import LocationIndex, RedundancyGroup
from .objects import ObjectCatalog, StorageObject
from .requests import Request, RequestSet

__all__ = [
    "StorageObject",
    "ObjectCatalog",
    "Request",
    "RequestSet",
    "LocationIndex",
    "RedundancyGroup",
]
