"""Beyond-paper experiment drivers (A2–A10 of DESIGN.md's index).

These complement :mod:`repro.experiments.figures` (the paper's own
artifacts) with studies the paper motivates but does not run:

* A2 — incremental placement (the conclusion's open problem);
* A3 — queueing under a Poisson restore stream;
* A4 — disk-stage bandwidth (assumption-6 validation);
* A5 — object striping (the related-work baseline the paper declines);
* A10 — open-system scheduling: serial-FCFS vs concurrent in-flight requests;
* A11 — availability under stochastic drive fail/repair (fault injection).

Like the figure drivers, every driver expands to
:class:`~repro.experiments.parallel.PointSpec` jobs and runs through
:func:`~repro.experiments.parallel.run_sweep`, inheriting worker fan-out,
per-cell seed derivation, and the on-disk result cache.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..sim import available_scheduling_policies, available_seek_planners
from .parallel import EngineOptions, PointSpec, SweepSpec, run_sweep
from .report import ExperimentTable
from .runner import (
    ExperimentSettings,
    default_settings,
)

__all__ = [
    "incremental",
    "queueing",
    "disk_stage",
    "striping",
    "robots",
    "degraded",
    "seek_model",
    "open_system",
    "availability",
    "seek_planning",
    "redundancy",
    "repair",
]


def _scheme_configs(m: int) -> List[Tuple[str, Tuple]]:
    return [
        ("parallel_batch", (("m", m),)),
        ("object_probability", ()),
        ("cluster_probability", ()),
    ]


def incremental(
    settings: Optional[ExperimentSettings] = None,
    num_epochs: int = 3,
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    """A2 — omniscient vs affinity-append vs naive-append placement."""
    settings = settings or default_settings()
    strategies = [
        ("omniscient re-placement", "omniscient"),
        ("affinity append", "affinity"),
        ("naive append", "naive"),
    ]
    points = []
    for label, strategy in strategies:
        common = dict(
            sweep="incremental",
            axis="strategy",
            value=label,
            workload=settings.workload_params,
            spec=settings.spec(),
            num_samples=settings.samples,
            seed_group=("incremental",),
            seek_planner=settings.seek_planner,
            # settings.redundancy deliberately not threaded: redundancy
            # wraps static placements, and A2's points replay epochs.
        )
        if strategy == "omniscient":
            points.append(
                PointSpec(
                    scheme="parallel_batch",
                    scheme_kwargs=(("m", settings.m),),
                    **common,
                )
            )
        else:
            points.append(
                PointSpec(
                    scheme="parallel_batch",
                    kind="incremental",
                    run_kwargs=(
                        ("m", settings.m),
                        ("num_epochs", num_epochs),
                        ("strategy", strategy),
                    ),
                    **common,
                )
            )
    spec = SweepSpec(name="incremental", points=tuple(points), root_seed=settings.eval_seed)
    res = run_sweep(spec, engine)

    table = ExperimentTable(
        "A2",
        f"Incremental placement over {num_epochs} reveal epochs",
        ["strategy", "bandwidth (MB/s)", "response (s)", "switches/req"],
    )
    bws = {}
    for label, _ in strategies:
        r = res.one(value=label)
        bws[label] = r.avg_bandwidth_mb_s
        table.add_row(
            label, r.avg_bandwidth_mb_s, r.avg_response_s, r.avg_switches_per_request
        )
    table.data["bandwidths"] = bws
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append(
        "paper (conclusion): optimal placement under periodic arrival with "
        "local knowledge 'remains to be solved' — this quantifies the gap"
    )
    return table


def queueing(
    settings: Optional[ExperimentSettings] = None,
    arrival_rates_per_hour: Sequence[float] = (1.0, 2.0, 4.0, 6.0),
    num_arrivals: int = 60,
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    """A3 — mean sojourn time vs Poisson restore arrival rate, FCFS."""
    settings = settings or default_settings()
    schemes = _scheme_configs(settings.m)
    points = tuple(
        PointSpec(
            sweep="queueing",
            axis="rate",
            value=rate,
            scheme=name,
            scheme_kwargs=kwargs,
            workload=settings.workload_params,
            spec=settings.spec(),
            kind="fcfs",
            run_kwargs=(("num_arrivals", num_arrivals), ("rate_per_hour", rate)),
            seek_planner=settings.seek_planner,
            redundancy=settings.redundancy,
        )
        for rate in arrival_rates_per_hour
        for name, kwargs in schemes
    )
    res = run_sweep(
        SweepSpec(name="queueing", points=points, root_seed=settings.eval_seed), engine
    )

    table = ExperimentTable(
        "A3",
        "Mean sojourn time (s) vs restore arrival rate (per hour), FCFS",
        ["arrivals/h"] + [name for name, _ in schemes] + ["pb utilization"],
    )
    series = {name: [] for name, _ in schemes}
    service = {}
    for rate in arrival_rates_per_hour:
        row = [rate]
        pb_util = 0.0
        for name, _ in schemes:
            result = res.one(value=rate, scheme=name)
            row.append(result.mean_sojourn_s)
            series[name].append(result.mean_sojourn_s)
            service.setdefault(name, result.mean_service_s)
            if name == "parallel_batch":
                pb_util = result.utilization
        row.append(pb_util)
        table.add_row(*row)
    table.data["series"] = series
    table.data["mean_service_s"] = service
    table.data["rates"] = list(arrival_rates_per_hour)
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append("beyond-paper extension: the paper's model has zero queueing time")
    return table


def disk_stage(
    settings: Optional[ExperimentSettings] = None,
    disk_caps_mb_s: Sequence[Optional[float]] = (320.0, 640.0, 1280.0, 1920.0, None),
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    """A4 — parallel-batch bandwidth vs the disk staging bandwidth cap."""
    settings = settings or default_settings()
    specs = {
        cap: dataclasses.replace(settings.spec(), disk_bandwidth_mb_s=cap)
        for cap in disk_caps_mb_s
    }
    points = tuple(
        PointSpec(
            sweep="disk",
            axis="disk_cap_mb_s",
            value=cap,
            scheme="parallel_batch",
            scheme_kwargs=(("m", settings.m),),
            workload=settings.workload_params,
            spec=specs[cap],
            num_samples=settings.samples,
            seek_planner=settings.seek_planner,
            redundancy=settings.redundancy,
        )
        for cap in disk_caps_mb_s
    )
    res = run_sweep(
        SweepSpec(name="disk", points=points, root_seed=settings.eval_seed), engine
    )
    table = ExperimentTable(
        "A4",
        "Parallel-batch bandwidth (MB/s) vs disk-stage bandwidth cap",
        ["disk cap (MB/s)", "admitted streams", "bandwidth (MB/s)"],
    )
    series = []
    for cap in disk_caps_mb_s:
        r = res.one(value=cap)
        series.append(r.avg_bandwidth_mb_s)
        spec = specs[cap]
        table.add_row(
            cap if cap is not None else "unlimited",
            spec.disk_streams if spec.disk_streams is not None else "all",
            r.avg_bandwidth_mb_s,
        )
    table.data["series"] = series
    table.data["caps"] = list(disk_caps_mb_s)
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append("assumption 6 of the paper holds once the disk admits all drives")
    return table


def striping(
    settings: Optional[ExperimentSettings] = None,
    stripe_widths: Sequence[int] = (2, 4, 8),
    min_stripe_mb: float = 1000.0,
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    """A5 — object striping vs non-striped placement (Sec.-2 claim)."""
    settings = settings or default_settings()
    variants: List[Tuple[str, str, Tuple]] = [
        ("parallel batch", "parallel_batch", (("m", settings.m),)),
        ("non-striped (object probability)", "object_probability", ()),
    ]
    variants += [
        (
            f"striped, width {w}",
            "striped",
            (("min_stripe_mb", min_stripe_mb), ("stripe_width", w)),
        )
        for w in stripe_widths
    ]
    points = tuple(
        PointSpec(
            sweep="striping",
            axis="variant",
            value=label,
            scheme=scheme,
            scheme_kwargs=kwargs,
            workload=settings.workload_params,
            spec=settings.spec(),
            num_samples=settings.samples,
            seed_group=("striping",),
            seek_planner=settings.seek_planner,
            redundancy=settings.redundancy,
        )
        for label, scheme, kwargs in variants
    )
    res = run_sweep(
        SweepSpec(name="striping", points=points, root_seed=settings.eval_seed), engine
    )
    table = ExperimentTable(
        "A5",
        "Object striping vs non-striped placement",
        ["scheme", "bandwidth (MB/s)", "transfer (s)", "switches/req", "response (s)"],
    )
    rows = {}
    for label, _, _ in variants:
        r = res.one(value=label)
        rows[label] = {
            "bandwidth": r.avg_bandwidth_mb_s,
            "transfer": r.avg_transfer_s,
            "switches": r.avg_switches_per_request,
            "response": r.avg_response_s,
        }
        table.add_row(
            label, r.avg_bandwidth_mb_s, r.avg_transfer_s,
            r.avg_switches_per_request, r.avg_response_s,
        )
    table.data["rows"] = rows
    table.data["stripe_widths"] = list(stripe_widths)
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append(
        "paper (Sec. 2): striping trades transfer time for synchronization/"
        "switch cost and 'may perform worse than non-striping'"
    )
    return table


def robots(
    settings: Optional[ExperimentSettings] = None,
    robot_counts: Sequence[int] = (1, 2, 4),
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    """A6 — relax assumption 5: multiple robot arms per library.

    The single arm serializes all mount/unmount work within a library, so
    switch-heavy schemes should gain the most from a second arm; schemes
    that rarely switch should barely notice.
    """
    settings = settings or default_settings()
    schemes = _scheme_configs(settings.m)
    base = settings.spec()
    points = tuple(
        PointSpec(
            sweep="robots",
            axis="robots_per_library",
            value=count,
            scheme=name,
            scheme_kwargs=kwargs,
            workload=settings.workload_params,
            spec=dataclasses.replace(
                base, library=dataclasses.replace(base.library, num_robots=count)
            ),
            num_samples=settings.samples,
            seek_planner=settings.seek_planner,
            redundancy=settings.redundancy,
        )
        for count in robot_counts
        for name, kwargs in schemes
    )
    res = run_sweep(
        SweepSpec(name="robots", points=points, root_seed=settings.eval_seed), engine
    )
    table = ExperimentTable(
        "A6",
        "Effective bandwidth (MB/s) vs robot arms per library",
        ["robots/library"] + [name for name, _ in schemes],
    )
    series = {name: [] for name, _ in schemes}
    for count in robot_counts:
        row = [count]
        for name, _ in schemes:
            bw = res.one(value=count, scheme=name).avg_bandwidth_mb_s
            row.append(bw)
            series[name].append(bw)
        table.add_row(*row)
    table.data["series"] = series
    table.data["robot_counts"] = list(robot_counts)
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append(
        "beyond-paper what-if: the paper's assumption 5 fixes one arm per library"
    )
    return table


def degraded(
    settings: Optional[ExperimentSettings] = None,
    failed_per_library: Sequence[int] = (0, 1, 2, 4),
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    """A8 — degraded operation: bandwidth with failed drives.

    Permanently fails the highest-numbered ``k`` drives of every library
    (for parallel batch these are switch drives first) and measures the
    surviving bandwidth.  Every byte must still be served.
    """
    settings = settings or default_settings()
    spec = settings.spec()
    schemes = _scheme_configs(settings.m)
    d = spec.library.num_drives
    points = []
    for k in failed_per_library:
        if k >= d:
            raise ValueError(f"cannot fail all {d} drives of a library")
        names = tuple(
            f"L{lib}.D{d - 1 - j}"
            for lib in range(spec.num_libraries)
            for j in range(k)
        )
        for name, kwargs in schemes:
            points.append(
                PointSpec(
                    sweep="degraded",
                    axis="failed_per_library",
                    value=k,
                    scheme=name,
                    scheme_kwargs=kwargs,
                    workload=settings.workload_params,
                    spec=spec,
                    num_samples=settings.samples,
                    failed_drives=names,
                    seek_planner=settings.seek_planner,
                    redundancy=settings.redundancy,
                )
            )
    res = run_sweep(
        SweepSpec(name="degraded", points=tuple(points), root_seed=settings.eval_seed),
        engine,
    )
    table = ExperimentTable(
        "A8",
        "Effective bandwidth (MB/s) with k failed drives per library",
        ["failed/library"] + [name for name, _ in schemes],
    )
    series = {name: [] for name, _ in schemes}
    for k in failed_per_library:
        row = [k]
        for name, _ in schemes:
            bw = res.one(value=k, scheme=name).avg_bandwidth_mb_s
            row.append(bw)
            series[name].append(bw)
        table.add_row(*row)
    table.data["series"] = series
    table.data["failed_per_library"] = list(failed_per_library)
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append(
        "beyond-paper: graceful degradation — all requested bytes are still "
        "served through the surviving drives"
    )
    return table


def seek_model(
    settings: Optional[ExperimentSettings] = None,
    startups_s: Sequence[float] = (0.0, 2.0, 5.0),
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    """A9 — robustness to the positioning model.

    The paper uses the pure linear locate model of Johnson & Miller; their
    measurements also show a constant per-positioning startup cost.  Adding
    it penalizes every seek equally; the scheme ranking should not move.
    """
    settings = settings or default_settings()
    schemes = _scheme_configs(settings.m)
    base = settings.spec()
    points = []
    for startup in startups_s:
        tape = dataclasses.replace(base.library.tape, locate_startup_s=startup)
        spec = dataclasses.replace(
            base, library=dataclasses.replace(base.library, tape=tape)
        )
        for name, kwargs in schemes:
            points.append(
                PointSpec(
                    sweep="seek_model",
                    axis="locate_startup_s",
                    value=startup,
                    scheme=name,
                    scheme_kwargs=kwargs,
                    workload=settings.workload_params,
                    spec=spec,
                    num_samples=settings.samples,
                    seek_planner=settings.seek_planner,
                    redundancy=settings.redundancy,
                )
            )
    res = run_sweep(
        SweepSpec(name="seek_model", points=tuple(points), root_seed=settings.eval_seed),
        engine,
    )
    table = ExperimentTable(
        "A9",
        "Effective bandwidth (MB/s) vs locate startup latency (affine model)",
        ["startup (s)"] + [name for name, _ in schemes] + ["winner"],
    )
    series = {name: [] for name, _ in schemes}
    winners = []
    for startup in startups_s:
        row = [startup]
        bws = {}
        for name, _ in schemes:
            bw = res.one(value=startup, scheme=name).avg_bandwidth_mb_s
            row.append(bw)
            series[name].append(bw)
            bws[name] = bw
        winner = max(bws, key=bws.get)
        winners.append(winner)
        row.append(winner)
        table.add_row(*row)
    table.data["series"] = series
    table.data["winners"] = winners
    table.data["startups_s"] = list(startups_s)
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append(
        "robustness check: the paper's linear positioning model is startup-free; "
        "adding an affine start cost must not change the scheme ranking"
    )
    return table


def open_system(
    settings: Optional[ExperimentSettings] = None,
    arrival_rates_per_hour: Sequence[float] = (2.0, 4.0, 8.0, 16.0),
    num_arrivals: int = 60,
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    """A10 — open-system scheduling: serial-FCFS vs concurrent requests.

    Same Poisson arrival stream, same placement, one shared clock; only the
    request-scheduling policy differs.  The concurrent policy overlaps
    in-flight requests across libraries and drives, so its sojourn-time
    advantage over serial FCFS grows with the offered load.
    """
    settings = settings or default_settings()
    policies = list(available_scheduling_policies())
    points = tuple(
        PointSpec(
            sweep="open_system",
            axis="rate",
            value=rate,
            scheme="parallel_batch",
            scheme_kwargs=(("m", settings.m),),
            workload=settings.workload_params,
            spec=settings.spec(),
            kind="open",
            run_kwargs=(
                ("num_arrivals", num_arrivals),
                ("policy", policy),
                ("rate_per_hour", rate),
            ),
            label=policy,
            # Policies at one rate share the seed: identical arrival streams.
            seek_planner=settings.seek_planner,
            redundancy=settings.redundancy,
        )
        for rate in arrival_rates_per_hour
        for policy in policies
    )
    res = run_sweep(
        SweepSpec(name="open_system", points=points, root_seed=settings.eval_seed),
        engine,
    )

    table = ExperimentTable(
        "A10",
        "Mean sojourn time (s) vs arrival rate: request-scheduling policies",
        ["arrivals/h"] + policies + ["speedup", "peak in flight"],
    )
    series: Dict[str, List[float]] = {policy: [] for policy in policies}
    peaks = []
    for rate in arrival_rates_per_hour:
        row = [rate]
        results = {p: res.one(value=rate, label=p) for p in policies}
        for policy in policies:
            row.append(results[policy].mean_sojourn_s)
            series[policy].append(results[policy].mean_sojourn_s)
        serial = results["serial-fcfs"].mean_sojourn_s
        concurrent = results["concurrent"].mean_sojourn_s
        peak = results["concurrent"].peak_in_flight
        peaks.append(peak)
        row.append(serial / concurrent if concurrent > 0 else float("nan"))
        row.append(peak)
        table.add_row(*row)
    table.data["series"] = series
    table.data["rates"] = list(arrival_rates_per_hour)
    table.data["peak_in_flight"] = peaks
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append(
        "beyond-paper extension: one persistent environment serves overlapping "
        "requests; serial-fcfs reproduces the A3 closed-loop model seed-for-seed"
    )
    return table


def availability(
    settings: Optional[ExperimentSettings] = None,
    mtbf_hours: Sequence[float] = (1.0, 2.0, 4.0, 10.0),
    mttr_hours: float = 0.5,
    arrival_rate_per_hour: float = 8.0,
    num_arrivals: int = 60,
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    """A11 — placement schemes under stochastic drive failures/repairs.

    Every drive runs an independent exponential fail/repair process whose
    MTBF sweeps over a decade while MTTR stays fixed; the three placement
    schemes serve the *same* Poisson arrival stream at each cell (schemes
    share the cell seed) with paired fault-timing substreams, so response
    time and availability differences isolate the placement decision.
    Parallel batch is differently fragile: a failed pinned drive forces
    batch-0 tapes through the switch drives (degraded parallel-batch mode)
    until repair restores the pinned mount.
    """
    settings = settings or default_settings()
    schemes = _scheme_configs(settings.m)
    points = tuple(
        PointSpec(
            sweep="availability",
            axis="mtbf_h",
            value=mtbf,
            scheme=scheme,
            scheme_kwargs=scheme_kwargs,
            workload=settings.workload_params,
            spec=settings.spec(),
            kind="chaos",
            run_kwargs=(
                ("mtbf_h", mtbf),
                ("mttr_h", mttr_hours),
                ("num_arrivals", num_arrivals),
                ("policy", "concurrent"),
                ("rate_per_hour", arrival_rate_per_hour),
            ),
            label=scheme,
            # Schemes at one MTBF share the seed: identical arrival streams
            # and identical per-drive fault-timing substreams.
            seek_planner=settings.seek_planner,
            redundancy=settings.redundancy,
        )
        for mtbf in mtbf_hours
        for scheme, scheme_kwargs in schemes
    )
    res = run_sweep(
        SweepSpec(name="availability", points=points, root_seed=settings.eval_seed),
        engine,
    )

    scheme_names = [name for name, _ in schemes]
    table = ExperimentTable(
        "A11",
        "Mean sojourn (s) and availability vs drive MTBF "
        f"(MTTR {mttr_hours} h, {arrival_rate_per_hour}/h arrivals)",
        ["MTBF (h)"]
        + [f"{s} sojourn" for s in scheme_names]
        + [f"{s} avail" for s in scheme_names]
        + ["aborted"],
    )
    sojourns: Dict[str, List[float]] = {s: [] for s in scheme_names}
    availabilities: Dict[str, List[float]] = {s: [] for s in scheme_names}
    aborted: List[int] = []
    for mtbf in mtbf_hours:
        results = {s: res.one(value=mtbf, label=s) for s in scheme_names}
        row: List[object] = [mtbf]
        for s in scheme_names:
            sojourns[s].append(results[s].mean_sojourn_s)
            row.append(results[s].mean_sojourn_s)
        for s in scheme_names:
            availabilities[s].append(results[s].availability)
            row.append(results[s].availability)
        aborted.append(sum(results[s].aborted_requests for s in scheme_names))
        row.append(aborted[-1])
        table.add_row(*row)
    table.data["series"] = sojourns
    table.data["availability"] = availabilities
    table.data["mtbf_hours"] = list(mtbf_hours)
    table.data["aborted"] = aborted
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append(
        "beyond-paper extension: stochastic fault injection "
        "(repro.sim.faults); availability = 1 - drive downtime / "
        "(drives x horizon); schemes at one MTBF share arrival and "
        "fault-timing streams"
    )
    return table


def redundancy(
    settings: Optional[ExperimentSettings] = None,
    levels: Sequence[str] = ("r=1", "k=2,n=3", "r=2"),
    mtbf_hours: float = 4.0,
    mttr_hours: float = 0.5,
    arrival_rate_per_hour: float = 8.0,
    num_arrivals: int = 60,
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    """A12 — availability/durability/sojourn vs redundancy level under churn.

    Parallel-batch placement is wrapped at each redundancy level
    (replication ``r=...`` or erasure ``k=...,n=...``) and serves the same
    Poisson stream under the same per-drive fail/repair churn as A11's
    fixed-MTBF cell: every level shares A11's ``("mtbf_h", mtbf, 0)``
    seed group, so the ``r=1`` level *is* A11's parallel-batch point
    seed-for-seed (pass-through wrapping is bit-identical) and differences
    across levels isolate redundancy.  Reported per level:

    * request availability — 1 − aborted/served (redundant dispatch falls
      back across failed drives, so this is where extra members pay off);
    * drive availability — A11's uptime metric, a placement-independent
      control column (the same fault streams hit every level);
    * analytic durability — P(≥ needed of n members available) with
      member unavailability MTTR/(MTBF+MTTR), the Aktas-Soljanin
      (arXiv:2312.10360) steady-state view of the same churn.

    Levels whose storage overhead (r, or n/k) cannot fit the system's
    capacity are skipped with a table note rather than failing the sweep
    (at the paper scale, utilization 0.56 rules out full 2x replication).
    """
    import math

    from ..redundancy import parse_redundancy
    from ..workload import generate_workload

    settings = settings or default_settings()
    spec = settings.spec()
    capacity_mb = (
        spec.num_libraries * spec.library.num_tapes * spec.library.tape.capacity_mb
    )
    data_mb = float(sum(generate_workload(settings.workload_params).catalog.sizes_mb))

    def overhead_of(level: str) -> float:
        parsed = parse_redundancy(level)
        if parsed["mode"] == "replicated":
            return float(parsed["r"])
        return parsed["n"] / parsed["k"]

    skipped: List[str] = []
    feasible: List[str] = []
    for level in levels:
        if data_mb * overhead_of(level) <= capacity_mb:
            feasible.append(level)
        else:
            skipped.append(level)

    points = tuple(
        PointSpec(
            sweep="redundancy",
            axis="redundancy",
            value=level,
            scheme="parallel_batch",
            scheme_kwargs=(("m", settings.m),),
            workload=settings.workload_params,
            spec=spec,
            kind="chaos",
            run_kwargs=(
                ("mtbf_h", mtbf_hours),
                ("mttr_h", mttr_hours),
                ("num_arrivals", num_arrivals),
                ("policy", "concurrent"),
                ("rate_per_hour", arrival_rate_per_hour),
            ),
            label=level,
            # A11's cell group at this MTBF: all levels share its arrival
            # and fault-timing streams, and the r=1 level reproduces A11's
            # parallel-batch numbers exactly.
            seed_group=("mtbf_h", mtbf_hours, 0),
            seek_planner=settings.seek_planner,
            redundancy=level,
        )
        for level in feasible
    )
    res = run_sweep(
        SweepSpec(name="redundancy", points=points, root_seed=settings.eval_seed),
        engine,
    )

    member_avail = mtbf_hours / (mtbf_hours + mttr_hours)

    def durability_of(level: str) -> float:
        parsed = parse_redundancy(level)
        if parsed["mode"] == "replicated":
            k, n = 1, parsed["r"]
        else:
            k, n = parsed["k"], parsed["n"]
        return float(
            sum(
                math.comb(n, i)
                * member_avail**i
                * (1.0 - member_avail) ** (n - i)
                for i in range(k, n + 1)
            )
        )

    table = ExperimentTable(
        "A12",
        "Availability, durability, and sojourn vs redundancy level "
        f"(MTBF {mtbf_hours} h, MTTR {mttr_hours} h, "
        f"{arrival_rate_per_hour}/h arrivals)",
        [
            "level",
            "overhead",
            "sojourn (s)",
            "request avail",
            "drive avail",
            "durability",
            "aborted",
            "fallbacks",
        ],
    )
    sojourns: List[float] = []
    request_avail: List[float] = []
    drive_avail: List[float] = []
    durabilities: List[float] = []
    aborted: List[int] = []
    fallbacks: List[float] = []
    for level in feasible:
        result = res.one(value=level, label=level)
        served = len(result.records)
        req_avail = 1.0 - result.aborted_requests / served if served else 0.0
        counter = result.registry.counters.get("redundancy.fallbacks")
        level_fallbacks = float(counter.value) if counter is not None else 0.0
        sojourns.append(result.mean_sojourn_s)
        request_avail.append(req_avail)
        drive_avail.append(result.availability)
        durabilities.append(durability_of(level))
        aborted.append(result.aborted_requests)
        fallbacks.append(level_fallbacks)
        table.add_row(
            level,
            round(overhead_of(level), 3),
            result.mean_sojourn_s,
            req_avail,
            result.availability,
            durabilities[-1],
            result.aborted_requests,
            level_fallbacks,
        )
    table.data["levels"] = feasible
    table.data["overhead"] = [overhead_of(level) for level in feasible]
    table.data["series"] = {"sojourn_s": sojourns}
    table.data["request_availability"] = request_avail
    table.data["drive_availability"] = drive_avail
    table.data["durability"] = durabilities
    table.data["aborted"] = aborted
    table.data["fallbacks"] = fallbacks
    table.data["mtbf_hours"] = mtbf_hours
    table.data["mttr_hours"] = mttr_hours
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append(
        "beyond-paper extension: repro.redundancy over parallel_batch; "
        "levels share A11's fixed-MTBF cell seed (r=1 matches A11's "
        "parallel-batch point seed-for-seed); request availability = "
        "1 - aborted/served; durability = P(>=k of n members up) at "
        "member availability MTBF/(MTBF+MTTR)"
    )
    if skipped:
        table.notes.append(
            "skipped (storage overhead exceeds capacity at this scale): "
            + ", ".join(skipped)
        )
    return table


def repair(
    settings: Optional[ExperimentSettings] = None,
    levels: Sequence[str] = ("r=1", "k=2,n=3", "r=2"),
    policies: Sequence[str] = ("user-first", "repair-first", "fair-share"),
    mtbf_hours: float = 4.0,
    mttr_hours: float = 0.5,
    arrival_rate_per_hour: float = 8.0,
    num_arrivals: int = 60,
    fail_tape_at_hours: float = 0.25,
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    """A13 — simulated MTTDL and sojourn inflation vs repair policy.

    Each redundancy level's *busiest* tape (most bytes placed) is
    destroyed early in the run (:class:`~repro.sim.faults.TapeFailure`),
    on top of A12's per-drive fail/repair churn, and the repair manager
    re-replicates the lost members through the same drives that serve
    user restores — once per :data:`~repro.sim.repair.REPAIR_POLICIES`
    entry.  Reported per (level, policy):

    * simulated MTTDL — horizon x objects / objects lost (infinite when
      the level rebuilds everything, as r>=2 should);
    * restore-sojourn inflation — mean sojourn over the same level's
      *no-media-fault* baseline, which shares A12's
      ``("mtbf_h", mtbf, 0)`` seed group and run parameters, so the
      baseline rows are A12's rows seed-for-seed (and cache-hit
      identical: the PointSpecs are byte-equal);
    * repair backlog — at-risk x seconds integrated over the run.

    ``r=1`` is the control: no survivors to rebuild from, so its media
    loss lands entirely in ``objects_lost`` and finite MTTDL.
    """
    import math

    from ..placement import ParallelBatchPlacement
    from ..redundancy import parse_redundancy, wrap_scheme
    from ..sim import SimulationSession
    from ..workload import generate_workload

    settings = settings or default_settings()
    spec = settings.spec()
    capacity_mb = (
        spec.num_libraries * spec.library.num_tapes * spec.library.tape.capacity_mb
    )
    workload = generate_workload(settings.workload_params)
    data_mb = float(sum(workload.catalog.sizes_mb))

    def overhead_of(level: str) -> float:
        parsed = parse_redundancy(level)
        if parsed["mode"] == "replicated":
            return float(parsed["r"])
        return parsed["n"] / parsed["k"]

    skipped: List[str] = []
    feasible: List[str] = []
    for level in levels:
        if data_mb * overhead_of(level) <= capacity_mb:
            feasible.append(level)
        else:
            skipped.append(level)

    # The doomed cartridge, per level: the placement is deterministic, so
    # picking the max-bytes tape here matches what every worker will build.
    def busiest_tape(level: str) -> str:
        scheme = wrap_scheme(ParallelBatchPlacement(m=settings.m), level)
        session = SimulationSession(workload, spec, scheme=scheme)
        return str(max(session.system.all_tapes(), key=lambda t: (t.used_mb, t.id)).id)

    doomed = {level: busiest_tape(level) for level in feasible}

    base_run_kwargs = (
        ("mtbf_h", mtbf_hours),
        ("mttr_h", mttr_hours),
        ("num_arrivals", num_arrivals),
        ("policy", "concurrent"),
        ("rate_per_hour", arrival_rate_per_hour),
    )
    common = dict(
        scheme="parallel_batch",
        scheme_kwargs=(("m", settings.m),),
        workload=settings.workload_params,
        spec=spec,
        kind="chaos",
        seed_group=("mtbf_h", mtbf_hours, 0),
        seek_planner=settings.seek_planner,
    )
    # Baseline points are byte-identical to A12's (same sweep/axis/labels),
    # so a cached A12 run is reused outright and the inflation denominator
    # is exactly A12's sojourn column.
    baselines = tuple(
        PointSpec(
            sweep="redundancy",
            axis="redundancy",
            value=level,
            run_kwargs=base_run_kwargs,
            label=level,
            redundancy=level,
            **common,
        )
        for level in feasible
    )
    fault_points = tuple(
        PointSpec(
            sweep="repair",
            axis="repair",
            value=f"{level}|{policy}",
            run_kwargs=base_run_kwargs
            + (
                ("fail_tape", doomed[level]),
                ("fail_tape_at_s", fail_tape_at_hours * 3600.0),
                ("repair_policy", policy),
            ),
            label=policy,
            redundancy=level,
            **common,
        )
        for level in feasible
        for policy in policies
    )
    res = run_sweep(
        SweepSpec(
            name="repair",
            points=baselines + fault_points,
            root_seed=settings.eval_seed,
        ),
        engine,
    )

    def mttdl_hours(result) -> float:
        lost = result.objects_lost
        if lost <= 0:
            return math.inf
        total = float(result.repair.get("objects_total", 0.0))
        return result.horizon_s / 3600.0 * total / lost

    table = ExperimentTable(
        "A13",
        "Simulated MTTDL, durability, and sojourn inflation vs repair "
        f"policy (busiest tape lost at {fail_tape_at_hours} h, MTBF "
        f"{mtbf_hours} h churn, {arrival_rate_per_hour}/h arrivals)",
        [
            "level",
            "policy",
            "sojourn (s)",
            "inflation",
            "durability",
            "objects lost",
            "rebuilt",
            "backlog (h)",
            "MTTDL (h)",
        ],
    )
    series: Dict[str, Dict[str, float]] = {}
    durabilities: Dict[str, Dict[str, float]] = {}
    mttdl: Dict[str, Dict[str, float]] = {}
    inflation: Dict[str, Dict[str, float]] = {}
    for level in feasible:
        base = res.one(value=level, label=level)
        table.add_row(
            level, "none", base.mean_sojourn_s, 1.0, base.durability,
            base.objects_lost, 0, 0.0, mttdl_hours(base),
        )
        series[level] = {"none": base.mean_sojourn_s}
        durabilities[level] = {"none": base.durability}
        mttdl[level] = {"none": mttdl_hours(base)}
        inflation[level] = {"none": 1.0}
        for policy in policies:
            result = res.one(value=f"{level}|{policy}", label=policy)
            ratio = (
                result.mean_sojourn_s / base.mean_sojourn_s
                if base.mean_sojourn_s
                else math.inf
            )
            backlog_h = result.repair_backlog_seconds / 3600.0
            table.add_row(
                level,
                policy,
                result.mean_sojourn_s,
                ratio,
                result.durability,
                result.objects_lost,
                int(result.repair.get("members_rebuilt", 0)),
                backlog_h,
                mttdl_hours(result),
            )
            series[level][policy] = result.mean_sojourn_s
            durabilities[level][policy] = result.durability
            mttdl[level][policy] = mttdl_hours(result)
            inflation[level][policy] = ratio
    table.data["levels"] = feasible
    table.data["policies"] = list(policies)
    table.data["doomed"] = doomed
    table.data["series"] = series
    table.data["durability"] = durabilities
    table.data["mttdl_h"] = mttdl
    table.data["inflation"] = inflation
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append(
        "beyond-paper extension: media-loss repair (repro.sim.repair); "
        "baseline rows share A12's seed group and PointSpecs (cache-hit "
        "identical); MTTDL = horizon x objects / objects_lost; backlog "
        "integrates group-at-risk seconds until each member is rebuilt"
    )
    if skipped:
        table.notes.append(
            "skipped (storage overhead exceeds capacity at this scale): "
            + ", ".join(skipped)
        )
    return table


def seek_planning(
    settings: Optional[ExperimentSettings] = None,
    batch_scales: Sequence[float] = (1.0, 2.0, 4.0),
    locate_startup_s: float = 4.0,
    arrival_rate_per_hour: float = 8.0,
    num_arrivals: int = 40,
    planners: Optional[Sequence[str]] = None,
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    """E4 — per-planner sojourn time vs request batch size (LTSP family).

    Every registered seek planner serves the *same* open-system arrival
    stream (planners at one batch scale share the cell seed and the planner
    name rides in each point's cache key, so cached cells never alias
    across planners).  The batch scale multiplies the workload's
    objects-per-request bounds: larger batches put more objects on each
    tape visit, which is exactly where retrieval-order optimization can
    beat the paper's two-sweep heuristic.  The system spec uses an affine
    locate model (``locate_startup_s`` > 0): turning around at the right
    points then saves whole startup latencies by chaining nearby extents,
    so the ``exact`` LTSP plan can strictly undercut ``greedy-sweep``.
    """
    settings = settings or default_settings()
    names = list(planners) if planners is not None else list(available_seek_planners())
    base = settings.spec()
    tape = dataclasses.replace(base.library.tape, locate_startup_s=locate_startup_s)
    spec = dataclasses.replace(
        base, library=dataclasses.replace(base.library, tape=tape)
    )
    lo, hi = settings.workload_params.request_size_bounds
    workloads = {
        scale: dataclasses.replace(
            settings.workload_params,
            request_size_bounds=(max(1, round(lo * scale)), max(1, round(hi * scale))),
        )
        for scale in batch_scales
    }
    points = tuple(
        PointSpec(
            sweep="seekplan",
            axis="batch_scale",
            value=scale,
            scheme="parallel_batch",
            scheme_kwargs=(("m", settings.m),),
            workload=workloads[scale],
            spec=spec,
            kind="open",
            run_kwargs=(
                ("num_arrivals", num_arrivals),
                ("policy", "concurrent"),
                ("rate_per_hour", arrival_rate_per_hour),
            ),
            label=planner,
            # Planners at one batch scale share the seed: identical arrival
            # streams, so sojourn differences isolate the retrieval order.
            seek_planner=planner,
        )
        for scale in batch_scales
        for planner in names
    )
    res = run_sweep(
        SweepSpec(name="seekplan", points=points, root_seed=settings.eval_seed),
        engine,
    )

    table = ExperimentTable(
        "E4",
        "Mean sojourn (s) per seek planner vs request batch scale "
        f"(affine locate, startup {locate_startup_s} s, "
        f"{arrival_rate_per_hour}/h arrivals)",
        ["batch scale"]
        + names
        + ["exact vs greedy (%)"],
    )
    sojourns: Dict[str, List[float]] = {name: [] for name in names}
    seeks: Dict[str, List[float]] = {name: [] for name in names}
    gains: List[float] = []
    for scale in batch_scales:
        results = {name: res.one(value=scale, label=name) for name in names}
        row: List[object] = [scale]
        for name in names:
            r = results[name]
            sojourns[name].append(r.mean_sojourn_s)
            mean_seek = (
                sum(m.seek_s for m in r.metrics) / len(r.metrics)
                if r.metrics
                else 0.0
            )
            seeks[name].append(mean_seek)
            row.append(r.mean_sojourn_s)
        greedy = results["greedy-sweep"].mean_sojourn_s if "greedy-sweep" in results else None
        exact = results["exact"].mean_sojourn_s if "exact" in results else None
        gain = (
            100.0 * (greedy - exact) / greedy
            if greedy and exact is not None
            else float("nan")
        )
        gains.append(gain)
        row.append(gain)
        table.add_row(*row)
    table.data["series"] = sojourns
    table.data["seek_series"] = seeks
    table.data["batch_scales"] = list(batch_scales)
    table.data["exact_gain_pct"] = gains
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append(
        "beyond-paper extension: pluggable LTSP seek planners "
        "(repro.sim.seekplanner); planners at one cell share arrival "
        "streams, planner names participate in sweep-cache keys"
    )
    return table
