"""Beyond-paper experiment drivers (A2–A5 of DESIGN.md's index).

These complement :mod:`repro.experiments.figures` (the paper's own
artifacts) with studies the paper motivates but does not run:

* A2 — incremental placement (the conclusion's open problem);
* A3 — queueing under a Poisson restore stream;
* A4 — disk-stage bandwidth (assumption-6 validation);
* A5 — object striping (the related-work baseline the paper declines);
* A10 — open-system scheduling: serial-FCFS vs concurrent in-flight requests.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..placement import (
    IncrementalParallelBatch,
    ObjectProbabilityPlacement,
    ParallelBatchPlacement,
    StripedPlacement,
    split_into_epochs,
)
from ..sim import SimulationSession, available_scheduling_policies, simulate_fcfs_queue
from .report import ExperimentTable
from .runner import (
    ExperimentSettings,
    default_schemes,
    default_settings,
    paper_workload,
    run_open_comparison,
)

__all__ = [
    "incremental",
    "queueing",
    "disk_stage",
    "striping",
    "robots",
    "degraded",
    "seek_model",
    "open_system",
]


def incremental(
    settings: Optional[ExperimentSettings] = None, num_epochs: int = 3
) -> ExperimentTable:
    """A2 — omniscient vs affinity-append vs naive-append placement."""
    settings = settings or default_settings()
    workload = paper_workload(settings)
    spec = settings.spec()
    epochs = split_into_epochs(workload, num_epochs)

    table = ExperimentTable(
        "A2",
        f"Incremental placement over {num_epochs} reveal epochs",
        ["strategy", "bandwidth (MB/s)", "response (s)", "switches/req"],
    )
    variants = {
        "omniscient re-placement": SimulationSession(
            workload, spec, scheme=ParallelBatchPlacement(m=settings.m)
        ),
        "affinity append": SimulationSession(
            workload, spec,
            placement=IncrementalParallelBatch(
                m=settings.m, affinity=True
            ).place_incrementally(workload, epochs, spec),
        ),
        "naive append": SimulationSession(
            workload, spec,
            placement=IncrementalParallelBatch(
                m=settings.m, affinity=False
            ).place_incrementally(workload, epochs, spec),
        ),
    }
    bws = {}
    for label, session in variants.items():
        r = session.evaluate(num_samples=settings.samples, seed=settings.eval_seed)
        bws[label] = r.avg_bandwidth_mb_s
        table.add_row(
            label, r.avg_bandwidth_mb_s, r.avg_response_s, r.avg_switches_per_request
        )
    table.data["bandwidths"] = bws
    table.notes.append(
        "paper (conclusion): optimal placement under periodic arrival with "
        "local knowledge 'remains to be solved' — this quantifies the gap"
    )
    return table


def queueing(
    settings: Optional[ExperimentSettings] = None,
    arrival_rates_per_hour: Sequence[float] = (1.0, 2.0, 4.0, 6.0),
    num_arrivals: int = 60,
) -> ExperimentTable:
    """A3 — mean sojourn time vs Poisson restore arrival rate, FCFS."""
    settings = settings or default_settings()
    workload = paper_workload(settings)
    spec = settings.spec()
    schemes = default_schemes(m=settings.m)
    sessions = {s.name: SimulationSession(workload, spec, scheme=s) for s in schemes}

    table = ExperimentTable(
        "A3",
        "Mean sojourn time (s) vs restore arrival rate (per hour), FCFS",
        ["arrivals/h"] + [s.name for s in schemes] + ["pb utilization"],
    )
    series = {s.name: [] for s in schemes}
    service = {}
    for rate in arrival_rates_per_hour:
        row = [rate]
        pb_util = 0.0
        for scheme in schemes:
            result = simulate_fcfs_queue(
                sessions[scheme.name], rate, num_arrivals=num_arrivals,
                seed=settings.eval_seed,
            )
            row.append(result.mean_sojourn_s)
            series[scheme.name].append(result.mean_sojourn_s)
            service.setdefault(scheme.name, result.mean_service_s)
            if scheme.name == "parallel_batch":
                pb_util = result.utilization
        row.append(pb_util)
        table.add_row(*row)
    table.data["series"] = series
    table.data["mean_service_s"] = service
    table.data["rates"] = list(arrival_rates_per_hour)
    table.notes.append("beyond-paper extension: the paper's model has zero queueing time")
    return table


def disk_stage(
    settings: Optional[ExperimentSettings] = None,
    disk_caps_mb_s: Sequence[Optional[float]] = (320.0, 640.0, 1280.0, 1920.0, None),
) -> ExperimentTable:
    """A4 — parallel-batch bandwidth vs the disk staging bandwidth cap."""
    settings = settings or default_settings()
    workload = paper_workload(settings)
    table = ExperimentTable(
        "A4",
        "Parallel-batch bandwidth (MB/s) vs disk-stage bandwidth cap",
        ["disk cap (MB/s)", "admitted streams", "bandwidth (MB/s)"],
    )
    series = []
    for cap in disk_caps_mb_s:
        spec = dataclasses.replace(settings.spec(), disk_bandwidth_mb_s=cap)
        session = SimulationSession(
            workload, spec, scheme=ParallelBatchPlacement(m=settings.m)
        )
        r = session.evaluate(num_samples=settings.samples, seed=settings.eval_seed)
        series.append(r.avg_bandwidth_mb_s)
        table.add_row(
            cap if cap is not None else "unlimited",
            spec.disk_streams if spec.disk_streams is not None else "all",
            r.avg_bandwidth_mb_s,
        )
    table.data["series"] = series
    table.data["caps"] = list(disk_caps_mb_s)
    table.notes.append("assumption 6 of the paper holds once the disk admits all drives")
    return table


def striping(
    settings: Optional[ExperimentSettings] = None,
    stripe_widths: Sequence[int] = (2, 4, 8),
    min_stripe_mb: float = 1000.0,
) -> ExperimentTable:
    """A5 — object striping vs non-striped placement (Sec.-2 claim)."""
    settings = settings or default_settings()
    workload = paper_workload(settings)
    spec = settings.spec()
    table = ExperimentTable(
        "A5",
        "Object striping vs non-striped placement",
        ["scheme", "bandwidth (MB/s)", "transfer (s)", "switches/req", "response (s)"],
    )
    rows = {}
    variants = [
        ("parallel batch", ParallelBatchPlacement(m=settings.m)),
        ("non-striped (object probability)", ObjectProbabilityPlacement()),
    ]
    variants += [
        (f"striped, width {w}", StripedPlacement(stripe_width=w, min_stripe_mb=min_stripe_mb))
        for w in stripe_widths
    ]
    for label, scheme in variants:
        session = SimulationSession(workload, spec, scheme=scheme)
        r = session.evaluate(num_samples=settings.samples, seed=settings.eval_seed)
        rows[label] = {
            "bandwidth": r.avg_bandwidth_mb_s,
            "transfer": r.avg_transfer_s,
            "switches": r.avg_switches_per_request,
            "response": r.avg_response_s,
        }
        table.add_row(
            label, r.avg_bandwidth_mb_s, r.avg_transfer_s,
            r.avg_switches_per_request, r.avg_response_s,
        )
    table.data["rows"] = rows
    table.data["stripe_widths"] = list(stripe_widths)
    table.notes.append(
        "paper (Sec. 2): striping trades transfer time for synchronization/"
        "switch cost and 'may perform worse than non-striping'"
    )
    return table


def robots(
    settings: Optional[ExperimentSettings] = None,
    robot_counts: Sequence[int] = (1, 2, 4),
) -> ExperimentTable:
    """A6 — relax assumption 5: multiple robot arms per library.

    The single arm serializes all mount/unmount work within a library, so
    switch-heavy schemes should gain the most from a second arm; schemes
    that rarely switch should barely notice.
    """
    settings = settings or default_settings()
    workload = paper_workload(settings)
    schemes = default_schemes(m=settings.m)
    table = ExperimentTable(
        "A6",
        "Effective bandwidth (MB/s) vs robot arms per library",
        ["robots/library"] + [s.name for s in schemes],
    )
    series = {s.name: [] for s in schemes}
    for count in robot_counts:
        base = settings.spec()
        spec = dataclasses.replace(
            base, library=dataclasses.replace(base.library, num_robots=count)
        )
        row = [count]
        for scheme in schemes:
            session = SimulationSession(workload, spec, scheme=scheme)
            r = session.evaluate(num_samples=settings.samples, seed=settings.eval_seed)
            row.append(r.avg_bandwidth_mb_s)
            series[scheme.name].append(r.avg_bandwidth_mb_s)
        table.add_row(*row)
    table.data["series"] = series
    table.data["robot_counts"] = list(robot_counts)
    table.notes.append(
        "beyond-paper what-if: the paper's assumption 5 fixes one arm per library"
    )
    return table


def degraded(
    settings: Optional[ExperimentSettings] = None,
    failed_per_library: Sequence[int] = (0, 1, 2, 4),
) -> ExperimentTable:
    """A8 — degraded operation: bandwidth with failed drives.

    Permanently fails the highest-numbered ``k`` drives of every library
    (for parallel batch these are switch drives first) and measures the
    surviving bandwidth.  Every byte must still be served.
    """
    settings = settings or default_settings()
    workload = paper_workload(settings)
    spec = settings.spec()
    schemes = default_schemes(m=settings.m)
    d = spec.library.num_drives
    table = ExperimentTable(
        "A8",
        "Effective bandwidth (MB/s) with k failed drives per library",
        ["failed/library"] + [s.name for s in schemes],
    )
    series = {s.name: [] for s in schemes}
    for k in failed_per_library:
        if k >= d:
            raise ValueError(f"cannot fail all {d} drives of a library")
        row = [k]
        names = [
            f"L{lib}.D{d - 1 - j}"
            for lib in range(spec.num_libraries)
            for j in range(k)
        ]
        for scheme in schemes:
            session = SimulationSession(workload, spec, scheme=scheme)
            if names:
                session.fail_drives(names)
            r = session.evaluate(
                num_samples=settings.samples, seed=settings.eval_seed, reset=False
            )
            row.append(r.avg_bandwidth_mb_s)
            series[scheme.name].append(r.avg_bandwidth_mb_s)
        table.add_row(*row)
    table.data["series"] = series
    table.data["failed_per_library"] = list(failed_per_library)
    table.notes.append(
        "beyond-paper: graceful degradation — all requested bytes are still "
        "served through the surviving drives"
    )
    return table


def seek_model(
    settings: Optional[ExperimentSettings] = None,
    startups_s: Sequence[float] = (0.0, 2.0, 5.0),
) -> ExperimentTable:
    """A9 — robustness to the positioning model.

    The paper uses the pure linear locate model of Johnson & Miller; their
    measurements also show a constant per-positioning startup cost.  Adding
    it penalizes every seek equally; the scheme ranking should not move.
    """
    settings = settings or default_settings()
    workload = paper_workload(settings)
    schemes = default_schemes(m=settings.m)
    table = ExperimentTable(
        "A9",
        "Effective bandwidth (MB/s) vs locate startup latency (affine model)",
        ["startup (s)"] + [s.name for s in schemes] + ["winner"],
    )
    series = {s.name: [] for s in schemes}
    winners = []
    for startup in startups_s:
        base = settings.spec()
        tape = dataclasses.replace(base.library.tape, locate_startup_s=startup)
        spec = dataclasses.replace(
            base, library=dataclasses.replace(base.library, tape=tape)
        )
        row = [startup]
        bws = {}
        for scheme in schemes:
            session = SimulationSession(workload, spec, scheme=scheme)
            r = session.evaluate(num_samples=settings.samples, seed=settings.eval_seed)
            row.append(r.avg_bandwidth_mb_s)
            series[scheme.name].append(r.avg_bandwidth_mb_s)
            bws[scheme.name] = r.avg_bandwidth_mb_s
        winner = max(bws, key=bws.get)
        winners.append(winner)
        row.append(winner)
        table.add_row(*row)
    table.data["series"] = series
    table.data["winners"] = winners
    table.data["startups_s"] = list(startups_s)
    table.notes.append(
        "robustness check: the paper's linear positioning model is startup-free; "
        "adding an affine start cost must not change the scheme ranking"
    )
    return table


def open_system(
    settings: Optional[ExperimentSettings] = None,
    arrival_rates_per_hour: Sequence[float] = (2.0, 4.0, 8.0, 16.0),
    num_arrivals: int = 60,
) -> ExperimentTable:
    """A10 — open-system scheduling: serial-FCFS vs concurrent requests.

    Same Poisson arrival stream, same placement, one shared clock; only the
    request-scheduling policy differs.  The concurrent policy overlaps
    in-flight requests across libraries and drives, so its sojourn-time
    advantage over serial FCFS grows with the offered load.
    """
    settings = settings or default_settings()
    workload = paper_workload(settings)
    spec = settings.spec()
    scheme = ParallelBatchPlacement(m=settings.m)
    policies = list(available_scheduling_policies())

    table = ExperimentTable(
        "A10",
        "Mean sojourn time (s) vs arrival rate: request-scheduling policies",
        ["arrivals/h"] + policies + ["speedup", "peak in flight"],
    )
    series = {policy: [] for policy in policies}
    peaks = []
    for rate in arrival_rates_per_hour:
        results = run_open_comparison(
            workload, spec, scheme, rate,
            num_arrivals=num_arrivals, seed=settings.eval_seed, policies=policies,
        )
        row = [rate]
        for policy in policies:
            row.append(results[policy].mean_sojourn_s)
            series[policy].append(results[policy].mean_sojourn_s)
        serial = results["serial-fcfs"].mean_sojourn_s
        concurrent = results["concurrent"].mean_sojourn_s
        peak = results["concurrent"].peak_in_flight
        peaks.append(peak)
        row.append(serial / concurrent if concurrent > 0 else float("nan"))
        row.append(peak)
        table.add_row(*row)
    table.data["series"] = series
    table.data["rates"] = list(arrival_rates_per_hour)
    table.data["peak_in_flight"] = peaks
    table.notes.append(
        "beyond-paper extension: one persistent environment serves overlapping "
        "requests; serial-fcfs reproduces the A3 closed-loop model seed-for-seed"
    )
    return table
