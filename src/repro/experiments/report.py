"""Plain-text table rendering for experiment results.

Every experiment driver returns an :class:`ExperimentTable` whose
``format()`` prints the same rows/series the paper's figure or table
reports, so benchmark output is directly comparable with the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["ExperimentTable"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


@dataclass
class ExperimentTable:
    """A titled table of experiment results plus free-form notes."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    #: Raw per-cell payloads for programmatic use (e.g. shape assertions).
    data: Dict[str, Any] = field(default_factory=dict)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> List[Any]:
        """All values of one column, by header name."""
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def format(self) -> str:
        cells = [[_cell(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in cells)) if cells else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [
            f"{self.experiment_id}: {self.title}",
            "=" * max(len(header), len(self.experiment_id) + len(self.title) + 2),
            header,
            sep,
        ]
        for row in cells:
            lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """The table as CSV text (header + rows, RFC-4180 quoting)."""
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    def __str__(self) -> str:
        return self.format()
