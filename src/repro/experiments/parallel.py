"""Parallel sweep-execution engine with deterministic seeding and caching.

Every figure of EXPERIMENTS.md is a sweep of independent
``(scheme, axis-value, replicate)`` points.  This module turns such a sweep
into explicit :class:`PointSpec` jobs and executes them

* **reproducibly** — each point's evaluation seed is derived from the
  sweep's root seed with :class:`numpy.random.SeedSequence`, using a
  ``spawn_key`` computed from the point's *seed group* (its axis cell), so
  results are bit-identical for any worker count, any execution order, and
  any sub-selection of points.  Points in the same seed group (e.g. the
  three schemes at one axis value) share a seed, preserving the paper's
  paired-sample-stream comparisons;
* **in parallel** — points fan out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (``workers`` argument or
  ``REPRO_WORKERS``), falling back to in-process serial execution for
  ``workers=1`` and whenever jobs or pool infrastructure fail to pickle;
* **memoized** — each point's result is stored in an on-disk
  content-addressed cache (:mod:`repro.experiments.cache`): the key hashes
  the complete point description plus its derived seed and a code-version
  salt, so editing one scheme's configuration invalidates only that
  scheme's points.  Cache lookups run *in the workers* (so a 10-worker
  sweep reads/writes the cache with 10-way parallelism) and every worker's
  hit/miss activity travels back in its telemetry snapshot — parent-side
  totals count the whole fleet, not just the parent process;
* **observably** — every job returns a compact mergeable telemetry
  snapshot (:func:`repro.obs.fleet.snapshot_of_result`) alongside its
  result; the parent folds them into :attr:`SweepResult.fleet`, a
  :class:`~repro.obs.FleetRegistry` whose counters and latency
  percentiles are identical for any worker count and execution order.  An
  optional :class:`~repro.obs.FleetFeed` streams point lifecycle and
  mid-point progress records live while the sweep runs.

Cache-hit statistics are also published through a parent-side
:class:`repro.obs.MetricsRegistry` (counters ``sweep.points``,
``sweep.cache_hits``, ``sweep.cache_misses``) and surfaced in
:attr:`SweepResult.stats`.  See ``docs/experiments.md`` and
``docs/observability.md``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..hardware import SystemSpec
from ..obs import FleetFeed, FleetRegistry, MetricsRegistry
from ..obs.fleet import snapshot_of_result
from ..workload import WorkloadParams, generate_workload
from .cache import (
    MISS,
    ResultCache,
    canonical_json,
    content_key,
    default_cache_dir,
)

__all__ = [
    "EngineOptions",
    "PointSpec",
    "SweepSpec",
    "PointResult",
    "SweepResult",
    "spawn_seed",
    "evaluate_point",
    "point_label",
    "run_sweep",
    "resolve_workers",
    "resolve_shard_workers",
]

#: Hashable ``(key, value)`` pairs standing in for a kwargs dict.
KwargsTuple = Tuple[Tuple[str, Any], ...]


def as_kwargs(mapping: Optional[Dict[str, Any]] = None, **extra: Any) -> KwargsTuple:
    """Freeze a kwargs dict into a sorted, hashable tuple of pairs."""
    merged = dict(mapping or {})
    merged.update(extra)
    return tuple(sorted(merged.items()))


@dataclass(frozen=True)
class PointSpec:
    """One sweep point: everything a worker needs, as pure picklable data.

    The evaluation *seed* is deliberately absent — it is derived by the
    engine from the sweep's root seed and :attr:`seed_group` (defaulting to
    ``(axis, value, replicate)``), so that points sharing a group (the
    schemes compared at one axis value) sample identical request streams.
    """

    #: Sweep/figure id this point belongs to (e.g. ``"fig5"``).
    sweep: str
    #: Axis name and this point's value on it (table row key).
    axis: str
    value: Any
    #: Placement scheme registry name plus constructor kwargs.
    scheme: str
    workload: WorkloadParams
    spec: SystemSpec
    scheme_kwargs: KwargsTuple = ()
    #: Optional workload transforms (applied after generation, in order).
    alpha: Optional[float] = None
    size_scale: Optional[float] = None
    #: Closed-loop sampling parameters.
    num_samples: int = 200
    warmup: int = 0
    #: ``"closed"`` (paper model), ``"open"``, ``"fcfs"``, ``"incremental"``,
    #: ``"chaos"`` (open system under stochastic drive fail/repair).
    kind: str = "closed"
    #: Kind-specific parameters (policy, rate_per_hour, num_arrivals, …;
    #: for ``chaos`` also mtbf_h / mttr_h / distribution / shape — scalars,
    #: so existing kinds' cache keys are untouched).
    run_kwargs: KwargsTuple = ()
    #: Drives failed before serving (degraded-operation sweeps).
    failed_drives: Tuple[str, ...] = ()
    replicate: int = 0
    #: Series/variant label distinguishing points at the same axis value.
    label: Optional[str] = None
    #: Override for the seed-sharing cell; ``None`` = (axis, value, replicate).
    seed_group: Optional[Tuple[Any, ...]] = None
    #: Within-tape seek-planner registry name (``None`` = default
    #: ``greedy-sweep``).  A dataclass field, so it participates in
    #: :meth:`cache_key` — points never alias across planners.
    seek_planner: Optional[str] = None
    #: Redundancy spec string (``"r=2"`` / ``"k=4,n=6"``; ``None`` = the
    #: scheme unwrapped).  A dataclass field for the same reason: an r=2
    #: point can never alias an r=1 (or unwrapped) point in the cache.
    redundancy: Optional[str] = None

    def group(self) -> Tuple[Any, ...]:
        return (
            self.seed_group
            if self.seed_group is not None
            else (self.axis, self.value, self.replicate)
        )

    def cache_key(self, seed: int) -> str:
        """Content key over the full point description + derived seed."""
        return content_key({"point": self, "seed": seed})


def spawn_seed(root_seed: int, group: Sequence[Any]) -> int:
    """Derive a point seed from ``root_seed``, stable in the seed group.

    This is ``SeedSequence(root_seed).spawn()`` with a *content-derived*
    spawn key: instead of a sequential child index (which would make seeds
    depend on how many points a sweep has and in what order they were
    expanded), the key is the SHA-256 of the group's canonical JSON.  Two
    sweeps that share an axis cell therefore agree on its seed, and
    adding/removing points never reseeds the others.
    """
    digest = hashlib.sha256(canonical_json(list(group)).encode("utf-8")).digest()
    spawn_key = tuple(
        int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)
    )
    sequence = np.random.SeedSequence(entropy=root_seed, spawn_key=spawn_key)
    return int(sequence.generate_state(1, np.uint64)[0])


@dataclass(frozen=True)
class SweepSpec:
    """A named collection of points evaluated under one root seed."""

    name: str
    points: Tuple[PointSpec, ...]
    root_seed: int = 0

    def jobs(self) -> List[Tuple[PointSpec, int]]:
        """Points paired with their derived seeds, in declaration order."""
        return [(p, spawn_seed(self.root_seed, p.group())) for p in self.points]

    def __len__(self) -> int:
        return len(self.points)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Per-process memo of generated workloads: points of one sweep often share
#: the workload (e.g. the m-sweep at one alpha), and regeneration is a
#: noticeable fraction of a small point's cost.  Keyed by canonical JSON of
#: the generation parameters; bounded to stay small under long sweeps.
_WORKLOAD_MEMO: Dict[str, Any] = {}
_WORKLOAD_MEMO_MAX = 16


def _point_workload(point: PointSpec):
    key = canonical_json(
        {"params": point.workload, "alpha": point.alpha, "scale": point.size_scale}
    )
    workload = _WORKLOAD_MEMO.get(key)
    if workload is None:
        workload = generate_workload(point.workload)
        if point.alpha is not None:
            workload = workload.with_zipf_alpha(point.alpha)
        if point.size_scale is not None:
            workload = workload.with_scaled_sizes(point.size_scale)
        if len(_WORKLOAD_MEMO) >= _WORKLOAD_MEMO_MAX:
            _WORKLOAD_MEMO.clear()
        _WORKLOAD_MEMO[key] = workload
    return workload


def evaluate_point(point: PointSpec, seed: int):
    """Evaluate one point to its result object (runs in a worker process).

    Returns an :class:`~repro.sim.EvaluationResult` for ``closed`` /
    ``incremental`` points, an :class:`~repro.sim.OpenSystemResult` for
    ``open`` points, and a :class:`~repro.sim.QueueingResult` for ``fcfs``
    points — all plain picklable dataclasses.
    """
    from ..placement import make_scheme
    from ..sim import SimulationSession

    workload = _point_workload(point)
    run_kwargs = dict(point.run_kwargs)

    if point.kind == "incremental":
        if point.redundancy:
            raise ValueError(
                "redundancy is not supported for incremental points (epoch "
                "reveal already rewrites layouts; wrap the final placement "
                "instead)"
            )
        session = _incremental_session(point, workload, run_kwargs)
    else:
        scheme = make_scheme(point.scheme, **dict(point.scheme_kwargs))
        if point.redundancy:
            from ..redundancy import wrap_scheme

            scheme = wrap_scheme(scheme, point.redundancy)
        session = SimulationSession(
            workload, point.spec, scheme=scheme, seek_planner=point.seek_planner
        )

    if point.failed_drives:
        session.fail_drives(list(point.failed_drives))

    if point.kind in ("closed", "incremental"):
        return session.evaluate(
            num_samples=point.num_samples,
            seed=seed,
            warmup=point.warmup,
            # fail_drives must survive into evaluation: reset() would remount.
            reset=not point.failed_drives,
        )
    if point.kind == "open":
        # Sharding is execution configuration, never point identity: the
        # results are invariant to it, so it rides in via the environment
        # (``$REPRO_SHARD_WORKERS``) and stays out of the cache key.
        opensys = session.open(
            policy=run_kwargs["policy"], shard_workers=resolve_shard_workers()
        )
        _wire_progress(opensys, point)
        return opensys.run(
            run_kwargs["rate_per_hour"],
            num_arrivals=run_kwargs["num_arrivals"],
            seed=seed,
        )
    if point.kind == "chaos":
        from ..sim import DriveFaultProcess, TapeFailure

        # The fault streams get their own root derived from the point seed,
        # so arrival sampling stays paired with the non-chaos twin of this
        # cell while fault timing is decorrelated from it.
        fault_seed = spawn_seed(seed, ("faults",))
        faults = (
            DriveFaultProcess(
                mtbf_s=run_kwargs["mtbf_h"] * 3600.0,
                mttr_s=run_kwargs["mttr_h"] * 3600.0,
                distribution=run_kwargs.get("distribution", "exponential"),
                shape=run_kwargs.get("shape", 1.0),
            ),
        )
        # Media faults (A13): optional keys read with .get so every
        # pre-existing chaos point keeps its cache key AND its exact code
        # path — absent keys arm nothing and pass the historical kwargs.
        fail_tape = run_kwargs.get("fail_tape")
        if fail_tape is not None:
            faults = faults + (
                TapeFailure(fail_tape, at_s=run_kwargs.get("fail_tape_at_s", 0.0)),
            )
        open_kwargs: Dict[str, Any] = {}
        if run_kwargs.get("repair_policy") is not None:
            open_kwargs["repair_policy"] = run_kwargs["repair_policy"]
        if run_kwargs.get("read_selection") is not None:
            open_kwargs["read_selection"] = run_kwargs["read_selection"]
        opensys = session.open(
            policy=run_kwargs["policy"], faults=faults, fault_seed=fault_seed,
            shard_workers=resolve_shard_workers(), **open_kwargs,
        )
        _wire_progress(opensys, point)
        return opensys.run(
            run_kwargs["rate_per_hour"],
            num_arrivals=run_kwargs["num_arrivals"],
            seed=seed,
        )
    if point.kind == "fcfs":
        from ..sim import simulate_fcfs_queue

        return simulate_fcfs_queue(
            session,
            run_kwargs["rate_per_hour"],
            num_arrivals=run_kwargs["num_arrivals"],
            seed=seed,
        )
    raise ValueError(f"unknown point kind {point.kind!r}")


def _incremental_session(point: PointSpec, workload, run_kwargs: Dict[str, Any]):
    """A2's epoch-revealed placements (strategy in ``run_kwargs``)."""
    from ..placement import IncrementalParallelBatch, split_into_epochs
    from ..sim import SimulationSession

    strategy = run_kwargs["strategy"]
    epochs = split_into_epochs(workload, run_kwargs["num_epochs"])
    placement = IncrementalParallelBatch(
        m=run_kwargs["m"], affinity=(strategy == "affinity")
    ).place_incrementally(workload, epochs, point.spec)
    return SimulationSession(
        workload, point.spec, placement=placement, seek_planner=point.seek_planner
    )


def point_label(point: PointSpec) -> str:
    """Human-readable point id for feeds, logs, and dashboards."""
    series = point.label if point.label is not None else point.scheme
    return f"{point.sweep}/{point.axis}={point.value}/{series}#r{point.replicate}"


#: Live-feed queue of this process (a Manager-queue proxy), installed by the
#: pool initializer (or directly for serial runs).  ``None`` = streaming off,
#: and every producer site pays one global read + None check.
_FEED_QUEUE = None

#: Emit one mid-point progress record per this many completed requests.
_FEED_EVERY = 20


def _install_feed(queue) -> None:
    global _FEED_QUEUE
    _FEED_QUEUE = queue


def _feed_emit(record: Dict[str, Any]) -> None:
    queue = _FEED_QUEUE
    if queue is None:
        return
    try:
        queue.put_nowait(record)
    except Exception:  # noqa: BLE001 - a dead feed must not kill the point
        pass


def _wire_progress(opensys, point: PointSpec) -> None:
    """Attach a throttled feed emitter to an open system's completion hook.

    Only when a feed is armed: the no-feed path leaves ``on_complete`` as
    ``None``, keeping the simulation hot loop allocation-free.
    """
    if _FEED_QUEUE is None:
        return
    label = point_label(point)
    completed = 0

    def hook(os_, outcome) -> None:
        nonlocal completed
        completed += 1
        if completed % _FEED_EVERY == 0:
            _feed_emit(
                {
                    "type": "progress",
                    "point": label,
                    "completed": completed,
                    "t_s": os_.env.now,
                }
            )

    opensys.on_complete = hook


#: One job as shipped to a worker: the point, its derived seed, its cache
#: key (``None`` when caching is off), the cache root, and the refresh flag.
_Task = Tuple[PointSpec, int, Optional[str], Optional[str], bool]

#: Per-process cache handles, keyed by root path (workers serve many jobs).
_WORKER_CACHES: Dict[str, ResultCache] = {}


def _run_job(task: _Task) -> Tuple[Any, Dict[str, Any], bool]:
    """Evaluate (or replay from cache) one job in the current process.

    Returns ``(result, snapshot, cached)``.  The snapshot is the point's
    mergeable telemetry (:func:`repro.obs.fleet.snapshot_of_result`) with
    this job's ``sweep.points`` / ``sweep.cache_hits`` /
    ``sweep.cache_misses`` contributions folded in — cache I/O happens
    *here*, in the worker, so fleet-level cache counters reflect every
    process's activity, and a big sweep reads the cache in parallel.

    The snapshot is a pure function of ``(point, result, cached)``: a
    cached replay produces byte-identical telemetry to the evaluation that
    populated it, which is what keeps fleet aggregates independent of
    worker count and cache state.
    """
    point, seed, key, cache_root, refresh = task
    label = point_label(point)
    _feed_emit({"type": "point_start", "point": label, "kind": point.kind})

    cache: Optional[ResultCache] = None
    if key is not None and cache_root is not None:
        cache = _WORKER_CACHES.get(cache_root)
        if cache is None:
            cache = _WORKER_CACHES.setdefault(cache_root, ResultCache(cache_root))

    result: Any = MISS
    if cache is not None and not refresh:
        result = cache.get(key)
    cached = result is not MISS
    if not cached:
        result = evaluate_point(point, seed)
        if cache is not None:
            cache.put(key, result)

    snapshot = snapshot_of_result(
        result,
        point_meta={
            "sweep": point.sweep,
            "axis": point.axis,
            "value": point.value,
            "scheme": point.scheme,
            "label": point_label(point),
            "kind": point.kind,
            "replicate": point.replicate,
            "cached": cached,
        },
    )
    counters = snapshot["counters"]
    counters["sweep.points"] = counters.get("sweep.points", 0.0) + 1.0
    cache_counter = "sweep.cache_hits" if cached else "sweep.cache_misses"
    counters[cache_counter] = counters.get(cache_counter, 0.0) + 1.0

    _feed_emit(
        {
            "type": "point_done",
            "point": label,
            "cached": cached,
            "completed": counters.get("requests.completed", 0.0),
        }
    )
    return result, snapshot, cached


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument, else ``$REPRO_WORKERS``, else 1 (serial)."""
    if workers is None:
        workers = int(os.environ.get("REPRO_WORKERS", "1") or "1")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def resolve_shard_workers(shard_workers: Optional[int] = None) -> int:
    """Explicit argument, else ``$REPRO_SHARD_WORKERS``, else 1 (unsharded).

    Governs per-library DES sharding *inside* each open/chaos point (see
    :mod:`repro.sim.sharding`) — orthogonal to ``workers``, which fans
    points out across processes.  Deliberately absent from
    :meth:`PointSpec.cache_key`: sharded and unsharded evaluations of the
    same point produce identical results, so they share cache entries.
    """
    if shard_workers is None:
        shard_workers = int(os.environ.get("REPRO_SHARD_WORKERS", "1") or "1")
    if shard_workers < 1:
        raise ValueError(f"shard_workers must be >= 1, got {shard_workers}")
    return shard_workers


@dataclass(frozen=True)
class EngineOptions:
    """How a sweep executes — never *what* it computes.

    ``workers=None`` defers to ``$REPRO_WORKERS`` (default 1);
    ``cache_dir=None`` disables the on-disk cache unless
    ``$REPRO_CACHE_DIR`` is set; ``refresh=True`` ignores existing entries
    but still stores fresh results.  ``feed``/``on_feed`` arm the live
    telemetry stream for callers (like the CLI) that reach
    :func:`run_sweep` through an experiment wrapper and cannot pass the
    feed positionally.  ``shard_workers=None`` defers to
    ``$REPRO_SHARD_WORKERS`` (default 1, unsharded); like ``workers`` it
    is execution configuration only — point results and cache keys are
    invariant to it.
    """

    workers: Optional[int] = None
    cache_dir: Optional[str] = None
    refresh: bool = False
    shard_workers: Optional[int] = None
    feed: Optional["FleetFeed"] = field(default=None, compare=False, repr=False)
    on_feed: Optional[Callable[[Dict[str, Any]], None]] = field(
        default=None, compare=False, repr=False
    )

    @classmethod
    def from_env(cls) -> "EngineOptions":
        return cls(cache_dir=os.environ.get("REPRO_CACHE_DIR") or None)


@dataclass(frozen=True)
class PointResult:
    """One evaluated point: spec, derived seed, result, provenance."""

    point: PointSpec
    seed: int
    result: Any
    cached: bool = False

    def matches(self, **filters: Any) -> bool:
        for name, wanted in filters.items():
            if getattr(self.point, name) != wanted:
                return False
        return True


@dataclass
class SweepResult:
    """All point results of one sweep run, plus execution statistics."""

    spec: SweepSpec
    results: List[PointResult]
    stats: Dict[str, Any] = field(default_factory=dict)
    registry: Optional[MetricsRegistry] = None
    #: Merged fleet telemetry: every worker's counters, gauges, histograms
    #: and latency digests folded order-insensitively into one registry.
    fleet: Optional[FleetRegistry] = None

    def __iter__(self) -> Iterator[PointResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def select(self, **filters: Any) -> List[PointResult]:
        """Point results whose spec fields equal the given filters."""
        return [r for r in self.results if r.matches(**filters)]

    def one(self, **filters: Any):
        """The unique matching point's *result object* (raises otherwise)."""
        matching = self.select(**filters)
        if len(matching) != 1:
            raise KeyError(
                f"{len(matching)} points match {filters!r} in sweep "
                f"{self.spec.name!r} (expected exactly 1)"
            )
        return matching[0].result


def run_sweep(
    spec: SweepSpec,
    options: Optional[EngineOptions] = None,
    registry: Optional[MetricsRegistry] = None,
    on_result: Optional[Callable[[PointResult], None]] = None,
    feed: Optional[FleetFeed] = None,
    on_feed: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> SweepResult:
    """Execute every point of ``spec``; return results in point order.

    ``on_result`` (e.g. a progress callback or debug hook) always runs in
    the parent process, so it may be any callable — picklability of hooks
    never forces a serial run.  Worker processes execute only
    :func:`_run_job` on pure-data jobs (cache lookup + evaluation +
    telemetry snapshot); if those jobs (or the pool itself) cannot be
    shipped, the engine degrades to in-process serial execution and records
    ``fallback: "serial"`` in the stats.

    ``feed`` arms live streaming: workers emit point lifecycle and
    mid-point progress records into the feed's queue, and the parent drains
    them to ``on_feed`` while futures are still pending.  Without a feed,
    nothing is allocated and workers pay one global-read + None check per
    emit site.
    """
    options = options or EngineOptions.from_env()
    if feed is None:
        feed = options.feed
    if on_feed is None:
        on_feed = options.on_feed
    workers = resolve_workers(options.workers)
    shard_workers = resolve_shard_workers(options.shard_workers)
    registry = registry if registry is not None else MetricsRegistry()
    cache = ResultCache(options.cache_dir) if options.cache_dir else None
    cache_root = str(cache.root) if cache is not None else None

    points_counter = registry.counter("sweep.points")
    hits_counter = registry.counter("sweep.cache_hits")
    misses_counter = registry.counter("sweep.cache_misses")

    start = perf_counter()
    jobs = spec.jobs()
    tasks: List[_Task] = [
        (
            point,
            seed,
            point.cache_key(seed) if cache is not None else None,
            cache_root,
            options.refresh,
        )
        for point, seed in jobs
    ]

    # The shard count travels to pool workers (and the serial path) via
    # the environment so _Task payloads — and with them cache keys —
    # never carry it.
    previous_shards = os.environ.get("REPRO_SHARD_WORKERS")
    os.environ["REPRO_SHARD_WORKERS"] = str(shard_workers)
    try:
        outputs, fallback = _execute(tasks, workers, feed=feed, on_feed=on_feed)
    finally:
        if previous_shards is None:
            os.environ.pop("REPRO_SHARD_WORKERS", None)
        else:
            os.environ["REPRO_SHARD_WORKERS"] = previous_shards

    fleet = FleetRegistry()
    results: List[PointResult] = []
    for (point, seed), (result, snapshot, cached) in zip(jobs, outputs):
        fleet.fold(snapshot)
        slot = PointResult(point, seed, result, cached=cached)
        points_counter.inc()
        (hits_counter if cached else misses_counter).inc()
        if on_result is not None:
            on_result(slot)
        results.append(slot)

    wall_s = perf_counter() - start
    stats: Dict[str, Any] = {
        "sweep": spec.name,
        "points": len(jobs),
        "cache_hits": sum(1 for r in results if r.cached),
        "cache_misses": sum(1 for r in results if not r.cached),
        "workers": workers,
        "shard_workers": shard_workers,
        "wall_s": wall_s,
        "points_per_s": len(jobs) / wall_s if wall_s > 0 else float("inf"),
        "cache_dir": cache_root,
        "refresh": options.refresh,
    }
    if fallback:
        stats["fallback"] = fallback
    if feed is not None:
        stats["feed"] = True
    return SweepResult(
        spec=spec, results=results, stats=stats, registry=registry, fleet=fleet
    )


def _run_serial(
    tasks: List[_Task],
    feed: Optional[FleetFeed],
    on_feed: Optional[Callable[[Dict[str, Any]], None]],
) -> List[Tuple[Any, Dict[str, Any], bool]]:
    """In-process execution path (workers=1 and the pool-failure fallback)."""
    previous = _FEED_QUEUE
    if feed is not None:
        _install_feed(feed.queue)
    try:
        outputs = []
        for task in tasks:
            outputs.append(_run_job(task))
            _drain_feed(feed, on_feed)
        return outputs
    finally:
        _install_feed(previous)


def _drain_feed(
    feed: Optional[FleetFeed],
    on_feed: Optional[Callable[[Dict[str, Any]], None]],
) -> None:
    if feed is None:
        return
    records = feed.drain()
    if on_feed is not None:
        for record in records:
            on_feed(record)


def _execute(
    tasks: List[_Task],
    workers: int,
    feed: Optional[FleetFeed] = None,
    on_feed: Optional[Callable[[Dict[str, Any]], None]] = None,
) -> Tuple[List[Tuple[Any, Dict[str, Any], bool]], Optional[str]]:
    """Evaluate ``tasks``, fanning out over processes when ``workers > 1``.

    Returns ``(outputs_in_task_order, fallback_reason)`` where each output
    is ``(result, snapshot, cached)``.  Pool-level failures (unpicklable
    payloads, a broken pool) degrade to serial in-process execution;
    genuine evaluation errors propagate unchanged.
    """
    if workers <= 1 or len(tasks) <= 1:
        return _run_serial(tasks, feed, on_feed), None

    try:
        initializer = _install_feed if feed is not None else None
        initargs = (feed.queue,) if feed is not None else ()
        with ProcessPoolExecutor(
            max_workers=min(workers, len(tasks)),
            initializer=initializer,
            initargs=initargs,
        ) as pool:
            futures = [pool.submit(_run_job, task) for task in tasks]
            if feed is not None:
                # Drain the live feed while points are still running, so
                # progress streams mid-point instead of arriving at the end.
                from concurrent.futures import wait as futures_wait

                not_done = set(futures)
                while not_done:
                    _, not_done = futures_wait(not_done, timeout=0.2)
                    _drain_feed(feed, on_feed)
            outputs = [f.result() for f in futures]
            _drain_feed(feed, on_feed)
            return outputs, None
    except (pickle.PicklingError, TypeError, AttributeError, BrokenProcessPool, OSError):
        # Non-picklable job payloads / a dead pool: degrade gracefully and
        # keep the results bit-identical (seeds are already fixed per job).
        return _run_serial(tasks, feed, on_feed), "serial"
