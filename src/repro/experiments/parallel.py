"""Parallel sweep-execution engine with deterministic seeding and caching.

Every figure of EXPERIMENTS.md is a sweep of independent
``(scheme, axis-value, replicate)`` points.  This module turns such a sweep
into explicit :class:`PointSpec` jobs and executes them

* **reproducibly** — each point's evaluation seed is derived from the
  sweep's root seed with :class:`numpy.random.SeedSequence`, using a
  ``spawn_key`` computed from the point's *seed group* (its axis cell), so
  results are bit-identical for any worker count, any execution order, and
  any sub-selection of points.  Points in the same seed group (e.g. the
  three schemes at one axis value) share a seed, preserving the paper's
  paired-sample-stream comparisons;
* **in parallel** — points fan out over a
  :class:`concurrent.futures.ProcessPoolExecutor` (``workers`` argument or
  ``REPRO_WORKERS``), falling back to in-process serial execution for
  ``workers=1`` and whenever jobs or pool infrastructure fail to pickle;
* **memoized** — each point's result is stored in an on-disk
  content-addressed cache (:mod:`repro.experiments.cache`): the key hashes
  the complete point description plus its derived seed and a code-version
  salt, so editing one scheme's configuration invalidates only that
  scheme's points.

Cache-hit statistics are published through a
:class:`repro.obs.MetricsRegistry` (counters ``sweep.points``,
``sweep.cache_hits``, ``sweep.cache_misses``) and surfaced in
:attr:`SweepResult.stats`.  See ``docs/experiments.md``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..hardware import SystemSpec
from ..obs import MetricsRegistry
from ..workload import WorkloadParams, generate_workload
from .cache import (
    MISS,
    ResultCache,
    canonical_json,
    content_key,
    default_cache_dir,
)

__all__ = [
    "EngineOptions",
    "PointSpec",
    "SweepSpec",
    "PointResult",
    "SweepResult",
    "spawn_seed",
    "evaluate_point",
    "run_sweep",
    "resolve_workers",
]

#: Hashable ``(key, value)`` pairs standing in for a kwargs dict.
KwargsTuple = Tuple[Tuple[str, Any], ...]


def as_kwargs(mapping: Optional[Dict[str, Any]] = None, **extra: Any) -> KwargsTuple:
    """Freeze a kwargs dict into a sorted, hashable tuple of pairs."""
    merged = dict(mapping or {})
    merged.update(extra)
    return tuple(sorted(merged.items()))


@dataclass(frozen=True)
class PointSpec:
    """One sweep point: everything a worker needs, as pure picklable data.

    The evaluation *seed* is deliberately absent — it is derived by the
    engine from the sweep's root seed and :attr:`seed_group` (defaulting to
    ``(axis, value, replicate)``), so that points sharing a group (the
    schemes compared at one axis value) sample identical request streams.
    """

    #: Sweep/figure id this point belongs to (e.g. ``"fig5"``).
    sweep: str
    #: Axis name and this point's value on it (table row key).
    axis: str
    value: Any
    #: Placement scheme registry name plus constructor kwargs.
    scheme: str
    workload: WorkloadParams
    spec: SystemSpec
    scheme_kwargs: KwargsTuple = ()
    #: Optional workload transforms (applied after generation, in order).
    alpha: Optional[float] = None
    size_scale: Optional[float] = None
    #: Closed-loop sampling parameters.
    num_samples: int = 200
    warmup: int = 0
    #: ``"closed"`` (paper model), ``"open"``, ``"fcfs"``, ``"incremental"``,
    #: ``"chaos"`` (open system under stochastic drive fail/repair).
    kind: str = "closed"
    #: Kind-specific parameters (policy, rate_per_hour, num_arrivals, …;
    #: for ``chaos`` also mtbf_h / mttr_h / distribution / shape — scalars,
    #: so existing kinds' cache keys are untouched).
    run_kwargs: KwargsTuple = ()
    #: Drives failed before serving (degraded-operation sweeps).
    failed_drives: Tuple[str, ...] = ()
    replicate: int = 0
    #: Series/variant label distinguishing points at the same axis value.
    label: Optional[str] = None
    #: Override for the seed-sharing cell; ``None`` = (axis, value, replicate).
    seed_group: Optional[Tuple[Any, ...]] = None
    #: Within-tape seek-planner registry name (``None`` = default
    #: ``greedy-sweep``).  A dataclass field, so it participates in
    #: :meth:`cache_key` — points never alias across planners.
    seek_planner: Optional[str] = None

    def group(self) -> Tuple[Any, ...]:
        return (
            self.seed_group
            if self.seed_group is not None
            else (self.axis, self.value, self.replicate)
        )

    def cache_key(self, seed: int) -> str:
        """Content key over the full point description + derived seed."""
        return content_key({"point": self, "seed": seed})


def spawn_seed(root_seed: int, group: Sequence[Any]) -> int:
    """Derive a point seed from ``root_seed``, stable in the seed group.

    This is ``SeedSequence(root_seed).spawn()`` with a *content-derived*
    spawn key: instead of a sequential child index (which would make seeds
    depend on how many points a sweep has and in what order they were
    expanded), the key is the SHA-256 of the group's canonical JSON.  Two
    sweeps that share an axis cell therefore agree on its seed, and
    adding/removing points never reseeds the others.
    """
    digest = hashlib.sha256(canonical_json(list(group)).encode("utf-8")).digest()
    spawn_key = tuple(
        int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)
    )
    sequence = np.random.SeedSequence(entropy=root_seed, spawn_key=spawn_key)
    return int(sequence.generate_state(1, np.uint64)[0])


@dataclass(frozen=True)
class SweepSpec:
    """A named collection of points evaluated under one root seed."""

    name: str
    points: Tuple[PointSpec, ...]
    root_seed: int = 0

    def jobs(self) -> List[Tuple[PointSpec, int]]:
        """Points paired with their derived seeds, in declaration order."""
        return [(p, spawn_seed(self.root_seed, p.group())) for p in self.points]

    def __len__(self) -> int:
        return len(self.points)


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

#: Per-process memo of generated workloads: points of one sweep often share
#: the workload (e.g. the m-sweep at one alpha), and regeneration is a
#: noticeable fraction of a small point's cost.  Keyed by canonical JSON of
#: the generation parameters; bounded to stay small under long sweeps.
_WORKLOAD_MEMO: Dict[str, Any] = {}
_WORKLOAD_MEMO_MAX = 16


def _point_workload(point: PointSpec):
    key = canonical_json(
        {"params": point.workload, "alpha": point.alpha, "scale": point.size_scale}
    )
    workload = _WORKLOAD_MEMO.get(key)
    if workload is None:
        workload = generate_workload(point.workload)
        if point.alpha is not None:
            workload = workload.with_zipf_alpha(point.alpha)
        if point.size_scale is not None:
            workload = workload.with_scaled_sizes(point.size_scale)
        if len(_WORKLOAD_MEMO) >= _WORKLOAD_MEMO_MAX:
            _WORKLOAD_MEMO.clear()
        _WORKLOAD_MEMO[key] = workload
    return workload


def evaluate_point(point: PointSpec, seed: int):
    """Evaluate one point to its result object (runs in a worker process).

    Returns an :class:`~repro.sim.EvaluationResult` for ``closed`` /
    ``incremental`` points, an :class:`~repro.sim.OpenSystemResult` for
    ``open`` points, and a :class:`~repro.sim.QueueingResult` for ``fcfs``
    points — all plain picklable dataclasses.
    """
    from ..placement import make_scheme
    from ..sim import SimulationSession

    workload = _point_workload(point)
    run_kwargs = dict(point.run_kwargs)

    if point.kind == "incremental":
        session = _incremental_session(point, workload, run_kwargs)
    else:
        scheme = make_scheme(point.scheme, **dict(point.scheme_kwargs))
        session = SimulationSession(
            workload, point.spec, scheme=scheme, seek_planner=point.seek_planner
        )

    if point.failed_drives:
        session.fail_drives(list(point.failed_drives))

    if point.kind in ("closed", "incremental"):
        return session.evaluate(
            num_samples=point.num_samples,
            seed=seed,
            warmup=point.warmup,
            # fail_drives must survive into evaluation: reset() would remount.
            reset=not point.failed_drives,
        )
    if point.kind == "open":
        return session.open(policy=run_kwargs["policy"]).run(
            run_kwargs["rate_per_hour"],
            num_arrivals=run_kwargs["num_arrivals"],
            seed=seed,
        )
    if point.kind == "chaos":
        from ..sim import DriveFaultProcess

        # The fault streams get their own root derived from the point seed,
        # so arrival sampling stays paired with the non-chaos twin of this
        # cell while fault timing is decorrelated from it.
        fault_seed = spawn_seed(seed, ("faults",))
        faults = (
            DriveFaultProcess(
                mtbf_s=run_kwargs["mtbf_h"] * 3600.0,
                mttr_s=run_kwargs["mttr_h"] * 3600.0,
                distribution=run_kwargs.get("distribution", "exponential"),
                shape=run_kwargs.get("shape", 1.0),
            ),
        )
        return session.open(
            policy=run_kwargs["policy"], faults=faults, fault_seed=fault_seed
        ).run(
            run_kwargs["rate_per_hour"],
            num_arrivals=run_kwargs["num_arrivals"],
            seed=seed,
        )
    if point.kind == "fcfs":
        from ..sim import simulate_fcfs_queue

        return simulate_fcfs_queue(
            session,
            run_kwargs["rate_per_hour"],
            num_arrivals=run_kwargs["num_arrivals"],
            seed=seed,
        )
    raise ValueError(f"unknown point kind {point.kind!r}")


def _incremental_session(point: PointSpec, workload, run_kwargs: Dict[str, Any]):
    """A2's epoch-revealed placements (strategy in ``run_kwargs``)."""
    from ..placement import IncrementalParallelBatch, split_into_epochs
    from ..sim import SimulationSession

    strategy = run_kwargs["strategy"]
    epochs = split_into_epochs(workload, run_kwargs["num_epochs"])
    placement = IncrementalParallelBatch(
        m=run_kwargs["m"], affinity=(strategy == "affinity")
    ).place_incrementally(workload, epochs, point.spec)
    return SimulationSession(
        workload, point.spec, placement=placement, seek_planner=point.seek_planner
    )


def _run_job(job: Tuple[PointSpec, int]):
    return evaluate_point(*job)


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------


def resolve_workers(workers: Optional[int] = None) -> int:
    """Explicit argument, else ``$REPRO_WORKERS``, else 1 (serial)."""
    if workers is None:
        workers = int(os.environ.get("REPRO_WORKERS", "1") or "1")
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


@dataclass(frozen=True)
class EngineOptions:
    """How a sweep executes — never *what* it computes.

    ``workers=None`` defers to ``$REPRO_WORKERS`` (default 1);
    ``cache_dir=None`` disables the on-disk cache unless
    ``$REPRO_CACHE_DIR`` is set; ``refresh=True`` ignores existing entries
    but still stores fresh results.
    """

    workers: Optional[int] = None
    cache_dir: Optional[str] = None
    refresh: bool = False

    @classmethod
    def from_env(cls) -> "EngineOptions":
        return cls(cache_dir=os.environ.get("REPRO_CACHE_DIR") or None)


@dataclass(frozen=True)
class PointResult:
    """One evaluated point: spec, derived seed, result, provenance."""

    point: PointSpec
    seed: int
    result: Any
    cached: bool = False

    def matches(self, **filters: Any) -> bool:
        for name, wanted in filters.items():
            if getattr(self.point, name) != wanted:
                return False
        return True


@dataclass
class SweepResult:
    """All point results of one sweep run, plus execution statistics."""

    spec: SweepSpec
    results: List[PointResult]
    stats: Dict[str, Any] = field(default_factory=dict)
    registry: Optional[MetricsRegistry] = None

    def __iter__(self) -> Iterator[PointResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def select(self, **filters: Any) -> List[PointResult]:
        """Point results whose spec fields equal the given filters."""
        return [r for r in self.results if r.matches(**filters)]

    def one(self, **filters: Any):
        """The unique matching point's *result object* (raises otherwise)."""
        matching = self.select(**filters)
        if len(matching) != 1:
            raise KeyError(
                f"{len(matching)} points match {filters!r} in sweep "
                f"{self.spec.name!r} (expected exactly 1)"
            )
        return matching[0].result


def run_sweep(
    spec: SweepSpec,
    options: Optional[EngineOptions] = None,
    registry: Optional[MetricsRegistry] = None,
    on_result: Optional[Callable[[PointResult], None]] = None,
) -> SweepResult:
    """Execute every point of ``spec``; return results in point order.

    ``on_result`` (e.g. a progress callback or debug hook) always runs in
    the parent process, so it may be any callable — picklability of hooks
    never forces a serial run.  Worker processes execute only
    :func:`evaluate_point` on pure-data jobs; if those jobs (or the pool
    itself) cannot be shipped, the engine degrades to in-process serial
    execution and records ``fallback: "serial"`` in the stats.
    """
    options = options or EngineOptions.from_env()
    workers = resolve_workers(options.workers)
    registry = registry if registry is not None else MetricsRegistry()
    cache = ResultCache(options.cache_dir) if options.cache_dir else None

    points_counter = registry.counter("sweep.points")
    hits_counter = registry.counter("sweep.cache_hits")
    misses_counter = registry.counter("sweep.cache_misses")

    start = perf_counter()
    jobs = spec.jobs()
    keys: List[Optional[str]] = [
        job[0].cache_key(job[1]) if cache is not None else None for job in jobs
    ]

    slots: List[Optional[PointResult]] = [None] * len(jobs)
    pending: List[int] = []
    for i, (point, seed) in enumerate(jobs):
        cached = MISS
        if cache is not None and not options.refresh and keys[i] in cache:
            cached = cache.get(keys[i])
        if cached is not MISS:
            slots[i] = PointResult(point, seed, cached, cached=True)
        else:
            pending.append(i)

    fallback = None
    if pending:
        evaluated, fallback = _execute(
            [jobs[i] for i in pending], workers
        )
        for i, result in zip(pending, evaluated):
            slots[i] = PointResult(jobs[i][0], jobs[i][1], result, cached=False)
            if cache is not None:
                cache.put(keys[i], result)

    results: List[PointResult] = []
    for slot in slots:
        assert slot is not None
        points_counter.inc()
        (hits_counter if slot.cached else misses_counter).inc()
        if on_result is not None:
            on_result(slot)
        results.append(slot)

    wall_s = perf_counter() - start
    stats: Dict[str, Any] = {
        "sweep": spec.name,
        "points": len(jobs),
        "cache_hits": sum(1 for r in results if r.cached),
        "cache_misses": sum(1 for r in results if not r.cached),
        "workers": workers,
        "wall_s": wall_s,
        "points_per_s": len(jobs) / wall_s if wall_s > 0 else float("inf"),
        "cache_dir": str(cache.root) if cache is not None else None,
        "refresh": options.refresh,
    }
    if fallback:
        stats["fallback"] = fallback
    return SweepResult(spec=spec, results=results, stats=stats, registry=registry)


def _execute(
    jobs: List[Tuple[PointSpec, int]], workers: int
) -> Tuple[List[Any], Optional[str]]:
    """Evaluate ``jobs``, fanning out over processes when ``workers > 1``.

    Returns ``(results_in_job_order, fallback_reason)``.  Pool-level
    failures (unpicklable payloads, a broken pool) degrade to serial
    in-process execution; genuine evaluation errors propagate unchanged.
    """
    if workers <= 1 or len(jobs) <= 1:
        return [_run_job(job) for job in jobs], None

    try:
        with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
            futures = [pool.submit(_run_job, job) for job in jobs]
            return [f.result() for f in futures], None
    except (pickle.PicklingError, TypeError, AttributeError, BrokenProcessPool, OSError):
        # Non-picklable job payloads / a dead pool: degrade gracefully and
        # keep the results bit-identical (seeds are already fixed per job).
        return [_run_job(job) for job in jobs], "serial"
