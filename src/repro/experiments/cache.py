"""On-disk content-addressed result cache for sweep points.

A sweep point is fully described by pure data (workload parameters, system
spec, scheme configuration, sample count, derived seed — see
:class:`repro.experiments.parallel.PointSpec`), so its evaluation result can
be memoized under a key that *is* that description: the SHA-256 of the
point's canonical JSON serialization plus a code-version salt.  Re-running a
figure after editing one scheme's configuration therefore recomputes only
that scheme's points — every other key is unchanged and hits.

The salt (:data:`CACHE_SALT`) must be bumped whenever simulator or placement
*semantics* change in a way that alters results; the package version is also
folded in so released behavior changes invalidate automatically.

Entries are pickles written atomically (temp file + ``os.replace``), fanned
out over 256 two-hex-character subdirectories.  Corrupt or unreadable
entries are treated as misses and overwritten, never raised.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Optional

__all__ = [
    "CACHE_SALT",
    "MISS",
    "ResultCache",
    "canonicalize",
    "canonical_json",
    "content_key",
    "default_cache_dir",
]

#: Bump on any change to simulator/placement semantics that alters results.
CACHE_SALT = "sweep-v1"

#: Sentinel distinguishing "not cached" from a cached ``None``.
MISS = object()


def canonicalize(obj: Any) -> Any:
    """Reduce ``obj`` to a JSON-serializable canonical form.

    Dataclasses are tagged with their class name so two specs with
    coincidentally equal fields but different types key differently; floats
    pass through (``json.dumps`` emits ``repr``-round-trippable text);
    tuples/lists unify to lists; dict keys are stringified and sorted at
    dump time.
    """
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"__dataclass__": type(obj).__name__, **fields}
    if isinstance(obj, dict):
        return {str(k): canonicalize(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    if hasattr(obj, "item"):  # numpy scalar
        return obj.item()
    raise TypeError(f"cannot canonicalize {type(obj).__name__}: {obj!r}")


def canonical_json(obj: Any) -> str:
    """Deterministic JSON text of :func:`canonicalize`'s output."""
    return json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))


def content_key(obj: Any, *, salt: str = CACHE_SALT) -> str:
    """SHA-256 hex digest of ``obj``'s canonical form + version salt."""
    from .. import __version__

    payload = f"{__version__}/{salt}\n{canonical_json(obj)}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro-tape/sweeps``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro-tape" / "sweeps"


class ResultCache:
    """Content-addressed pickle store with hit/miss accounting."""

    def __init__(self, root: "Path | str") -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Any:
        """The cached payload, or :data:`MISS` (also on corrupt entries)."""
        path = self._path(key)
        try:
            with path.open("rb") as fh:
                payload = pickle.load(fh)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            self.misses += 1
            return MISS
        self.hits += 1
        return payload

    def put(self, key: str, payload: Any) -> None:
        """Store ``payload`` atomically; concurrent writers both succeed."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("??/*.pkl"))

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for path in self.root.glob("??/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        return (
            f"<ResultCache {self.root} hits={self.hits} misses={self.misses}>"
        )


def open_cache(cache_dir: "Path | str | None") -> Optional[ResultCache]:
    """A :class:`ResultCache` at ``cache_dir``, or ``None`` to disable."""
    if cache_dir is None:
        return None
    return ResultCache(cache_dir)
