"""Shared experiment machinery: canonical workloads, scheme sets, sweeps.

Experiments run at the paper's scale by default (30 000 objects, 300
requests, Table-1 hardware, 200 sampled requests).  For quick smoke runs
(CI, laptops) pass ``scale="small"`` or set ``REPRO_SCALE=small`` — the
workload and sample counts shrink by roughly an order of magnitude while
keeping every structural property (several batches, capacity pressure,
co-access sharing).
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..hardware import SystemSpec
from ..placement import (
    ClusterProbabilityPlacement,
    ObjectProbabilityPlacement,
    ParallelBatchPlacement,
    PlacementScheme,
)
from ..sim import EvaluationResult, OpenSystemResult, SimulationSession
from ..workload import Workload, WorkloadParams, generate_workload

__all__ = [
    "ExperimentSettings",
    "default_settings",
    "paper_workload",
    "default_schemes",
    "run_comparison",
    "run_open_comparison",
    "SCHEME_LABELS",
]

#: Display names used across tables (paper's terminology).
SCHEME_LABELS = {
    "parallel_batch": "parallel batch",
    "object_probability": "object probability",
    "cluster_probability": "cluster probability",
}

#: The paper keeps m = 4 after Figure 5.
DEFAULT_M = 4


@dataclass(frozen=True)
class ExperimentSettings:
    """Everything an experiment driver needs besides its own sweep axis."""

    scale: str = "paper"
    num_samples: int = 200
    eval_seed: int = 0
    workload_seed: int = 20060814
    m: int = DEFAULT_M
    #: Within-tape seek-planner registry name threaded into every sweep
    #: point (``None`` = the default ``greedy-sweep``).
    seek_planner: Optional[str] = None
    #: Redundancy spec (``"r=2"`` / ``"k=4,n=6"``) wrapping every sweep
    #: point's scheme (``None`` = no redundancy).  A2's incremental points
    #: reject it — redundancy wraps static placements only.
    redundancy: Optional[str] = None

    @property
    def workload_params(self) -> WorkloadParams:
        if self.scale == "paper":
            return WorkloadParams(seed=self.workload_seed)
        if self.scale == "small":
            # One tenth of the paper in objects and tape capacity (see
            # spec()): the data-to-mounted-capacity pressure (~6x) and the
            # requests-span-tapes structure are preserved.
            return WorkloadParams(
                num_objects=2500,
                num_requests=60,
                request_size_bounds=(20, 40),
                # Narrower raw bounds than the paper scale: the small
                # system's 40 GB tapes must pack the largest object even
                # after F7's 1.5x size sweep at ~80% utilization (the paper
                # scale has the same object:tape ratio headroom).
                object_size_bounds_mb=(100.0, 3000.0),
                mean_object_size_mb=1780.0,
                seed=self.workload_seed,
            )
        raise ValueError(f"unknown scale {self.scale!r} (use 'paper' or 'small')")

    @property
    def samples(self) -> int:
        if self.scale == "small":
            return min(self.num_samples, 60)
        return self.num_samples

    def spec(self, num_libraries: Optional[int] = None) -> SystemSpec:
        spec = SystemSpec.table1()
        if self.scale == "small":
            # Tape capacity /10 so the small workload faces the same
            # switching pressure; timing constants stay Table-1 (the locate
            # rate scales with capacity, keeping the 98 s full rewind).
            spec = spec.scaled_technology(capacity_factor=0.1)
        if num_libraries is not None:
            spec = spec.with_libraries(num_libraries)
        return spec

    @property
    def figure8_num_objects(self) -> int:
        """Objects for the library-count sweep (DESIGN.md §5: the full data
        set cannot fit one library, so F8 uses 2/5 of the object count)."""
        return max(200, int(self.workload_params.num_objects * 2 / 5))


def default_settings(**overrides) -> ExperimentSettings:
    """Settings honoring the ``REPRO_SCALE`` / ``REPRO_SAMPLES`` env vars."""
    kwargs = {}
    if "REPRO_SCALE" in os.environ:
        kwargs["scale"] = os.environ["REPRO_SCALE"]
    if "REPRO_SAMPLES" in os.environ:
        kwargs["num_samples"] = int(os.environ["REPRO_SAMPLES"])
    kwargs.update(overrides)
    return ExperimentSettings(**kwargs)


def paper_workload(settings: ExperimentSettings, alpha: Optional[float] = None) -> Workload:
    """The Sec.-6 workload at the settings' scale (optionally re-skewed)."""
    workload = generate_workload(settings.workload_params)
    if alpha is not None:
        workload = workload.with_zipf_alpha(alpha)
    return workload


def default_schemes(m: int = DEFAULT_M) -> List[PlacementScheme]:
    """The three schemes the paper compares."""
    return [
        ParallelBatchPlacement(m=m),
        ObjectProbabilityPlacement(),
        ClusterProbabilityPlacement(),
    ]


def run_comparison(
    workload: Workload,
    spec: SystemSpec,
    schemes: Sequence[PlacementScheme],
    num_samples: int,
    seed: int = 0,
) -> Dict[str, EvaluationResult]:
    """Evaluate every scheme on the same workload/system/sample stream."""
    results: Dict[str, EvaluationResult] = {}
    for scheme in schemes:
        session = SimulationSession(workload, spec, scheme=scheme)
        results[scheme.name] = session.evaluate(num_samples=num_samples, seed=seed)
    return results


def run_open_comparison(
    workload: Workload,
    spec: SystemSpec,
    scheme: PlacementScheme,
    arrival_rate_per_hour: float,
    num_arrivals: int = 60,
    seed: int = 0,
    policies: Sequence[str] = ("serial-fcfs", "concurrent"),
) -> Dict[str, OpenSystemResult]:
    """Serve the *same* Poisson arrival stream under each scheduling policy.

    Every policy gets a freshly placed session (identical initial mounts)
    and an identical seeded arrival/sampling stream, so differences are
    attributable to scheduling alone.
    """
    results: Dict[str, OpenSystemResult] = {}
    for policy in policies:
        session = SimulationSession(workload, spec, scheme=scheme)
        results[policy] = session.open(policy=policy).run(
            arrival_rate_per_hour, num_arrivals=num_arrivals, seed=seed
        )
    return results
