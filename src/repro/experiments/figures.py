"""Drivers that regenerate every measured artifact of the paper.

Each function reproduces one row of the experiment index in DESIGN.md §3
(T1, F5–F9, E1–E3, A1) and returns an :class:`ExperimentTable` whose
``format()`` prints the same rows/series the paper's figure reports.
Absolute numbers differ from the paper (different traces, re-derived
scheduler details); the *shapes* — who wins, where the m-sweep peaks, which
component dominates — are asserted by the benchmark suite.

Every sweep driver expands to :class:`~repro.experiments.parallel.PointSpec`
jobs executed by :func:`~repro.experiments.parallel.run_sweep`, so it can
fan out over worker processes (``engine=EngineOptions(workers=4)`` or
``REPRO_WORKERS=4``) and memoize points in the on-disk result cache; the
``repro-tape sweep`` subcommand exposes both.  Each point's evaluation seed
is derived from ``settings.eval_seed`` per axis cell (see
:func:`~repro.experiments.parallel.spawn_seed`), so sweep points no longer
share one correlated sample stream across axis values, while schemes
compared *at* one axis value still draw identical, paired streams.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from ..hardware import SystemSpec
from .parallel import EngineOptions, PointSpec, SweepSpec, run_sweep
from .report import ExperimentTable
from .runner import (
    SCHEME_LABELS,
    ExperimentSettings,
    default_settings,
    paper_workload,
)

__all__ = [
    "table1",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "extreme_case",
    "tech_trends",
    "sensitivity",
    "ablation",
    "ALL_EXPERIMENTS",
    "SWEEP_EXPERIMENTS",
]

#: The three compared schemes as (registry name, constructor kwargs) pairs;
#: ``m`` applies only to parallel batch.
def _scheme_configs(m: int) -> List[Tuple[str, Tuple]]:
    return [
        ("parallel_batch", (("m", m),)),
        ("object_probability", ()),
        ("cluster_probability", ()),
    ]


def _comparison_points(
    sweep: str,
    axis: str,
    settings: ExperimentSettings,
    cells: Sequence[Dict],
) -> SweepSpec:
    """One point per (axis cell × scheme); schemes share the cell's seed."""
    points = []
    for cell in cells:
        cell = dict(cell)
        value = cell.pop("value")
        for scheme, kwargs in _scheme_configs(settings.m):
            points.append(
                PointSpec(
                    sweep=sweep,
                    axis=axis,
                    value=value,
                    scheme=scheme,
                    scheme_kwargs=kwargs,
                    workload=cell.get("workload", settings.workload_params),
                    spec=cell.get("spec", settings.spec()),
                    alpha=cell.get("alpha"),
                    size_scale=cell.get("size_scale"),
                    num_samples=settings.samples,
                    seed_group=cell.get("seed_group"),
                    seek_planner=settings.seek_planner,
                    redundancy=settings.redundancy,
                )
            )
    return SweepSpec(name=sweep, points=tuple(points), root_seed=settings.eval_seed)


# ---------------------------------------------------------------------------
# T1 — Table 1: drive/library specifications and derived timing checks
# ---------------------------------------------------------------------------
def table1(settings: Optional[ExperimentSettings] = None) -> ExperimentTable:
    """Print the Table-1 configuration and validate the derived timings.

    The linear positioning model takes only capacity, max rewind, and the
    robot/load constants as inputs; "average rewind 49 s" and "average first
    file access 72 s" are *derived* and compared against the quoted specs.
    """
    spec = SystemSpec.table1()
    lib = spec.library
    table = ExperimentTable(
        "T1",
        "Tape drive/library specifications (IBM LTO-3 / StorageTek L80)",
        ["parameter", "value", "paper", "kind"],
    )
    rows = [
        ("Average cell to drive time (s)", lib.cell_to_drive_s, 7.6, "input"),
        ("Tape load and thread to ready (s)", lib.drive.load_s, 19.0, "input"),
        ("Data transfer rate, native (MB/s)", lib.drive.transfer_rate_mb_s, 80.0, "input"),
        ("Maximum rewind time (s)", lib.tape.max_rewind_s, 98.0, "input"),
        ("Average rewind time (s)", lib.tape.avg_rewind_s, 49.0, "derived"),
        ("Unload time (s)", lib.drive.unload_s, 19.0, "input"),
        ("Average file access time, first file (s)", lib.first_file_access_s, 72.0, "derived"),
        ("Number of tapes per library", lib.num_tapes, 80, "input"),
        ("Tape capacity (GB)", lib.tape.capacity_mb / 1000.0, 400, "input"),
        ("Tape drives per library", lib.num_drives, 8, "input"),
        ("Number of tape libraries", spec.num_libraries, 3, "input"),
    ]
    worst_err = 0.0
    for name, value, paper, kind in rows:
        table.add_row(name, value, paper, kind)
        if kind == "derived":
            worst_err = max(worst_err, abs(value - paper) / paper)
    table.data["worst_derived_error"] = worst_err
    table.notes.append(
        f"worst derived-quantity error vs Table 1: {worst_err:.1%} "
        "(linear positioning model of Johnson & Miller)"
    )
    return table


# ---------------------------------------------------------------------------
# F5 — Figure 5: bandwidth vs number of switch drives m, per alpha
# ---------------------------------------------------------------------------
def figure5_spec(
    settings: ExperimentSettings,
    m_values: Sequence[int] = tuple(range(1, 8)),
    alphas: Sequence[float] = (0.0, 0.3, 0.6, 1.0),
) -> SweepSpec:
    points = []
    for m in m_values:
        for a in alphas:
            points.append(
                PointSpec(
                    sweep="fig5",
                    axis="m",
                    value=m,
                    scheme="parallel_batch",
                    scheme_kwargs=(("m", m),),
                    workload=settings.workload_params,
                    spec=settings.spec(),
                    alpha=a,
                    num_samples=settings.samples,
                    label=f"alpha={a}",
                    seek_planner=settings.seek_planner,
                    redundancy=settings.redundancy,
                )
            )
    return SweepSpec(name="fig5", points=tuple(points), root_seed=settings.eval_seed)


def figure5(
    settings: Optional[ExperimentSettings] = None,
    m_values: Sequence[int] = tuple(range(1, 8)),
    alphas: Sequence[float] = (0.0, 0.3, 0.6, 1.0),
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    settings = settings or default_settings()
    res = run_sweep(figure5_spec(settings, m_values, alphas), engine)
    table = ExperimentTable(
        "F5",
        "Effective bandwidth (MB/s) vs number of switch drives m",
        ["m"] + [f"alpha={a}" for a in alphas],
    )
    series: Dict[float, List[float]] = {a: [] for a in alphas}
    for m in m_values:
        row: List = [m]
        for a in alphas:
            bw = res.one(value=m, alpha=a).avg_bandwidth_mb_s
            row.append(bw)
            series[a].append(bw)
        table.add_row(*row)
    table.data["m_values"] = list(m_values)
    table.data["series"] = {a: series[a] for a in alphas}
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append(
        "paper: jump from m=1 to m=2, maximum for moderate m (position depends "
        "on alpha), decline once the always-mounted batch gets too small"
    )
    return table


# ---------------------------------------------------------------------------
# F6 — Figure 6: bandwidth vs alpha, three schemes
# ---------------------------------------------------------------------------
def figure6_spec(
    settings: ExperimentSettings,
    alphas: Sequence[float] = (0.0, 0.2, 0.3, 0.6, 0.8, 1.0),
) -> SweepSpec:
    cells = [{"value": a, "alpha": a} for a in alphas]
    return _comparison_points("fig6", "alpha", settings, cells)


def figure6(
    settings: Optional[ExperimentSettings] = None,
    alphas: Sequence[float] = (0.0, 0.2, 0.3, 0.6, 0.8, 1.0),
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    settings = settings or default_settings()
    res = run_sweep(figure6_spec(settings, alphas), engine)
    schemes = [name for name, _ in _scheme_configs(settings.m)]
    table = ExperimentTable(
        "F6",
        "Effective bandwidth (MB/s) vs request popularity skew alpha",
        ["alpha"] + [SCHEME_LABELS[s] for s in schemes],
    )
    series: Dict[str, List[float]] = {s: [] for s in schemes}
    for a in alphas:
        row: List = [a]
        for scheme in schemes:
            bw = res.one(value=a, scheme=scheme).avg_bandwidth_mb_s
            row.append(bw)
            series[scheme].append(bw)
        table.add_row(*row)
    table.data["alphas"] = list(alphas)
    table.data["series"] = series
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append(
        "paper: parallel batch on top throughout; parallel batch and object "
        "probability rise with alpha; cluster probability does not benefit"
    )
    return table


# ---------------------------------------------------------------------------
# F7 — Figure 7: bandwidth vs average request size (object-size scaling)
# ---------------------------------------------------------------------------
def figure7_spec(
    settings: ExperimentSettings,
    size_scales: Sequence[float] = (0.375, 0.55, 0.75, 1.0, 1.25, 1.5),
) -> SweepSpec:
    cells = [{"value": scale, "size_scale": scale} for scale in size_scales]
    return _comparison_points("fig7", "size_scale", settings, cells)


def figure7(
    settings: Optional[ExperimentSettings] = None,
    size_scales: Sequence[float] = (0.375, 0.55, 0.75, 1.0, 1.25, 1.5),
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    settings = settings or default_settings()
    res = run_sweep(figure7_spec(settings, size_scales), engine)
    schemes = [name for name, _ in _scheme_configs(settings.m)]
    base = paper_workload(settings)
    table = ExperimentTable(
        "F7",
        "Effective bandwidth (MB/s) vs average request size (GB)",
        ["avg request (GB)"] + [SCHEME_LABELS[s] for s in schemes],
    )
    series: Dict[str, List[float]] = {s: [] for s in schemes}
    # Size scaling is linear, so the axis labels derive from the base mean.
    sizes_gb = [base.average_request_size_mb * scale / 1000.0 for scale in size_scales]
    for scale, size_gb in zip(size_scales, sizes_gb):
        row: List = [size_gb]
        for scheme in schemes:
            bw = res.one(value=scale, scheme=scheme).avg_bandwidth_mb_s
            row.append(bw)
            series[scheme].append(bw)
        table.add_row(*row)
    table.data["request_sizes_gb"] = sizes_gb
    table.data["series"] = series
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append(
        "paper: bandwidth increases mildly with request size (transfer time "
        "grows, switch/seek roughly constant); parallel batch stays on top"
    )
    return table


# ---------------------------------------------------------------------------
# F8 — Figure 8: bandwidth vs number of libraries (scalability)
# ---------------------------------------------------------------------------
def figure8_spec(
    settings: ExperimentSettings,
    library_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
) -> SweepSpec:
    params = settings.workload_params
    mean_size = (params.mean_object_size_mb or 1780.0) * (240.0 / 218.0)
    workload = dataclasses.replace(
        params,
        num_objects=settings.figure8_num_objects,
        mean_object_size_mb=mean_size,
    )
    cells = [
        {"value": n, "workload": workload, "spec": settings.spec(num_libraries=n)}
        for n in library_counts
    ]
    return _comparison_points("fig8", "libraries", settings, cells)


def figure8(
    settings: Optional[ExperimentSettings] = None,
    library_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    """Scalability sweep at ~240 GB average request size.

    Feasibility note (DESIGN.md §5): at the paper's 30 000-object scale the
    data set (~59 TB at 240 GB/request) does not fit a *single* 32 TB
    library, so — as the paper itself notes it varied object counts without
    changing the ranking — this sweep uses 12 000 objects with the same
    ~2 GB mean size, keeping the 240 GB average request while fitting the
    n = 1 point.
    """
    settings = settings or default_settings()
    res = run_sweep(figure8_spec(settings, library_counts), engine)
    schemes = [name for name, _ in _scheme_configs(settings.m)]
    table = ExperimentTable(
        "F8",
        "Effective bandwidth (MB/s) vs number of tape libraries",
        ["libraries"] + [SCHEME_LABELS[s] for s in schemes],
    )
    series: Dict[str, List[float]] = {s: [] for s in schemes}
    for n in library_counts:
        row: List = [n]
        for scheme in schemes:
            bw = res.one(value=n, scheme=scheme).avg_bandwidth_mb_s
            row.append(bw)
            series[scheme].append(bw)
        table.add_row(*row)
    table.data["library_counts"] = list(library_counts)
    table.data["series"] = series
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append(
        "paper: parallel batch and object probability scale with libraries; "
        "cluster probability gains only up to ~3 libraries (robot relief), "
        "then flattens — it has no transfer parallelism"
    )
    return table


# ---------------------------------------------------------------------------
# F9 — Figure 9: response-time components per scheme
# ---------------------------------------------------------------------------
def figure9_spec(
    settings: ExperimentSettings, size_scale: float = 160.0 / 218.0
) -> SweepSpec:
    cells = [
        {
            "value": "components",
            "size_scale": size_scale,
            "seed_group": ("fig9", size_scale),
        }
    ]
    return _comparison_points("fig9", "scheme", settings, cells)


def figure9(
    settings: Optional[ExperimentSettings] = None,
    size_scale: float = 160.0 / 218.0,
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    """Component decomposition at ~160 GB average requests (paper scale).

    ``size_scale`` shrinks the base workload's object sizes; the default is
    the ratio of the paper's 160 GB to the base ~218 GB average, so it works
    at any settings scale.
    """
    settings = settings or default_settings()
    res = run_sweep(figure9_spec(settings, size_scale), engine)
    schemes = [name for name, _ in _scheme_configs(settings.m)]
    base = paper_workload(settings)
    request_size_gb = base.average_request_size_mb * size_scale / 1000.0
    table = ExperimentTable(
        "F9",
        f"Response-time components (s) at ~{request_size_gb:.0f} GB requests",
        ["scheme", "switch", "seek", "transfer", "response", "bandwidth (MB/s)"],
    )
    components: Dict[str, Dict[str, float]] = {}
    for scheme in schemes:
        r = res.one(scheme=scheme)
        components[scheme] = {
            "switch": r.avg_switch_s,
            "seek": r.avg_seek_s,
            "transfer": r.avg_transfer_s,
            "response": r.avg_response_s,
        }
        table.add_row(
            SCHEME_LABELS[scheme],
            r.avg_switch_s,
            r.avg_seek_s,
            r.avg_transfer_s,
            r.avg_response_s,
            r.avg_bandwidth_mb_s,
        )
    table.data["components"] = components
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append(
        "paper: object probability pays the largest switch time (it ignores "
        "relationships) but the best transfer time; seek time is secondary; "
        "parallel batch achieves the best balance and lowest response"
    )
    return table


# ---------------------------------------------------------------------------
# E1 — Sec. 6 prose: the all-mounted extreme case
# ---------------------------------------------------------------------------
def extreme_case(
    settings: Optional[ExperimentSettings] = None,
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    """Shrink objects until the n×d initially mounted tapes hold everything.

    The paper reports: object probability gets the lowest response (lowest
    seek); cluster probability and parallel batch have similar responses,
    but transfer accounts for ~62 % of cluster probability's response vs
    ~19 % for parallel batch (serial vs parallel reads)."""
    settings = settings or default_settings()
    spec = settings.spec()
    base = paper_workload(settings)
    usable = (
        0.8
        * spec.total_drives
        * spec.library.tape.capacity_mb
        * 0.9  # leave packing slack below the k coefficient
    )
    size_scale = usable / base.total_size_mb
    cells = [
        {"value": "all-mounted", "size_scale": size_scale, "seed_group": ("extreme",)}
    ]
    res = run_sweep(_comparison_points("extreme", "scheme", settings, cells), engine)
    schemes = [name for name, _ in _scheme_configs(settings.m)]
    table = ExperimentTable(
        "E1",
        "Extreme case: all objects on initially mounted tapes",
        ["scheme", "response (s)", "seek (s)", "switch (s)", "transfer share", "switches/req"],
    )
    stats: Dict[str, Dict[str, float]] = {}
    for scheme in schemes:
        r = res.one(scheme=scheme)
        stats[scheme] = {
            "response": r.avg_response_s,
            "seek": r.avg_seek_s,
            "switch": r.avg_switch_s,
            "transfer_fraction": r.transfer_fraction,
            "switches": r.avg_switches_per_request,
        }
        table.add_row(
            SCHEME_LABELS[scheme],
            r.avg_response_s,
            r.avg_seek_s,
            r.avg_switch_s,
            r.transfer_fraction,
            r.avg_switches_per_request,
        )
    table.data["stats"] = stats
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append(
        "paper: object probability lowest response (lowest seek); transfer is "
        "~62% of response for cluster probability vs ~19% for parallel batch"
    )
    return table


# ---------------------------------------------------------------------------
# E2 — Sec. 6 prose: technology trends
# ---------------------------------------------------------------------------
def tech_trends(
    settings: Optional[ExperimentSettings] = None,
    rate_factors: Sequence[float] = (1.0, 2.0, 4.0),
    capacity_factors: Sequence[float] = (1.0, 2.0),
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    """Faster drives / denser tapes ("due to page limitations" the paper
    omits the figure but states parallel batch improves the most)."""
    settings = settings or default_settings()
    configs = [(rf, cf) for cf in capacity_factors for rf in rate_factors]
    cells = [
        {
            "value": (rf, cf),
            "spec": settings.spec().scaled_technology(rate_factor=rf, capacity_factor=cf),
        }
        for rf, cf in configs
    ]
    res = run_sweep(_comparison_points("tech", "tech_factors", settings, cells), engine)
    schemes = [name for name, _ in _scheme_configs(settings.m)]
    table = ExperimentTable(
        "E2",
        "Effective bandwidth (MB/s) under improved tape technology",
        ["rate x", "capacity x"] + [SCHEME_LABELS[s] for s in schemes],
    )
    series: Dict[str, List[float]] = {s: [] for s in schemes}
    for rf, cf in configs:
        row: List = [rf, cf]
        for scheme in schemes:
            bw = res.one(value=(rf, cf), scheme=scheme).avg_bandwidth_mb_s
            row.append(bw)
            series[scheme].append(bw)
        table.add_row(*row)
    table.data["configs"] = configs
    table.data["series"] = series
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append(
        "paper (prose): with increased transfer speed and tape capacity, the "
        "proposed scheme improves more than the other two"
    )
    return table


# ---------------------------------------------------------------------------
# E3 — Sec. 6 prose: sensitivity to workload scale
# ---------------------------------------------------------------------------
def sensitivity(
    settings: Optional[ExperimentSettings] = None,
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    """Vary object/request counts; the scheme ranking must not change."""
    settings = settings or default_settings()
    base = settings.workload_params
    if settings.scale == "paper":
        variations = [
            ("base", {}),
            ("objects/2", {"num_objects": base.num_objects // 2}),
            ("objects+50%", {"num_objects": int(base.num_objects * 1.5)}),
            ("requests/2", {"num_requests": base.num_requests // 2}),
            ("requests x2", {"num_requests": base.num_requests * 2}),
            ("other seed", {"seed": base.seed + 1}),
        ]
    else:
        variations = [
            ("base", {}),
            ("objects/2", {"num_objects": base.num_objects // 2}),
            ("other seed", {"seed": base.seed + 1}),
        ]
    cells = [
        {"value": label, "workload": dataclasses.replace(base, **overrides)}
        for label, overrides in variations
    ]
    res = run_sweep(_comparison_points("sensitivity", "variation", settings, cells), engine)
    schemes = [name for name, _ in _scheme_configs(settings.m)]
    table = ExperimentTable(
        "E3",
        "Bandwidth (MB/s) ranking stability across workload variations",
        ["variation"] + [SCHEME_LABELS[s] for s in schemes] + ["winner"],
    )
    winners: List[str] = []
    for label, _ in variations:
        bws = {s: res.one(value=label, scheme=s).avg_bandwidth_mb_s for s in schemes}
        winner = max(bws, key=bws.get)
        winners.append(winner)
        table.add_row(label, *[bws[s] for s in schemes], SCHEME_LABELS[winner])
    table.data["winners"] = winners
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append(
        "paper (prose): varying the number of objects, pre-defined requests "
        "and simulated requests does not change the relative performance"
    )
    return table


# ---------------------------------------------------------------------------
# A1 — ablation of the parallel-batch ingredients (ours)
# ---------------------------------------------------------------------------
ABLATION_VARIANTS: List[Tuple[str, Dict]] = [
    ("full scheme", {}),
    ("no cluster refinement (Step 4 off)", {"refine": False}),
    ("round-robin instead of zig-zag (Fig. 3 off)", {"use_zigzag": False}),
    ("paper-literal Step 6 (per-object organ pipe)", {"alignment": "object"}),
    ("no alignment (FIFO layout)", {"alignment": "fifo"}),
    ("no pinned batch (switch strategy off)", {"pin_first_batch": False}),
    ("no shared-object detachment", {"detach_shared": False}),
]


def ablation_spec(settings: ExperimentSettings) -> SweepSpec:
    points = []
    for label, overrides in ABLATION_VARIANTS:
        kwargs = {"m": settings.m, **overrides}
        points.append(
            PointSpec(
                sweep="ablation",
                axis="variant",
                value=label,
                scheme="parallel_batch",
                scheme_kwargs=tuple(sorted(kwargs.items())),
                workload=settings.workload_params,
                spec=settings.spec(),
                num_samples=settings.samples,
                # All variants draw the same request stream (paired ablation).
                seed_group=("ablation",),
                seek_planner=settings.seek_planner,
                redundancy=settings.redundancy,
            )
        )
    return SweepSpec(name="ablation", points=tuple(points), root_seed=settings.eval_seed)


def ablation(
    settings: Optional[ExperimentSettings] = None,
    engine: Optional[EngineOptions] = None,
) -> ExperimentTable:
    settings = settings or default_settings()
    res = run_sweep(ablation_spec(settings), engine)
    table = ExperimentTable(
        "A1",
        "Parallel-batch ablation: contribution of each ingredient",
        ["variant", "bandwidth (MB/s)", "response (s)", "switch (s)", "seek (s)", "transfer (s)"],
    )
    bandwidths: Dict[str, float] = {}
    for label, _ in ABLATION_VARIANTS:
        r = res.one(value=label)
        bandwidths[label] = r.avg_bandwidth_mb_s
        table.add_row(
            label, r.avg_bandwidth_mb_s, r.avg_response_s, r.avg_switch_s,
            r.avg_seek_s, r.avg_transfer_s,
        )
    table.data["bandwidths"] = bandwidths
    table.data["sweep"] = res.stats
    table.data["fleet"] = res.fleet
    table.notes.append("every row below 'full scheme' disables exactly one ingredient")
    return table


def _extension_experiments():
    """Deferred import: extensions depend on this module's registry peers."""
    from .extensions import (
        availability,
        degraded,
        disk_stage,
        incremental,
        open_system,
        queueing,
        redundancy,
        repair,
        robots,
        seek_model,
        seek_planning,
        striping,
    )

    return {
        "incremental": incremental,
        "queueing": queueing,
        "disk": disk_stage,
        "striping": striping,
        "robots": robots,
        "degraded": degraded,
        "seek_model": seek_model,
        "open_system": open_system,
        "availability": availability,
        "seekplan": seek_planning,
        "redundancy": redundancy,
        "repair": repair,
    }


#: Experiment id -> driver, for the CLI (paper artifacts + extensions).
ALL_EXPERIMENTS = {
    "table1": table1,
    "fig5": figure5,
    "fig6": figure6,
    "fig7": figure7,
    "fig8": figure8,
    "fig9": figure9,
    "extreme": extreme_case,
    "tech": tech_trends,
    "sensitivity": sensitivity,
    "ablation": ablation,
}
ALL_EXPERIMENTS.update(_extension_experiments())

#: Experiments that run through the sweep engine (accept ``engine=``);
#: everything except the simulation-free Table 1.
SWEEP_EXPERIMENTS = {k: v for k, v in ALL_EXPERIMENTS.items() if k != "table1"}
