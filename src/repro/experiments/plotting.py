"""Terminal line charts for experiment tables.

``repro-tape experiment fig6 --chart`` renders the figure the paper prints,
directly in the terminal — one glyph per scheme/series, shared y-axis:

    320 |                       a
        |                a
    270 |  a    a   a                     a: parallel batch
        |            b              b     b: object probability
    220 |  b    c    c   b    c
        |       b             c    c
    170 +----------------------------
          0   0.2  0.3  0.6 0.8  1.0

Pure text, no plotting dependency; designed for the ``ExperimentTable``
shape (first column = x axis, remaining numeric columns = series).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .report import ExperimentTable

__all__ = ["ascii_chart", "chart_table"]

_GLYPHS = "abcdefghijklmnop"


def ascii_chart(
    x_labels: Sequence,
    series: Sequence[Sequence[float]],
    names: Sequence[str],
    height: int = 14,
    y_label: str = "",
) -> str:
    """Render one or more y-series over shared x positions as text.

    Each series gets a letter glyph; collisions print ``*``.
    """
    if not series or not any(len(s) for s in series):
        raise ValueError("nothing to plot")
    if len(series) > len(_GLYPHS):
        raise ValueError(f"too many series ({len(series)} > {len(_GLYPHS)})")
    n = len(x_labels)
    if any(len(s) != n for s in series):
        raise ValueError("every series must have one value per x label")
    if height < 3:
        raise ValueError(f"height must be >= 3, got {height}")

    values = [v for s in series for v in s]
    lo, hi = min(values), max(values)
    if hi == lo:
        hi = lo + 1.0  # flat line: avoid /0, draw mid-chart

    col_width = max(5, max(len(str(x)) for x in x_labels) + 2)

    def row_of(value: float) -> int:
        frac = (value - lo) / (hi - lo)
        return min(height - 1, int(round(frac * (height - 1))))

    grid: List[List[str]] = [[" "] * (n * col_width) for _ in range(height)]
    for si, s in enumerate(series):
        glyph = _GLYPHS[si]
        for xi, value in enumerate(s):
            r = height - 1 - row_of(value)
            c = xi * col_width + col_width // 2
            grid[r][c] = "*" if grid[r][c] not in (" ", glyph) else glyph

    def y_tick(row: int) -> float:
        frac = (height - 1 - row) / (height - 1)
        return lo + frac * (hi - lo)

    lines: List[str] = []
    if y_label:
        lines.append(y_label)
    for r in range(height):
        tick = f"{y_tick(r):>9.1f} |" if r % max(1, height // 5) == 0 else "          |"
        lines.append(tick + "".join(grid[r]))
    lines.append("          +" + "-" * (n * col_width))
    x_row = "           "
    for x in x_labels:
        x_row += str(x).center(col_width)
    lines.append(x_row)
    legend = "   ".join(f"{_GLYPHS[i]}: {name}" for i, name in enumerate(names))
    lines.append("          " + legend)
    return "\n".join(lines)


def chart_table(table: ExperimentTable, height: int = 14) -> Optional[str]:
    """Chart an experiment table whose first column is the x axis.

    Returns ``None`` when the table has no numeric series to draw (e.g. the
    Table-1 spec listing).
    """
    if len(table.columns) < 2 or len(table.rows) < 2:
        return None
    x_labels = [row[0] for row in table.rows]
    names: List[str] = []
    series: List[List[float]] = []
    for ci in range(1, len(table.columns)):
        column = [row[ci] for row in table.rows]
        if all(isinstance(v, (int, float)) for v in column):
            names.append(table.columns[ci])
            series.append([float(v) for v in column])
    if not series:
        return None
    return ascii_chart(
        x_labels,
        series,
        names,
        height=height,
        y_label=f"{table.experiment_id}: {table.title}",
    )
