"""Experiment drivers regenerating every table and figure of the paper.

See DESIGN.md §3 for the experiment index.  Usage::

    from repro.experiments import figure6, default_settings
    print(figure6(default_settings(scale="small")).format())
"""

from .cache import ResultCache, content_key, default_cache_dir
from .figures import (
    ALL_EXPERIMENTS,
    SWEEP_EXPERIMENTS,
    ablation,
    extreme_case,
    figure5,
    figure6,
    figure7,
    figure8,
    figure9,
    sensitivity,
    table1,
    tech_trends,
)
from .parallel import (
    EngineOptions,
    PointSpec,
    SweepResult,
    SweepSpec,
    evaluate_point,
    run_sweep,
    spawn_seed,
)
from .extensions import (
    availability,
    redundancy,
    repair,
    degraded,
    disk_stage,
    incremental,
    open_system,
    queueing,
    robots,
    seek_model,
    seek_planning,
    striping,
)
from .plotting import ascii_chart, chart_table
from .report import ExperimentTable
from .runner import (
    SCHEME_LABELS,
    ExperimentSettings,
    default_schemes,
    default_settings,
    paper_workload,
    run_comparison,
    run_open_comparison,
)

__all__ = [
    "ExperimentTable",
    "ascii_chart",
    "chart_table",
    "EngineOptions",
    "PointSpec",
    "SweepSpec",
    "SweepResult",
    "ResultCache",
    "content_key",
    "default_cache_dir",
    "evaluate_point",
    "run_sweep",
    "spawn_seed",
    "SWEEP_EXPERIMENTS",
    "ExperimentSettings",
    "default_settings",
    "default_schemes",
    "paper_workload",
    "run_comparison",
    "SCHEME_LABELS",
    "table1",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "figure9",
    "extreme_case",
    "tech_trends",
    "sensitivity",
    "ablation",
    "ALL_EXPERIMENTS",
    "incremental",
    "queueing",
    "disk_stage",
    "striping",
    "robots",
    "degraded",
    "seek_model",
    "open_system",
    "availability",
    "redundancy",
    "repair",
    "seek_planning",
    "run_open_comparison",
]
