"""Workload synthesis per Sec. 6 of the paper, plus trace I/O."""

from .distributions import (
    bounded_pareto,
    bounded_pareto_int,
    bounded_pareto_mean,
    zipf_probabilities,
)
from .generator import WorkloadGenerator, WorkloadParams, generate_workload
from .stats import WorkloadProfile, characterize, fit_zipf_alpha
from .trace import (
    dump_workload,
    load_workload,
    load_workload_csv,
    workload_from_dict,
    workload_to_dict,
)
from .workload import Workload

__all__ = [
    "bounded_pareto",
    "bounded_pareto_int",
    "bounded_pareto_mean",
    "zipf_probabilities",
    "WorkloadParams",
    "WorkloadGenerator",
    "generate_workload",
    "Workload",
    "WorkloadProfile",
    "characterize",
    "fit_zipf_alpha",
    "dump_workload",
    "load_workload",
    "load_workload_csv",
    "workload_to_dict",
    "workload_from_dict",
]
