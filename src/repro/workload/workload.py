"""The Workload container: catalog + request set + provenance parameters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..catalog import ObjectCatalog, Request, RequestSet
from .distributions import zipf_probabilities

if TYPE_CHECKING:  # pragma: no cover
    from .generator import WorkloadParams

__all__ = ["Workload"]


@dataclass(frozen=True)
class Workload:
    """Everything the placement schemes and the simulator consume.

    The catalog's per-object probabilities are always kept consistent with
    the request popularities (Step 1 of the placement algorithm:
    ``P(O) = Σ_{O∈R} P(R)``).
    """

    catalog: ObjectCatalog
    requests: RequestSet
    params: "WorkloadParams | None" = None

    def __post_init__(self) -> None:
        expected = self.requests.object_probabilities(len(self.catalog))
        if not np.allclose(expected, self.catalog.probabilities):
            self.catalog.set_probabilities(expected)

    # -- summary ------------------------------------------------------------
    @property
    def num_objects(self) -> int:
        return len(self.catalog)

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def total_size_mb(self) -> float:
        return self.catalog.total_size_mb()

    @property
    def average_request_size_mb(self) -> float:
        return self.requests.average_request_size_mb(self.catalog)

    @property
    def max_request_size_mb(self) -> float:
        return max(r.total_size_mb(self.catalog) for r in self.requests)

    # -- derived workloads ----------------------------------------------------
    def with_scaled_sizes(self, factor: float) -> "Workload":
        """Same requests, object sizes scaled by ``factor``.

        This is exactly how Figure 7 varies the average request size: "the
        request size is changed by changing the object size".
        """
        if factor <= 0:
            raise ValueError(f"scale factor must be positive, got {factor}")
        catalog = ObjectCatalog(np.asarray(self.catalog.sizes_mb) * factor)
        return Workload(catalog, self.requests, self.params)

    def with_zipf_alpha(self, alpha: float) -> "Workload":
        """Same requests and sizes, re-skewed popularity (Figures 5–6 knob).

        Rank order is preserved: request ``i`` keeps popularity rank
        ``i + 1``, only the skew changes.
        """
        probs = zipf_probabilities(self.num_requests, alpha)
        requests = RequestSet(
            [
                Request(r.id, r.object_ids, float(p))
                for r, p in zip(self.requests, probs)
            ]
        )
        catalog = ObjectCatalog(np.asarray(self.catalog.sizes_mb))
        return Workload(catalog, requests, self.params)

    def __repr__(self) -> str:
        return (
            f"<Workload {self.num_objects} objects ({self.total_size_mb / 1e6:.1f} TB), "
            f"{self.num_requests} requests (avg {self.average_request_size_mb / 1e3:.0f} GB)>"
        )
