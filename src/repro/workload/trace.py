"""JSON (de)serialization of workloads.

Lets experiments pin an exact trace to disk so that runs are comparable
across machines and code revisions, and lets users bring their own traces
(e.g. exported from a real backup catalog) into the simulator.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Union

import numpy as np

from ..catalog import ObjectCatalog, Request, RequestSet
from .generator import WorkloadParams
from .workload import Workload

__all__ = [
    "dump_workload",
    "load_workload",
    "load_workload_csv",
    "workload_to_dict",
    "workload_from_dict",
]

_FORMAT_VERSION = 1


def workload_to_dict(workload: Workload) -> dict:
    """A plain-JSON representation of a workload."""
    return {
        "format_version": _FORMAT_VERSION,
        "params": asdict(workload.params) if workload.params is not None else None,
        "object_sizes_mb": np.asarray(workload.catalog.sizes_mb).tolist(),
        "requests": [
            {
                "id": r.id,
                "object_ids": list(r.object_ids),
                "probability": r.probability,
            }
            for r in workload.requests
        ],
    }


def workload_from_dict(data: dict) -> Workload:
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(f"unsupported workload format version: {version!r}")
    params = None
    if data.get("params") is not None:
        raw = dict(data["params"])
        for key in ("object_size_bounds_mb", "request_size_bounds"):
            if key in raw and raw[key] is not None:
                raw[key] = tuple(raw[key])
        params = WorkloadParams(**raw)
    catalog = ObjectCatalog(np.asarray(data["object_sizes_mb"], dtype=np.float64))
    requests = RequestSet(
        [
            Request(r["id"], tuple(r["object_ids"]), float(r["probability"]))
            for r in data["requests"]
        ]
    )
    return Workload(catalog, requests, params)


def dump_workload(workload: Workload, path: Union[str, Path]) -> None:
    """Write a workload to a JSON file."""
    Path(path).write_text(json.dumps(workload_to_dict(workload)))


def load_workload(path: Union[str, Path]) -> Workload:
    """Read a workload from a JSON file."""
    return workload_from_dict(json.loads(Path(path).read_text()))


def load_workload_csv(objects_csv: Union[str, Path], requests_csv: Union[str, Path]) -> Workload:
    """Build a workload from two CSV files (real-catalog import path).

    ``objects_csv`` columns: ``object_id,size_mb`` — object ids must be the
    dense integers ``0..N-1`` (any order).
    ``requests_csv`` columns: ``request_id,object_id,probability`` — one row
    per (request, member); the probability column must repeat the request's
    weight on each of its rows (weights are normalized afterwards).
    """
    import csv

    sizes: dict = {}
    with open(objects_csv, newline="") as fh:
        for row in csv.DictReader(fh):
            sizes[int(row["object_id"])] = float(row["size_mb"])
    if not sizes:
        raise ValueError(f"{objects_csv}: no objects")
    n = len(sizes)
    if sorted(sizes) != list(range(n)):
        raise ValueError(
            f"{objects_csv}: object ids must be dense integers 0..{n - 1}"
        )
    size_array = np.array([sizes[i] for i in range(n)], dtype=np.float64)

    members: dict = {}
    weights: dict = {}
    with open(requests_csv, newline="") as fh:
        for row in csv.DictReader(fh):
            rid = int(row["request_id"])
            members.setdefault(rid, []).append(int(row["object_id"]))
            weight = float(row["probability"])
            if rid in weights and abs(weights[rid] - weight) > 1e-12:
                raise ValueError(
                    f"{requests_csv}: request {rid} has inconsistent probabilities"
                )
            weights[rid] = weight
    if not members:
        raise ValueError(f"{requests_csv}: no requests")
    requests = RequestSet(
        [Request(rid, tuple(members[rid]), weights[rid]) for rid in sorted(members)]
    )
    return Workload(ObjectCatalog(size_array), requests)
