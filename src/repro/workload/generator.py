"""Seeded workload generator implementing Sec. 6 "Simulation Settings".

Paper parameters reproduced by the defaults:

* 30 000 objects, sizes power-law within a pre-defined range;
* 300 pre-defined requests;
* objects per request power-law in [100, 150], members drawn uniformly
  at random (the same object may appear in several requests);
* request popularity Zipf with skew ``alpha``.

The paper quotes average request sizes (≈213 GB in Fig. 6, ≈240 GB in
Fig. 8, ≈160 GB in Fig. 9) rather than object-size bounds, so the generator
accepts a ``mean_object_size_mb`` target and rescales the sampled power-law
sizes to hit it exactly — the shape stays power-law, the mean is pinned.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Tuple

import numpy as np

from ..catalog import ObjectCatalog, Request, RequestSet
from .distributions import bounded_pareto, bounded_pareto_int, zipf_probabilities
from .workload import Workload

__all__ = ["WorkloadParams", "WorkloadGenerator", "generate_workload"]

#: Default seed; any fixed value works, reproducibility is what matters.
DEFAULT_SEED = 20060814


@dataclass(frozen=True)
class WorkloadParams:
    """Knobs of the Sec.-6 workload (defaults = the paper's base setting)."""

    num_objects: int = 30_000
    num_requests: int = 300
    #: Power-law range for raw object sizes, MB.
    object_size_bounds_mb: Tuple[float, float] = (100.0, 20_000.0)
    object_size_shape: float = 1.1
    #: If set, sizes are rescaled so their mean hits this target (MB).
    #: 1780 MB × ~120 objects/request ≈ the 213 GB average request of Fig. 6.
    mean_object_size_mb: Optional[float] = 1780.0
    #: Power-law range for the number of objects per request.
    request_size_bounds: Tuple[int, int] = (100, 150)
    request_size_shape: float = 1.1
    #: Zipf skew of request popularity (0 = uniform, 1 = most skewed).
    zipf_alpha: float = 0.3
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if self.num_objects <= 0 or self.num_requests <= 0:
            raise ValueError("num_objects and num_requests must be positive")
        lo, hi = self.request_size_bounds
        if not (0 < lo <= hi):
            raise ValueError(f"bad request_size_bounds {self.request_size_bounds}")
        if hi > self.num_objects:
            raise ValueError(
                f"requests of up to {hi} objects cannot be drawn from "
                f"{self.num_objects} objects without replacement"
            )
        if self.zipf_alpha < 0:
            raise ValueError(f"zipf_alpha must be >= 0, got {self.zipf_alpha}")

    def with_alpha(self, alpha: float) -> "WorkloadParams":
        return replace(self, zipf_alpha=alpha)


class WorkloadGenerator:
    """Generates :class:`Workload` instances from :class:`WorkloadParams`."""

    def __init__(self, params: WorkloadParams | None = None) -> None:
        self.params = params or WorkloadParams()

    def generate(self) -> Workload:
        p = self.params
        rng = np.random.default_rng(p.seed)

        # Object sizes: bounded power law, optionally rescaled to the target
        # mean (keeps the distribution shape; pins the average request size).
        lo, hi = p.object_size_bounds_mb
        sizes = bounded_pareto(rng, p.num_objects, lo, hi, p.object_size_shape)
        if p.mean_object_size_mb is not None:
            sizes *= p.mean_object_size_mb / sizes.mean()

        # Request cardinalities and memberships.
        counts = bounded_pareto_int(
            rng, p.num_requests, p.request_size_bounds[0], p.request_size_bounds[1],
            p.request_size_shape,
        )
        popularity = zipf_probabilities(p.num_requests, p.zipf_alpha)
        requests = [
            Request(
                id=i,
                object_ids=tuple(
                    int(o) for o in rng.choice(p.num_objects, size=int(counts[i]), replace=False)
                ),
                probability=float(popularity[i]),
            )
            for i in range(p.num_requests)
        ]

        catalog = ObjectCatalog(sizes)
        return Workload(catalog, RequestSet(requests), p)


def generate_workload(params: WorkloadParams | None = None, **overrides) -> Workload:
    """Convenience wrapper: ``generate_workload(zipf_alpha=0.6, seed=1)``."""
    base = params or WorkloadParams()
    if overrides:
        base = replace(base, **overrides)
    return WorkloadGenerator(base).generate()
