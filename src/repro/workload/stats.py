"""Workload characterization: measure the properties the paper assumes.

The paper's three retrieval assumptions (Sec. 3) — clustered co-access,
skewed popularity, whole-object reads — are *inputs* for the synthetic
generator but must be *measured* for an imported trace before the placement
schemes' behaviour can be predicted.  :func:`characterize` produces the
numbers that matter to every scheme:

* a maximum-likelihood Zipf exponent for the request popularity (the α that
  Figures 5–6 sweep);
* the sharing profile (how many requests reference each object — the
  quantity that drives the shared-object detachment of DESIGN.md §5.3);
* object-size distribution percentiles and the implied tape pressure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..hardware import SystemSpec
from .workload import Workload

__all__ = ["WorkloadProfile", "fit_zipf_alpha", "characterize"]


def fit_zipf_alpha(probabilities: np.ndarray, grid: Optional[np.ndarray] = None) -> float:
    """Least-squares fit of the Zipf exponent to a popularity vector.

    The vector is sorted into rank order and α is chosen to minimize the
    squared error between ``log p_r`` and ``log c − α·log r``; with the
    intercept profiled out this is ordinary linear regression on logs.
    """
    p = np.sort(np.asarray(probabilities, dtype=np.float64))[::-1]
    p = p[p > 0]
    if len(p) < 2:
        return 0.0
    log_r = np.log(np.arange(1, len(p) + 1))
    log_p = np.log(p / p.sum())
    slope, _ = np.polyfit(log_r, log_p, 1)
    return float(max(0.0, -slope))


@dataclass(frozen=True)
class WorkloadProfile:
    """Measured characteristics of a workload."""

    num_objects: int
    num_requests: int
    total_size_mb: float
    mean_object_size_mb: float
    median_object_size_mb: float
    p95_object_size_mb: float
    max_object_size_mb: float
    avg_request_size_mb: float
    avg_objects_per_request: float
    fitted_zipf_alpha: float
    #: Fraction of request-referenced objects appearing in >= 2 requests.
    shared_object_fraction: float
    #: Fraction of objects referenced by no request (cold filler).
    cold_object_fraction: float
    #: Mean number of requests referencing an appearing object.
    mean_appearances: float

    def format(self) -> str:
        lines = [
            "workload profile",
            "----------------",
            f"objects:              {self.num_objects:,} "
            f"({self.total_size_mb / 1e6:.2f} TB total)",
            f"object size (MB):     mean {self.mean_object_size_mb:,.0f}, "
            f"median {self.median_object_size_mb:,.0f}, "
            f"p95 {self.p95_object_size_mb:,.0f}, max {self.max_object_size_mb:,.0f}",
            f"requests:             {self.num_requests:,} "
            f"(avg {self.avg_request_size_mb / 1e3:.1f} GB, "
            f"{self.avg_objects_per_request:.1f} objects)",
            f"fitted Zipf alpha:    {self.fitted_zipf_alpha:.2f}",
            f"sharing:              {self.shared_object_fraction:.0%} of referenced "
            f"objects appear in >=2 requests (mean {self.mean_appearances:.2f} appearances)",
            f"cold objects:         {self.cold_object_fraction:.0%} referenced by no request",
        ]
        return "\n".join(lines)

    def tape_pressure(self, spec: SystemSpec) -> Dict[str, float]:
        """Capacity ratios against a system spec (values > 1 are pressure)."""
        mounted = spec.total_drives * spec.library.tape.capacity_mb
        return {
            "data_to_total_capacity": self.total_size_mb / spec.total_capacity_mb,
            "data_to_mounted_capacity": self.total_size_mb / mounted,
            "max_object_to_tape": self.max_object_size_mb / spec.library.tape.capacity_mb,
        }


def characterize(workload: Workload) -> WorkloadProfile:
    """Measure a workload's placement-relevant characteristics."""
    sizes = np.asarray(workload.catalog.sizes_mb)
    appearances = np.zeros(len(sizes), dtype=np.int64)
    request_lengths = []
    for request in workload.requests:
        appearances[list(request.object_ids)] += 1
        request_lengths.append(len(request))
    referenced = appearances > 0
    n_referenced = int(referenced.sum())

    return WorkloadProfile(
        num_objects=len(sizes),
        num_requests=workload.num_requests,
        total_size_mb=float(sizes.sum()),
        mean_object_size_mb=float(sizes.mean()),
        median_object_size_mb=float(np.median(sizes)),
        p95_object_size_mb=float(np.percentile(sizes, 95)),
        max_object_size_mb=float(sizes.max()),
        avg_request_size_mb=workload.average_request_size_mb,
        avg_objects_per_request=float(np.mean(request_lengths)),
        fitted_zipf_alpha=fit_zipf_alpha(np.asarray(workload.requests.probabilities)),
        shared_object_fraction=(
            float((appearances >= 2).sum() / n_referenced) if n_referenced else 0.0
        ),
        cold_object_fraction=float((~referenced).mean()),
        mean_appearances=(
            float(appearances[referenced].mean()) if n_referenced else 0.0
        ),
    )
