"""Probability distributions used by the workload generator (Sec. 6).

* Object sizes: "a power law distribution within a pre-defined range" —
  bounded (truncated) Pareto, sampled by inverse CDF, vectorized.
* Request cardinality: "power law distribution ranging from 100 to 150" —
  the same bounded Pareto, rounded to integers.
* Request popularity: Zipf, ``P_r = c · r^(-alpha)``; ``alpha = 0`` is
  uniform and ``alpha = 1`` the most skewed the paper uses.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "bounded_pareto",
    "bounded_pareto_int",
    "bounded_pareto_mean",
    "zipf_probabilities",
]


def _validate_bounds(lower: float, upper: float, shape: float) -> None:
    if not lower > 0:
        raise ValueError(f"lower bound must be positive, got {lower}")
    if not upper > lower:
        raise ValueError(f"upper bound ({upper}) must exceed lower bound ({lower})")
    if not shape > 0:
        raise ValueError(f"shape (power-law exponent) must be positive, got {shape}")


def bounded_pareto(
    rng: np.random.Generator, size: int, lower: float, upper: float, shape: float = 1.1
) -> np.ndarray:
    """Sample a Pareto distribution truncated to ``[lower, upper]``.

    Density ∝ x^(−shape−1) on the interval; sampled by inverting the
    truncated CDF, so the result is exact (no rejection) and vectorized.
    """
    _validate_bounds(lower, upper, shape)
    u = rng.random(size)
    la, ha = lower**shape, upper**shape
    # Inverse CDF of the truncated Pareto:
    #   F(x) = (1 - (l/x)^a) / (1 - (l/h)^a)
    return (-(u * ha - u * la - ha) / (ha * la)) ** (-1.0 / shape)


def bounded_pareto_int(
    rng: np.random.Generator, size: int, lower: int, upper: int, shape: float = 1.1
) -> np.ndarray:
    """Integer bounded-Pareto samples in ``[lower, upper]`` (inclusive).

    Used for the per-request object count (100–150 in the paper).
    """
    # Sample continuously over [lower, upper + 1) and floor, so `upper`
    # itself has non-zero mass.
    values = bounded_pareto(rng, size, float(lower), float(upper) + 1.0, shape)
    return np.minimum(np.floor(values).astype(np.int64), upper)


def bounded_pareto_mean(lower: float, upper: float, shape: float = 1.1) -> float:
    """Analytic mean of the truncated Pareto (for size-target scaling)."""
    _validate_bounds(lower, upper, shape)
    if abs(shape - 1.0) < 1e-12:
        h = upper / lower
        return lower * np.log(h) * h / (h - 1.0)
    la, ha = lower**shape, upper**shape
    return (
        (la / (1 - (lower / upper) ** shape))
        * (shape / (shape - 1))
        * (lower ** (1 - shape) - upper ** (1 - shape))
    )


def zipf_probabilities(n: int, alpha: float) -> np.ndarray:
    """Normalized Zipf popularity over ranks 1..n: ``P_r ∝ r^(-alpha)``."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if alpha < 0:
        raise ValueError(f"alpha must be non-negative, got {alpha}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks**-alpha
    return weights / weights.sum()
