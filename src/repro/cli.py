"""Command-line interface: ``repro-tape`` / ``python -m repro``.

Subcommands
-----------
``experiment <id>``  run one of the paper's experiments (T1, F5–F9, E1–E3, A1)
``sweep <id>``       run an experiment through the parallel sweep engine
                     (worker processes + on-disk result cache)
``run``              evaluate one scheme on one configuration
``open``             open-system serving: Poisson arrivals on one shared clock
``chaos``            open-system run under stochastic drive fail/repair faults
``profile``          run an open-system workload under cProfile; print hot spots
``trace``            run a workload and export telemetry (Perfetto trace + metrics)
``report``           render the self-contained HTML fleet dashboard from JSONL
``metrics``          print (or ``--follow``) fleet telemetry JSONL records
``schemes``          list registered placement schemes
``workload``         generate and dump/inspect a workload trace

Status and diagnostic output goes through :mod:`logging` (stderr) so it is
separable from result tables and dashboards on stdout; ``--verbose`` /
``--quiet`` on the top-level parser adjust the level.

Examples::

    repro-tape experiment fig6 --scale small
    repro-tape sweep fig5 --workers 4 --scale small
    repro-tape sweep fig6 --workers 2 --metrics-out fleet.jsonl \
        --report sweep.html --slo "p99_sojourn <= 600"
    repro-tape run --scheme parallel_batch --m 4 --alpha 0.3 --samples 200
    repro-tape open --policy concurrent --rate 8 --arrivals 60 --scale small
    repro-tape open --fail L0.D0=1800 --fail L0.D1=3600 --scale small
    repro-tape chaos --mtbf 4 --mttr 0.5 --seed 7 --scale small
    repro-tape chaos --mtbf 2 --slo "availability >= 0.95" --report chaos.html
    repro-tape trace --requests 50 --policy concurrent --out-dir telemetry
    repro-tape report fleet.jsonl --out report.html --slo "aborted_requests == 0"
    repro-tape metrics feed.jsonl --follow
    repro-tape workload --out trace.json --alpha 0.6
"""

from __future__ import annotations

import argparse
import logging
import sys
from typing import List, Optional

from .experiments import (
    ALL_EXPERIMENTS,
    SWEEP_EXPERIMENTS,
    EngineOptions,
    ExperimentSettings,
    chart_table,
    default_cache_dir,
    default_settings,
)
from .placement import available_schemes, make_scheme
from .sim import (
    READ_SELECTIONS,
    REPAIR_POLICIES,
    SimulationSession,
    available_scheduling_policies,
    available_seek_planners,
)
from .workload import dump_workload, generate_workload

__all__ = ["main", "build_parser"]

logger = logging.getLogger("repro.cli")


def _configure_logging(args: argparse.Namespace) -> None:
    """Route status/diagnostic output through :mod:`logging` on stderr.

    Result tables, dashboards, and machine-readable artifacts stay on
    stdout; everything narrational (sweep stats, artifact paths, progress)
    is INFO, silenced by ``--quiet``, and joined by DEBUG detail under
    ``--verbose``.
    """
    if getattr(args, "quiet", False):
        level = logging.WARNING
    elif getattr(args, "verbose", False):
        level = logging.DEBUG
    else:
        level = logging.INFO
    logging.basicConfig(
        level=level, stream=sys.stderr, format="%(message)s", force=True
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-tape",
        description=(
            "Reproduction of 'Object Placement in Parallel Tape Storage "
            "Systems' (ICPP 2006)"
        ),
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="debug-level status output on stderr",
    )
    parser.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="suppress status output (warnings and errors only)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    exp = sub.add_parser("experiment", help="run a paper experiment and print its table")
    exp.add_argument(
        "id",
        choices=sorted(ALL_EXPERIMENTS),
        help="experiment id (see DESIGN.md §3)",
    )
    exp.add_argument(
        "--chart", action="store_true", help="also draw the series as a terminal chart"
    )
    exp.add_argument("--csv", metavar="PATH", help="also write the table as CSV")
    _add_settings_args(exp)

    sw = sub.add_parser(
        "sweep",
        help="run an experiment through the parallel sweep engine",
        description=(
            "Expands the experiment into (scheme, axis-value, replicate) "
            "point jobs, fans them out over worker processes, and memoizes "
            "each point in an on-disk content-addressed cache keyed by the "
            "full point configuration — re-running after editing one scheme "
            "recomputes only that scheme's points.  Results are bit-identical "
            "for any worker count and point order (per-point seeds derive "
            "from the root seed via SeedSequence).  See docs/experiments.md."
        ),
    )
    sw.add_argument(
        "id",
        choices=sorted(SWEEP_EXPERIMENTS),
        help="experiment id (every sweep experiment; table1 has no sweep)",
    )
    sw.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes (default: $REPRO_WORKERS, else 1 = in-process)",
    )
    sw.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache directory (default: $REPRO_CACHE_DIR, else "
        "~/.cache/repro-tape/sweeps)",
    )
    sw.add_argument(
        "--no-cache", action="store_true", help="disable the on-disk result cache"
    )
    sw.add_argument(
        "--refresh",
        action="store_true",
        help="ignore cached results but store fresh ones",
    )
    sw.add_argument(
        "--chart", action="store_true", help="also draw the series as a terminal chart"
    )
    sw.add_argument("--csv", metavar="PATH", help="also write the table as CSV")
    sw.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the merged fleet telemetry as JSONL "
        "(render later with `repro-tape report`)",
    )
    sw.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="render the sweep's fleet dashboard to this HTML file",
    )
    sw.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="SPEC",
        help="service-level objective to evaluate against the merged fleet, "
        "e.g. 'p99_sojourn <= 600' (repeatable; non-zero exit on failure)",
    )
    sw.add_argument(
        "--feed",
        default=None,
        metavar="PATH",
        help="stream live point/progress records to this JSONL file while "
        "the sweep runs (tail with `repro-tape metrics PATH --follow`)",
    )
    _add_seek_planner_arg(sw)
    _add_redundancy_arg(sw)
    _add_shard_workers_arg(sw)
    _add_settings_args(sw)

    run = sub.add_parser("run", help="evaluate one scheme on one configuration")
    run.add_argument("--scheme", default="parallel_batch", choices=sorted(available_schemes()))
    run.add_argument("--m", type=int, default=4, help="switch drives per library (parallel_batch)")
    run.add_argument("--alpha", type=float, default=0.3, help="Zipf popularity skew")
    run.add_argument("--libraries", type=int, default=3)
    run.add_argument("--samples", type=int, default=200)
    run.add_argument("--seed", type=int, default=0, help="evaluation sampling seed")
    run.add_argument("--workload-seed", type=int, default=20060814)
    _add_settings_args(run)

    op = sub.add_parser(
        "open", help="serve a Poisson arrival stream on one persistent environment"
    )
    op.add_argument(
        "--policy",
        default="concurrent",
        choices=sorted(available_scheduling_policies()),
        help="request-scheduling policy (serial-fcfs reproduces the closed loop)",
    )
    op.add_argument("--scheme", default="parallel_batch", choices=sorted(available_schemes()))
    op.add_argument("--m", type=int, default=4, help="switch drives per library (parallel_batch)")
    op.add_argument("--rate", type=float, default=4.0, help="Poisson arrival rate per hour")
    op.add_argument("--arrivals", type=int, default=60, help="number of arrivals to serve")
    op.add_argument("--seed", type=int, default=0, help="arrival/sampling seed")
    op.add_argument(
        "--window",
        type=float,
        default=None,
        metavar="SECONDS",
        help="also print tumbling-window stats of this width",
    )
    op.add_argument(
        "--fail",
        action="append",
        default=None,
        metavar="DRIVE=TIME",
        help="fail a drive permanently at an absolute time in seconds, e.g. "
        "--fail L0.D0=1800 (repeatable; requires --policy concurrent)",
    )
    _add_media_fault_args(op)
    _add_seek_planner_arg(op)
    _add_redundancy_arg(op)
    _add_scheduler_arg(op)
    _add_shard_workers_arg(op)
    _add_settings_args(op)

    ch = sub.add_parser(
        "chaos",
        help="open-system run under stochastic drive fail/repair faults",
        formatter_class=argparse.RawDescriptionHelpFormatter,
        description=(
            "Serves a Poisson arrival stream while every drive runs an\n"
            "independent stochastic fail/repair process (exponential or\n"
            "Weibull MTBF/MTTR), optionally with transient mount/read errors\n"
            "retried with capped exponential backoff.  Fault timing draws\n"
            "from substreams of --fault-seed, so runs are bit-reproducible.\n"
            "Prints availability, degraded time, and fault counters next to\n"
            "the usual sojourn statistics.  See docs/robustness.md.\n"
            "\n"
            "Examples:\n"
            "  repro-tape chaos --mtbf 4 --mttr 0.5 --seed 7 --scale small\n"
            "  repro-tape chaos --mtbf 2 --mttr 0.25 --distribution weibull \\\n"
            "      --shape 1.5 --scheme object_probability --scale small\n"
            "  repro-tape chaos --mtbf 8 --transient-prob 0.05 --retries 3 \\\n"
            "      --out-dir chaos-telemetry --scale small\n"
            "  repro-tape chaos --fail L0.D0=1800 --mtbf 1e9 --scale small"
        ),
    )
    ch.add_argument("--scheme", default="parallel_batch", choices=sorted(available_schemes()))
    ch.add_argument("--m", type=int, default=4, help="switch drives per library (parallel_batch)")
    ch.add_argument("--rate", type=float, default=8.0, help="Poisson arrival rate per hour")
    ch.add_argument("--arrivals", type=int, default=60, help="number of arrivals to serve")
    ch.add_argument("--seed", type=int, default=0, help="arrival/sampling seed")
    ch.add_argument(
        "--mtbf", type=float, default=4.0, metavar="HOURS",
        help="mean time between drive failures (default: 4 h)",
    )
    ch.add_argument(
        "--mttr", type=float, default=0.5, metavar="HOURS",
        help="mean time to repair a failed drive (default: 0.5 h)",
    )
    ch.add_argument(
        "--distribution", default="exponential", choices=["exponential", "weibull"],
        help="time-to-failure/repair distribution",
    )
    ch.add_argument(
        "--shape", type=float, default=1.0,
        help="Weibull shape k (>1 wear-out, <1 infant mortality)",
    )
    ch.add_argument(
        "--transient-prob", type=float, default=0.0, metavar="P",
        help="per-attempt transient mount/read error probability",
    )
    ch.add_argument(
        "--retries", type=int, default=4, metavar="N",
        help="transient retries before escalating to a hard failure",
    )
    ch.add_argument(
        "--fault-seed", type=int, default=None,
        help="root seed of the fault-timing substreams (default: --seed)",
    )
    ch.add_argument(
        "--fail",
        action="append",
        default=None,
        metavar="DRIVE=TIME",
        help="additionally fail a drive permanently at an absolute time "
        "in seconds (repeatable)",
    )
    _add_media_fault_args(ch)
    ch.add_argument(
        "--out-dir", default=None, metavar="DIR",
        help="also export trace.json + metrics.jsonl telemetry artifacts",
    )
    ch.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="SPEC",
        help="service-level objective to evaluate against the run, e.g. "
        "'availability >= 0.99' (repeatable; 'default' expands to the "
        "chaos defaults; non-zero exit on failure)",
    )
    ch.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="render the run's fleet dashboard to this HTML file",
    )
    ch.add_argument(
        "--sample-period",
        type=float,
        default=None,
        metavar="SECONDS",
        help="periodic registry snapshot period feeding the dashboard's "
        "drives-down timeline (default: 300 when --report is set)",
    )
    _add_redundancy_arg(ch)
    _add_scheduler_arg(ch)
    _add_shard_workers_arg(ch)
    _add_settings_args(ch)

    tr = sub.add_parser(
        "trace",
        help="serve an open-system workload and export its telemetry artifacts",
        description=(
            "Runs a Poisson arrival stream (like `open`) with full telemetry: "
            "writes a Chrome/Perfetto trace_event JSON (load it at "
            "https://ui.perfetto.dev) and a metrics JSONL time series, then "
            "prints the critical-path stage-attribution table and a text "
            "flame of the slowest request.  See docs/observability.md."
        ),
    )
    tr.add_argument(
        "--policy",
        default="concurrent",
        choices=sorted(available_scheduling_policies()),
        help="request-scheduling policy",
    )
    tr.add_argument("--scheme", default="parallel_batch", choices=sorted(available_schemes()))
    tr.add_argument("--m", type=int, default=4, help="switch drives per library (parallel_batch)")
    tr.add_argument("--rate", type=float, default=8.0, help="Poisson arrival rate per hour")
    tr.add_argument("--requests", type=int, default=50, help="number of arrivals to serve")
    tr.add_argument("--seed", type=int, default=0, help="arrival/sampling seed")
    tr.add_argument(
        "--sample-period",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="metrics snapshot period in simulated seconds",
    )
    tr.add_argument(
        "--out-dir", default="telemetry", help="artifact directory (default: telemetry/)"
    )
    tr.add_argument(
        "--flames", type=int, default=1, metavar="N",
        help="print text flame trees of the N slowest requests",
    )
    tr.add_argument(
        "--validate",
        action="store_true",
        help="validate the exported trace against the trace_event schema; "
        "non-zero exit on problems",
    )
    _add_settings_args(tr)

    pf = sub.add_parser(
        "profile",
        help="profile an open-system run under cProfile and print the hot spots",
        description=(
            "Serves a Poisson arrival stream (like `open`) with the Python "
            "profiler attached to the simulation run only (placement and "
            "session construction are excluded), then prints events/sec and "
            "the top functions by the chosen sort key.  This is the harness "
            "behind docs/performance.md: use it before and after touching "
            "the DES kernel or engine hot paths."
        ),
    )
    pf.add_argument(
        "--policy",
        default="serial-fcfs",
        choices=sorted(available_scheduling_policies()),
        help="request-scheduling policy to profile",
    )
    pf.add_argument("--scheme", default="parallel_batch", choices=sorted(available_schemes()))
    pf.add_argument("--m", type=int, default=4, help="switch drives per library (parallel_batch)")
    pf.add_argument("--rate", type=float, default=8.0, help="Poisson arrival rate per hour")
    pf.add_argument("--arrivals", type=int, default=60, help="number of arrivals to serve")
    pf.add_argument("--seed", type=int, default=0, help="arrival/sampling seed")
    pf.add_argument(
        "--top", type=int, default=25, metavar="N",
        help="rows of the profile table to print (default: 25)",
    )
    pf.add_argument(
        "--sort", default="tottime", choices=["tottime", "cumulative", "calls"],
        help="pstats sort key (default: tottime)",
    )
    pf.add_argument(
        "--stats-out", default=None, metavar="PATH",
        help="also dump the raw profile for snakeviz/pstats post-processing",
    )
    pf.add_argument(
        "--trace-out", default=None, metavar="DIR",
        help="also export trace.json + metrics.jsonl telemetry from the "
        "profiled run (requires tracing enabled)",
    )
    _add_seek_planner_arg(pf)
    _add_settings_args(pf)

    cmp_p = sub.add_parser(
        "compare", help="paired statistical comparison of two schemes"
    )
    cmp_p.add_argument("scheme_a", choices=sorted(available_schemes()))
    cmp_p.add_argument("scheme_b", choices=sorted(available_schemes()))
    cmp_p.add_argument("--metric", default="response_s",
                       choices=["response_s", "bandwidth_mb_s", "switch_s", "seek_s", "transfer_s"])
    cmp_p.add_argument("--alpha", type=float, default=0.3)
    cmp_p.add_argument("--samples", type=int, default=200)
    cmp_p.add_argument("--seed", type=int, default=0)
    _add_settings_args(cmp_p)

    rep = sub.add_parser(
        "reproduce",
        help="run every experiment (T1, F5-F9, E1-E3, A1-A8) and write a results directory",
    )
    rep.add_argument("--out", default="results", help="output directory (default: results/)")
    rep.add_argument(
        "--only",
        nargs="*",
        choices=sorted(ALL_EXPERIMENTS),
        help="restrict to these experiment ids",
    )
    _add_settings_args(rep)

    rpt = sub.add_parser(
        "report",
        help="render the self-contained HTML fleet dashboard from saved JSONL",
        description=(
            "Rebuilds a FleetRegistry from saved telemetry — either fleet "
            "JSONL (`sweep --metrics-out`) or metrics JSONL (`chaos/trace "
            "--out-dir`, whose trailing registry_export record carries the "
            "full mergeable state) — evaluates any --slo objectives against "
            "it, and writes one dependency-free HTML page: KPI tiles, sweep "
            "progress, per-stage latency percentiles, the drives-down "
            "timeline, and the SLO verdict table.  See docs/observability.md."
        ),
    )
    rpt.add_argument(
        "input",
        metavar="JSONL",
        help="fleet JSONL (sweep --metrics-out) or metrics JSONL (chaos/trace)",
    )
    rpt.add_argument(
        "--out", default="report.html", metavar="PATH",
        help="dashboard HTML path (default: report.html)",
    )
    rpt.add_argument(
        "--slo",
        action="append",
        default=None,
        metavar="SPEC",
        help="objective to evaluate and render, e.g. 'p95_sojourn <= 300' "
        "(repeatable; 'default' expands to the chaos defaults; non-zero "
        "exit on failure)",
    )
    rpt.add_argument("--title", default=None, help="dashboard title override")

    mt = sub.add_parser(
        "metrics",
        help="print (or --follow) fleet telemetry JSONL records",
        description=(
            "Pretty-prints fleet/feed/metrics JSONL records one per line; "
            "--follow keeps the file open and tails records as a running "
            "sweep appends them (pair with `sweep --feed PATH`)."
        ),
    )
    mt.add_argument("input", metavar="JSONL", help="fleet / feed / metrics JSONL file")
    mt.add_argument(
        "--follow",
        action="store_true",
        help="keep tailing for records appended by a live sweep",
    )
    mt.add_argument(
        "--interval",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="poll interval while following (default: 0.5)",
    )

    sub.add_parser("schemes", help="list registered placement schemes")

    wl = sub.add_parser("workload", help="generate a workload; print stats or dump JSON")
    wl.add_argument("--out", help="path for the JSON trace (omit to just print stats)")
    wl.add_argument("--alpha", type=float, default=0.3)
    wl.add_argument("--seed", type=int, default=20060814)
    _add_settings_args(wl)

    return parser


def _add_seek_planner_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--seek-planner",
        default=None,
        choices=sorted(available_seek_planners()),
        help="within-tape retrieval-order planner (default: greedy-sweep; "
        "see docs/seek_planning.md)",
    )


def _add_shard_workers_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        metavar="N",
        help="run one DES environment per library shard in N forked "
        "workers when the configuration permits (default: "
        "$REPRO_SHARD_WORKERS, else 1 = single environment; results are "
        "bit-identical either way, see docs/performance.md)",
    )


def _add_scheduler_arg(parser: argparse.ArgumentParser) -> None:
    from .des import SCHEDULERS

    parser.add_argument(
        "--scheduler",
        default=None,
        choices=sorted(SCHEDULERS),
        help="kernel event-scheduler implementation (default: "
        "$REPRO_SCHEDULER, else heapq; a pure throughput knob — pop order "
        "and results are bit-identical)",
    )


def _add_media_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fail-tape",
        action="append",
        default=None,
        metavar="TAPE=TIME",
        help="destroy a cartridge (whole-tape media loss) at an absolute "
        "time in seconds, e.g. --fail-tape L0.T3=1800 (repeatable; the "
        "repair manager re-replicates redundant data, see "
        "docs/robustness.md)",
    )
    parser.add_argument(
        "--repair-policy",
        default=None,
        choices=sorted(REPAIR_POLICIES),
        help="how media-loss repair traffic competes with user restores "
        "(default: user-first)",
    )
    parser.add_argument(
        "--read-selection",
        default=None,
        choices=sorted(READ_SELECTIONS),
        help="redundant-read member ordering: least-loaded library "
        "(default) or cheapest member (mounted tape first, then lowest "
        "estimated drive time)",
    )


def _add_redundancy_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--redundancy",
        default=None,
        metavar="SPEC",
        help="wrap the scheme in a redundancy layer: 'r=<copies>' for "
        "replication or 'k=<data>,n=<total>' for erasure coding "
        "(see docs/redundancy.md)",
    )


def _add_settings_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale",
        choices=["paper", "small"],
        default=None,
        help="paper = 30k objects / Table-1 system; small = ~10x smaller",
    )
    parser.add_argument(
        "--num-samples",
        type=int,
        default=None,
        help="sampled requests per configuration (paper uses 200)",
    )


def _settings(args: argparse.Namespace) -> ExperimentSettings:
    overrides = {}
    if getattr(args, "scale", None):
        overrides["scale"] = args.scale
    if getattr(args, "num_samples", None):
        overrides["num_samples"] = args.num_samples
    if getattr(args, "seek_planner", None):
        overrides["seek_planner"] = args.seek_planner
    if getattr(args, "redundancy", None):
        overrides["redundancy"] = args.redundancy
    return default_settings(**overrides)


def _cmd_experiment(args: argparse.Namespace) -> int:
    settings = _settings(args)
    table = ALL_EXPERIMENTS[args.id](settings)
    print(table.format())
    if getattr(args, "chart", False):
        chart = chart_table(table)
        print()
        print(chart if chart else "(no numeric series to chart)")
    if getattr(args, "csv", None):
        from pathlib import Path

        Path(args.csv).write_text(table.to_csv())
        logger.info("CSV written to %s", args.csv)
    return 0


def _parse_slo_args(specs: Optional[List[str]]):
    """Expand repeated ``--slo`` values (and the ``default`` shorthand)."""
    from .obs import DEFAULT_CHAOS_SLOS, parse_slos

    texts: List[str] = []
    for spec in specs or []:
        if spec.strip().lower() == "default":
            texts.extend(DEFAULT_CHAOS_SLOS)
        else:
            texts.append(spec)
    return parse_slos(";".join(texts)) if texts else ()


def _cmd_sweep(args: argparse.Namespace) -> int:
    settings = _settings(args)
    if args.no_cache:
        cache_dir = None
    else:
        cache_dir = args.cache_dir or str(default_cache_dir())

    feed = None
    feed_fh = None
    on_feed = None
    if args.feed:
        import json

        from .obs import FleetFeed

        feed = FleetFeed()
        feed_fh = open(args.feed, "w")

        def on_feed(record, _fh=feed_fh):
            _fh.write(json.dumps(record) + "\n")
            _fh.flush()

    engine = EngineOptions(
        workers=args.workers,
        cache_dir=cache_dir,
        refresh=args.refresh,
        shard_workers=_check_shard_workers(getattr(args, "shard_workers", None)),
        feed=feed,
        on_feed=on_feed,
    )
    try:
        table = SWEEP_EXPERIMENTS[args.id](settings, engine=engine)
    finally:
        if feed is not None:
            feed.close()
        if feed_fh is not None:
            feed_fh.close()
            logger.info("feed:              %s", args.feed)
    print(table.format())
    stats = table.data.get("sweep", {})
    if stats:
        cache_note = (
            f"cache {stats['cache_hits']} hits / {stats['cache_misses']} misses "
            f"({stats['cache_dir']})"
            if stats.get("cache_dir")
            else "cache disabled"
        )
        logger.info(
            "  sweep: %d points in %.2f s (%.1f points/s, workers=%d); %s",
            stats["points"],
            stats["wall_s"],
            stats["points_per_s"],
            stats["workers"],
            cache_note,
        )
    if getattr(args, "chart", False):
        chart = chart_table(table)
        print()
        print(chart if chart else "(no numeric series to chart)")
    if getattr(args, "csv", None):
        from pathlib import Path

        Path(args.csv).write_text(table.to_csv())
        logger.info("CSV written to %s", args.csv)

    fleet = table.data.get("fleet")
    status = 0
    if fleet is not None:
        from .obs import write_fleet_jsonl

        if args.metrics_out:
            lines = write_fleet_jsonl(fleet, args.metrics_out)
            logger.info("fleet metrics:     %s  (%d lines)", args.metrics_out, lines)
        slos = _parse_slo_args(args.slo)
        verdicts = ()
        if slos:
            from .obs import evaluate_slos

            verdicts = evaluate_slos(slos, fleet)
        if args.report:
            from .obs import write_dashboard

            write_dashboard(
                fleet,
                args.report,
                verdicts=verdicts,
                title=f"repro-tape sweep: {args.id}",
                subtitle=f"{stats.get('points', len(fleet.points))} points, "
                f"workers={stats.get('workers', '?')}",
            )
            logger.info("dashboard:         %s", args.report)
        if verdicts:
            from .obs import format_verdicts

            print()
            print(format_verdicts(verdicts))
            status = 0 if all(v.passed for v in verdicts) else 1
    elif args.metrics_out or args.slo or args.report:
        logger.warning(
            "no fleet telemetry available for this experiment; "
            "--metrics-out/--slo/--report skipped"
        )
    return status


def _cmd_run(args: argparse.Namespace) -> int:
    settings = _settings(args)
    params = settings.workload_params
    workload = generate_workload(params, seed=args.workload_seed, zipf_alpha=args.alpha)
    spec = settings.spec(num_libraries=args.libraries)
    kwargs = {"m": args.m} if args.scheme == "parallel_batch" else {}
    scheme = make_scheme(args.scheme, **kwargs)
    session = SimulationSession(workload, spec, scheme=scheme)
    result = session.evaluate(num_samples=args.samples, seed=args.seed)
    print(f"scheme:            {args.scheme}")
    print(f"workload:          {workload!r}")
    print(f"system:            {spec!r}")
    print(f"samples:           {len(result)}")
    print(f"avg bandwidth:     {result.avg_bandwidth_mb_s:10.1f} MB/s")
    print(f"avg response:      {result.avg_response_s:10.1f} s")
    print(f"  avg switch:      {result.avg_switch_s:10.1f} s")
    print(f"  avg seek:        {result.avg_seek_s:10.1f} s")
    print(f"  avg transfer:    {result.avg_transfer_s:10.1f} s")
    print(f"avg switches/req:  {result.avg_switches_per_request:10.1f}")
    print(f"avg drives/req:    {result.avg_drives_per_request:10.1f}")
    return 0


def _parse_fail_args(
    pairs: Optional[List[str]], flag: str = "--fail", what: str = "DRIVE"
) -> dict:
    """``["L0.D0=1800", ...]`` -> ``{"L0.D0": 1800.0, ...}``."""
    failures = {}
    for pair in pairs or []:
        name, sep, at_s = pair.partition("=")
        if not sep or not name:
            raise SystemExit(
                f"error: {flag} expects {what}=TIME, got {pair!r}"
            )
        try:
            failures[name] = float(at_s)
        except ValueError:
            raise SystemExit(
                f"error: {flag} time must be a number, got {pair!r}"
            ) from None
    return failures


def _check_fault_ids(session, drive_failures: dict, tape_failures: dict) -> None:
    """Validate ``--fail`` / ``--fail-tape`` ids against the configuration.

    An unknown id exits 2 (usage error) with the known-id list, *before*
    any simulation starts — a typo'd drive or tape name must not silently
    run a fault-free experiment.
    """
    from .sim import known_drive_names, known_tape_names

    known_drives = known_drive_names(session.system)
    bad = sorted(set(drive_failures) - set(known_drives))
    if bad:
        print(
            f"error: --fail: unknown drive id(s): {', '.join(bad)}\n"
            f"known drives: {', '.join(known_drives)}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    known_tapes = known_tape_names(session.system)
    bad = sorted(set(tape_failures) - set(known_tapes))
    if bad:
        print(
            f"error: --fail-tape: unknown tape id(s): {', '.join(bad)}\n"
            f"known tapes: {', '.join(known_tapes)}",
            file=sys.stderr,
        )
        raise SystemExit(2)


def _check_shard_workers(
    value: Optional[int], num_libraries: Optional[int] = None
) -> int:
    """Validate ``--shard-workers`` / ``$REPRO_SHARD_WORKERS``.

    A non-positive (or non-integer env) count exits 2 (usage error)
    *before* any simulation starts, matching the ``--fail`` /
    ``--fail-tape`` id checks.  Requesting more shards than the
    configuration has libraries is legal — the sharding layer caps at one
    library per shard — but almost certainly not what the user meant, so
    it warns.
    """
    import os

    if value is None:
        raw = os.environ.get("REPRO_SHARD_WORKERS", "1") or "1"
        try:
            value = int(raw)
        except ValueError:
            print(
                f"error: REPRO_SHARD_WORKERS must be an integer >= 1, "
                f"got {raw!r}",
                file=sys.stderr,
            )
            raise SystemExit(2) from None
    if value < 1:
        print(
            f"error: --shard-workers must be >= 1, got {value}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    if num_libraries is not None and value > num_libraries:
        logger.warning(
            "--shard-workers %d exceeds the %d configured librar%s; "
            "capping at one shard per library",
            value,
            num_libraries,
            "y" if num_libraries == 1 else "ies",
        )
    return value


def _cmd_open(args: argparse.Namespace) -> int:
    from .experiments import paper_workload

    settings = _settings(args)
    workload = paper_workload(settings)
    spec = settings.spec()
    kwargs = {"m": args.m} if args.scheme == "parallel_batch" else {}
    scheme = make_scheme(args.scheme, **kwargs)
    if args.redundancy:
        from .redundancy import wrap_scheme

        scheme = wrap_scheme(scheme, args.redundancy)
    session = SimulationSession(workload, spec, scheme=scheme)
    failures = _parse_fail_args(getattr(args, "fail", None))
    tape_failures = _parse_fail_args(
        getattr(args, "fail_tape", None), flag="--fail-tape", what="TAPE"
    )
    _check_fault_ids(session, failures, tape_failures)
    shard_workers = _check_shard_workers(
        getattr(args, "shard_workers", None), spec.num_libraries
    )
    faults = None
    if tape_failures:
        from .sim import TapeFailure

        faults = tuple(
            TapeFailure(tape, at_s=at_s)
            for tape, at_s in sorted(tape_failures.items())
        )
    opensys = session.open(
        policy=args.policy,
        failures=failures or None,
        faults=faults,
        seek_planner=args.seek_planner,
        repair_policy=args.repair_policy,
        read_selection=args.read_selection or "least-loaded",
        scheduler=getattr(args, "scheduler", None),
        shard_workers=shard_workers,
    )
    result = opensys.run(args.rate, num_arrivals=args.arrivals, seed=args.seed)
    print(f"policy:            {result.policy}")
    print(f"seek planner:      {opensys.seek_planner.name}")
    print(f"scheme:            {result.scheme}")
    print(f"arrival rate:      {result.arrival_rate_per_hour:10.1f} /h")
    print(f"arrivals served:   {len(result):10d}")
    if failures or tape_failures:
        print(f"  aborted:         {result.aborted_requests:10d}")
        print(f"availability:      {result.availability:10.2%}")
    if tape_failures:
        repair_summary = result.repair
        print(f"tape losses:       {result.faults.get('tape_losses', 0):10.0f}")
        print(f"objects lost:      {result.objects_lost:10d}")
        print(f"durability:        {result.durability:10.4%}")
        print(f"members rebuilt:   {repair_summary.get('members_rebuilt', 0):10.0f}")
        print(f"repair backlog:    {result.repair_backlog_seconds:10.1f} s")
    print(f"horizon:           {result.horizon_s:10.1f} s")
    print(f"mean sojourn:      {result.mean_sojourn_s:10.1f} s")
    print(f"  mean wait:       {result.mean_wait_s:10.1f} s")
    print(f"  mean service:    {result.mean_service_s:10.1f} s")
    print(f"p50 sojourn:       {result.sojourn_percentile(50):10.1f} s")
    print(f"p95 sojourn:       {result.sojourn_percentile(95):10.1f} s")
    print(f"utilization:       {result.utilization:10.2%}")
    print(f"peak in flight:    {result.peak_in_flight:10d}")
    for name in sorted(result.resources):
        summary = result.resources[name]
        print(
            f"resource {name:<10s} grants={summary['grants']:<6.0f}"
            f" max_in_use={summary['max_in_use']:<4.0f}"
            f" busy={summary['busy_s']:10.1f} s"
        )
    if args.window is not None:
        print()
        print(f"{'window':>20s} {'arr':>4s} {'done':>4s} {'in-flight':>9s} "
              f"{'p50':>8s} {'p95':>8s}")
        for w in result.windowed(args.window):
            print(
                f"[{w.start_s:8.0f},{w.end_s:8.0f}) {w.arrivals:4d} {w.completions:4d} "
                f"{w.mean_in_flight:9.2f} {w.p50_sojourn_s:8.1f} {w.p95_sojourn_s:8.1f}"
            )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .experiments import paper_workload
    from .sim import DriveFaultProcess, RetryPolicy, TapeFailure, TransientFaults

    settings = _settings(args)
    workload = paper_workload(settings)
    spec = settings.spec()
    kwargs = {"m": args.m} if args.scheme == "parallel_batch" else {}
    scheme = make_scheme(args.scheme, **kwargs)
    if args.redundancy:
        from .redundancy import wrap_scheme

        scheme = wrap_scheme(scheme, args.redundancy)
    session = SimulationSession(workload, spec, scheme=scheme)

    faults: List = [
        DriveFaultProcess(
            mtbf_s=args.mtbf * 3600.0,
            mttr_s=args.mttr * 3600.0,
            distribution=args.distribution,
            shape=args.shape,
        )
    ]
    if args.transient_prob > 0:
        faults.append(
            TransientFaults(
                probability=args.transient_prob,
                retry=RetryPolicy(max_retries=args.retries),
            )
        )
    failures = _parse_fail_args(getattr(args, "fail", None))
    tape_failures = _parse_fail_args(
        getattr(args, "fail_tape", None), flag="--fail-tape", what="TAPE"
    )
    _check_fault_ids(session, failures, tape_failures)
    shard_workers = _check_shard_workers(
        getattr(args, "shard_workers", None), spec.num_libraries
    )
    for tape, at_s in sorted(tape_failures.items()):
        faults.append(TapeFailure(tape, at_s=at_s))
    fault_seed = args.fault_seed if args.fault_seed is not None else args.seed
    sample_period = args.sample_period
    if sample_period is None and args.report:
        sample_period = 300.0
    result = session.open(
        policy="concurrent",
        failures=failures or None,
        faults=tuple(faults),
        fault_seed=fault_seed,
        repair_policy=args.repair_policy,
        read_selection=args.read_selection or "least-loaded",
        scheduler=getattr(args, "scheduler", None),
        shard_workers=shard_workers,
    ).run(
        args.rate,
        num_arrivals=args.arrivals,
        seed=args.seed,
        sample_period_s=sample_period,
    )

    faults_summary = result.faults
    print(f"scheme:            {result.scheme}")
    print(f"arrival rate:      {result.arrival_rate_per_hour:10.1f} /h")
    print(f"drive MTBF/MTTR:   {args.mtbf:.2f} h / {args.mttr:.2f} h "
          f"({args.distribution}, seed {fault_seed})")
    print(f"arrivals served:   {len(result):10d}")
    print(f"  aborted:         {result.aborted_requests:10d}")
    print(f"horizon:           {result.horizon_s:10.1f} s")
    print(f"availability:      {result.availability:10.2%}")
    print(f"degraded time:     {result.degraded_time_s:10.1f} s "
          f"({result.degraded_time_s / result.horizon_s:.1%} of horizon)")
    print(f"drive failures:    {faults_summary['drive_failures']:10.0f}")
    print(f"drive repairs:     {faults_summary['drive_repairs']:10.0f}")
    print(f"transient errors:  {faults_summary['transient_errors']:10.0f}")
    print(f"  retries:         {faults_summary['retries']:10.0f}")
    print(f"  escalations:     {faults_summary['escalations']:10.0f}")
    if tape_failures:
        repair_summary = result.repair
        print(f"tape losses:       {faults_summary.get('tape_losses', 0):10.0f}")
        print(f"repair policy:     {repair_summary.get('policy', 'user-first'):>10s}")
        print(f"objects lost:      {result.objects_lost:10d}")
        print(f"durability:        {result.durability:10.4%}")
        print(f"members rebuilt:   {repair_summary.get('members_rebuilt', 0):10.0f}")
        print(f"groups degraded:   {repair_summary.get('groups_degraded', 0):10.0f}")
        print(f"repair backlog:    {result.repair_backlog_seconds:10.1f} s")
    if args.redundancy and result.registry is not None:
        counters = result.registry.counters
        fallbacks = counters.get("redundancy.fallbacks")
        unservable = counters.get("redundancy.unservable")
        print(f"redundancy:        {args.redundancy:>10s}")
        print(f"  replica fallbacks: {fallbacks.value if fallbacks else 0:8.0f}")
        print(f"  unservable groups: {unservable.value if unservable else 0:8.0f}")
    print(f"mean sojourn:      {result.mean_sojourn_s:10.1f} s")
    print(f"p95 sojourn:       {result.sojourn_percentile(95):10.1f} s")

    if args.out_dir:
        from pathlib import Path

        out = Path(args.out_dir)
        out.mkdir(parents=True, exist_ok=True)
        trace_path = out / "trace.json"
        metrics_path = out / "metrics.jsonl"
        result.write_trace(trace_path)
        lines = result.write_metrics(metrics_path)
        logger.info("trace:             %s  (open at https://ui.perfetto.dev)",
                    trace_path)
        logger.info("metrics:           %s  (%d lines)", metrics_path, lines)

    status = 0
    if args.slo or args.report:
        from .obs import FleetRegistry
        from .obs.fleet import snapshot_of_result

        fleet = FleetRegistry()
        fleet.fold(snapshot_of_result(result, point_meta={
            "sweep": "chaos",
            "scheme": result.scheme,
            "kind": "chaos",
        }))
        slos = _parse_slo_args(args.slo)
        verdicts = ()
        if slos:
            from .obs import evaluate_slos

            verdicts = evaluate_slos(slos, fleet)
        if args.report:
            from .obs import write_dashboard

            snapshots = result.registry.snapshots if result.registry else None
            write_dashboard(
                fleet,
                args.report,
                verdicts=verdicts,
                snapshots=snapshots,
                title="repro-tape chaos run",
                subtitle=f"MTBF {args.mtbf:g} h / MTTR {args.mttr:g} h "
                f"({args.distribution}), {len(result)} arrivals",
            )
            logger.info("dashboard:         %s", args.report)
        if verdicts:
            from .obs import format_verdicts

            print()
            print(format_verdicts(verdicts))
            status = 0 if all(v.passed for v in verdicts) else 1
    return status


def _cmd_profile(args: argparse.Namespace) -> int:
    import cProfile
    import pstats
    from time import perf_counter

    from .experiments import paper_workload

    settings = _settings(args)
    workload = paper_workload(settings)
    spec = settings.spec()
    kwargs = {"m": args.m} if args.scheme == "parallel_batch" else {}
    session = SimulationSession(workload, spec, scheme=make_scheme(args.scheme, **kwargs))
    opensys = session.open(policy=args.policy, seek_planner=args.seek_planner)

    profiler = cProfile.Profile()
    start = perf_counter()
    profiler.enable()
    result = opensys.run(args.rate, num_arrivals=args.arrivals, seed=args.seed)
    profiler.disable()
    wall = perf_counter() - start

    events = opensys.env.events_processed
    print(f"policy:            {result.policy}")
    print(f"scheme:            {result.scheme}")
    print(f"seek planner:      {opensys.seek_planner.name}")
    print(f"arrivals served:   {len(result):10d}")
    print(f"horizon:           {result.horizon_s:10.1f} s")
    print(f"wall time:         {wall:10.3f} s")
    print(f"events processed:  {events:10d}")
    print(f"events/sec:        {events / wall:10,.0f}")
    print(f"spans recorded:    {len(result.spans()):10d}")
    print()

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.sort_stats(args.sort).print_stats(args.top)

    if args.stats_out:
        stats.dump_stats(args.stats_out)
        print(f"raw profile:       {args.stats_out}")
    if args.trace_out:
        from pathlib import Path

        if not result.spans():
            print(
                "warning: no spans recorded (tracing disabled?); skipping "
                "--trace-out export",
                file=sys.stderr,
            )
        else:
            out = Path(args.trace_out)
            out.mkdir(parents=True, exist_ok=True)
            trace_path = out / "trace.json"
            metrics_path = out / "metrics.jsonl"
            result.write_trace(trace_path)
            lines = result.write_metrics(metrics_path)
            print(f"trace:             {trace_path}  (open at https://ui.perfetto.dev)")
            print(f"metrics:           {metrics_path}  ({lines} lines)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .des import trace_enabled_by_env
    from .experiments import paper_workload
    from .obs import render_request_flame, validate_chrome_trace

    if not trace_enabled_by_env():
        print(
            "error: tracing is disabled by REPRO_TRACE in the environment; "
            "unset it (or set REPRO_TRACE=1) to export a trace",
            file=sys.stderr,
        )
        return 2

    settings = _settings(args)
    workload = paper_workload(settings)
    spec = settings.spec()
    kwargs = {"m": args.m} if args.scheme == "parallel_batch" else {}
    session = SimulationSession(workload, spec, scheme=make_scheme(args.scheme, **kwargs))
    result = session.open(policy=args.policy).run(
        args.rate,
        num_arrivals=args.requests,
        seed=args.seed,
        sample_period_s=args.sample_period,
    )

    out = Path(args.out_dir)
    out.mkdir(parents=True, exist_ok=True)
    trace_path = out / "trace.json"
    metrics_path = out / "metrics.jsonl"
    doc = result.write_trace(trace_path)
    lines = result.write_metrics(metrics_path)
    print(f"policy:            {result.policy}")
    print(f"scheme:            {result.scheme}")
    print(f"requests served:   {len(result):10d}")
    print(f"horizon:           {result.horizon_s:10.1f} s")
    print(f"spans recorded:    {len(result.spans()):10d}")
    print(f"trace:             {trace_path}  (open at https://ui.perfetto.dev)")
    print(f"metrics:           {metrics_path}  ({lines} lines)")
    print()

    report = result.stage_report()
    print(report.format())

    if args.flames > 0:
        spans = result.spans()
        slowest = sorted(report.requests, key=lambda r: -r.response_s)[: args.flames]
        for attribution in slowest:
            print()
            print(render_request_flame(spans, attribution.request_id))

    if args.validate:
        problems = validate_chrome_trace(doc)
        print()
        if problems:
            print(f"trace validation FAILED ({len(problems)} problems):")
            for problem in problems:
                print(f"  - {problem}")
            return 1
        print("trace validation OK: spans parented, durations non-negative, "
              "tracks per drive")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .obs import (
        evaluate_slos,
        format_verdicts,
        read_fleet_jsonl,
        read_metrics_jsonl,
        write_dashboard,
    )

    path = Path(args.input)
    if not path.exists():
        print(f"error: no such file: {path}", file=sys.stderr)
        return 2
    try:
        fleet = read_fleet_jsonl(path)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not fleet.counters and not fleet.digests:
        print(
            f"error: {path} holds no mergeable fleet telemetry "
            "(expected fleet JSONL from `sweep --metrics-out` or metrics "
            "JSONL from `chaos`/`trace` with a registry_export record)",
            file=sys.stderr,
        )
        return 2

    # A metrics JSONL also carries the periodic registry snapshots that
    # drive the drives-down timeline; on fleet JSONL this yields nothing.
    snapshots = None
    try:
        _, snaps = read_metrics_jsonl(path)
        if snaps:
            snapshots = snaps
    except (ValueError, KeyError):
        pass

    slos = _parse_slo_args(args.slo)
    verdicts = evaluate_slos(slos, fleet) if slos else ()
    write_dashboard(
        fleet,
        args.out,
        verdicts=verdicts,
        snapshots=snapshots,
        title=args.title or "repro-tape fleet report",
        subtitle=str(path),
    )
    logger.info("dashboard:         %s", args.out)
    if verdicts:
        print(format_verdicts(verdicts))
        return 0 if all(v.passed for v in verdicts) else 1
    return 0


def _format_feed_record(record: dict) -> str:
    """One human line per fleet/feed/metrics JSONL record."""
    kind = record.get("type", "?")
    if kind == "progress":
        return (
            f"[progress]    {record.get('point', '?')}  "
            f"completed={record.get('completed', '?')}  "
            f"t={record.get('t_s', 0.0):.0f}s"
        )
    if kind in ("point_start", "point_done"):
        tag = "start" if kind == "point_start" else "done "
        note = ""
        if kind == "point_done" and record.get("cached"):
            note = "  (cached)"
        return f"[point {tag}] {record.get('point', '?')}{note}"
    if kind == "point_snapshot":
        point = record.get("point", {})
        label = (
            f"{point.get('sweep', '?')}/{point.get('axis', '?')}="
            f"{point.get('value', '?')}"
            if point
            else "?"
        )
        counters = record.get("counters", {})
        return (
            f"[snapshot]    {label}  "
            f"completed={counters.get('requests.completed', 0):g}"
        )
    if kind == "fleet_meta":
        return f"[fleet]       snapshots={record.get('snapshots', '?')}"
    if kind == "meta":
        return f"[meta]        units={len(record.get('units', {}))} metrics"
    if kind == "snapshot":
        return (
            f"[t={record.get('t_s', 0.0):>8.0f}s] "
            f"counters={record.get('counters', {})}"
        )
    if kind == "registry_export":
        return (
            f"[export]      counters={len(record.get('counters', {}))} "
            f"digests={len(record.get('digests', {}))}"
        )
    import json

    return json.dumps(record)


def _cmd_metrics(args: argparse.Namespace) -> int:
    import json
    import time
    from pathlib import Path

    path = Path(args.input)
    if not path.exists():
        print(f"error: no such file: {path}", file=sys.stderr)
        return 2
    try:
        with path.open() as fh:
            buffered = ""
            while True:
                chunk = fh.readline()
                if chunk:
                    buffered += chunk
                    if not buffered.endswith("\n"):
                        continue  # partial line from a mid-write reader
                    line, buffered = buffered.strip(), ""
                    if line:
                        try:
                            print(_format_feed_record(json.loads(line)))
                        except json.JSONDecodeError:
                            logger.debug("skipping unparseable line: %r", line)
                    continue
                if not args.follow:
                    break
                time.sleep(args.interval)
    except KeyboardInterrupt:
        pass
    except BrokenPipeError:
        # Piped into `head` and the reader hung up: that's a normal way to
        # consume a stream, not an error.  Point stdout at devnull so the
        # interpreter's shutdown flush doesn't raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def _cmd_schemes(_args: argparse.Namespace) -> int:
    for name in available_schemes():
        print(name)
    return 0


def _cmd_workload(args: argparse.Namespace) -> int:
    settings = _settings(args)
    workload = generate_workload(
        settings.workload_params, seed=args.seed, zipf_alpha=args.alpha
    )
    print(repr(workload))
    print(f"total size:        {workload.total_size_mb / 1e6:.2f} TB")
    print(f"avg request size:  {workload.average_request_size_mb / 1e3:.1f} GB")
    print(f"max request size:  {workload.max_request_size_mb / 1e3:.1f} GB")
    if args.out:
        dump_workload(workload, args.out)
        print(f"trace written to {args.out}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .analysis import compare_paired
    from .experiments import paper_workload

    settings = _settings(args)
    workload = paper_workload(settings, alpha=args.alpha)
    spec = settings.spec()
    results = []
    for name in (args.scheme_a, args.scheme_b):
        session = SimulationSession(workload, spec, scheme=make_scheme(name))
        results.append(session.evaluate(num_samples=args.samples, seed=args.seed))
    comparison = compare_paired(results[0], results[1], metric=args.metric)
    print(comparison)
    print(
        f"{args.scheme_a} had the lower {args.metric} in "
        f"{comparison.frac_a_lower:.0%} of {args.samples} paired samples"
    )
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from pathlib import Path

    settings = _settings(args)
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    ids = args.only or sorted(ALL_EXPERIMENTS)
    index_lines = [
        "# Reproduction results",
        "",
        f"scale: {settings.scale}, samples: {settings.samples}, "
        f"workload seed: {settings.workload_seed}, eval seed: {settings.eval_seed}",
        "",
    ]
    for exp_id in ids:
        logger.info("[%s] running ...", exp_id)
        table = ALL_EXPERIMENTS[exp_id](settings)
        (out / f"{exp_id}.txt").write_text(table.format() + "\n")
        (out / f"{exp_id}.csv").write_text(table.to_csv())
        chart = chart_table(table)
        if chart:
            (out / f"{exp_id}.chart.txt").write_text(chart + "\n")
        index_lines.append(f"- **{table.experiment_id}** ({exp_id}): {table.title}")
        print(table.format())
        print()
    (out / "INDEX.md").write_text("\n".join(index_lines) + "\n")
    logger.info("results written to %s/", out)
    return 0


_COMMANDS = {
    "experiment": _cmd_experiment,
    "sweep": _cmd_sweep,
    "reproduce": _cmd_reproduce,
    "run": _cmd_run,
    "open": _cmd_open,
    "chaos": _cmd_chaos,
    "profile": _cmd_profile,
    "trace": _cmd_trace,
    "report": _cmd_report,
    "metrics": _cmd_metrics,
    "compare": _cmd_compare,
    "schemes": _cmd_schemes,
    "workload": _cmd_workload,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
