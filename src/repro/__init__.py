"""repro — reproduction of *Object Placement in Parallel Tape Storage
Systems* (Zhang, He, Du, Lu; ICPP 2006).

The package provides:

* :mod:`repro.placement` — the paper's **parallel batch placement** plus the
  two baselines it compares against (object-probability [11] and
  cluster-probability [20] placement);
* :mod:`repro.sim` — the multiple-tape-library discrete-event simulator and
  the response-time / effective-bandwidth metrics of Sec. 6;
* :mod:`repro.hardware` — drive/robot/library models with the paper's
  Table-1 (IBM LTO-3 / StorageTek L80) constants;
* :mod:`repro.workload` — the Sec.-6 synthetic workload generator;
* :mod:`repro.des` — the underlying SimPy-like event kernel;
* :mod:`repro.experiments` — drivers that regenerate every figure.

Quickstart::

    from repro import (
        SimulationSession, ParallelBatchPlacement, generate_workload,
    )
    from repro.hardware import SystemSpec

    workload = generate_workload(seed=1)
    session = SimulationSession(workload, SystemSpec.table1(),
                                scheme=ParallelBatchPlacement(m=4))
    result = session.evaluate(num_samples=200)
    print(f"effective bandwidth: {result.avg_bandwidth_mb_s:.0f} MB/s")
"""

from .analysis import PairedComparison, bootstrap_ci, compare_paired, metric_ci
from .catalog import LocationIndex, ObjectCatalog, Request, RequestSet, StorageObject
from .model import CostModel, RequestEstimate, SearchResult, optimize_placement
from .hardware import (
    DriveId,
    DriveSpec,
    LibrarySpec,
    ObjectExtent,
    Robot,
    SystemSpec,
    Tape,
    TapeDrive,
    TapeId,
    TapeLibrary,
    TapeSpec,
    TapeSystem,
)
from .placement import (
    ClusterProbabilityPlacement,
    ObjectProbabilityPlacement,
    ParallelBatchPlacement,
    PlacementError,
    PlacementResult,
    PlacementScheme,
    available_schemes,
    make_scheme,
    register_scheme,
)
from .sim import (
    EvaluationResult,
    OpenSystem,
    OpenSystemResult,
    RequestMetrics,
    SimulationSession,
    evaluate_scheme,
    simulate_open_system,
    simulate_request,
)
from .workload import (
    Workload,
    WorkloadGenerator,
    WorkloadParams,
    dump_workload,
    generate_workload,
    load_workload,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # analysis
    "bootstrap_ci",
    "metric_ci",
    "compare_paired",
    "PairedComparison",
    # model
    "CostModel",
    "RequestEstimate",
    "SearchResult",
    "optimize_placement",
    # catalog
    "StorageObject",
    "ObjectCatalog",
    "Request",
    "RequestSet",
    "LocationIndex",
    # hardware
    "TapeSpec",
    "DriveSpec",
    "LibrarySpec",
    "SystemSpec",
    "TapeId",
    "DriveId",
    "ObjectExtent",
    "Tape",
    "TapeDrive",
    "Robot",
    "TapeLibrary",
    "TapeSystem",
    # placement
    "PlacementScheme",
    "PlacementResult",
    "PlacementError",
    "ParallelBatchPlacement",
    "ObjectProbabilityPlacement",
    "ClusterProbabilityPlacement",
    "available_schemes",
    "make_scheme",
    "register_scheme",
    # sim
    "SimulationSession",
    "evaluate_scheme",
    "simulate_request",
    "OpenSystem",
    "OpenSystemResult",
    "simulate_open_system",
    "RequestMetrics",
    "EvaluationResult",
    # workload
    "Workload",
    "WorkloadParams",
    "WorkloadGenerator",
    "generate_workload",
    "dump_workload",
    "load_workload",
]
