"""Exporters: Chrome/Perfetto ``trace_event`` JSON and metrics JSONL.

:func:`to_chrome_trace` turns a causal span tree
(:class:`~repro.des.Trace`) into the Trace Event Format that both
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* **hardware process** — one track (thread) per drive and per robot arm;
  switch stages, seeks and transfers nest by time containment exactly as
  they nested causally, because a drive executes one request stage at a
  time;
* **requests process** — one track per request id carrying the request
  root span and its scheduling stages (queue wait, tape jobs, dispatch
  waits), so sojourn composition is visible even while the hardware
  tracks interleave many requests.

Every event's ``args`` carries the span's ``span``/``parent``/``request``
ids and its exact ``start_s``/``end_s`` in simulated seconds, so
:func:`spans_from_chrome_trace` reconstructs the tree losslessly — the
round-trip the telemetry tests rely on.  Timestamps are microseconds (the
format's unit); zero-duration spans (e.g. ``drive_failure``) become
instant events.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from ..des.monitor import Span

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "spans_from_chrome_trace",
    "validate_chrome_trace",
    "write_metrics_jsonl",
    "read_metrics_jsonl",
]

#: Span names that occupy the library's robot arm (not just the drive).
_ROBOT_SPAN_NAMES = frozenset({"robot_exchange", "robot_fetch"})

_HARDWARE_PID = 1
_REQUESTS_PID = 2

#: args keys reserved for causality; everything else round-trips as attrs.
_RESERVED_ARGS = frozenset({"span", "parent", "request", "start_s", "end_s"})


def _robot_track(drive_name: str) -> str:
    """``"L0.D3"`` → ``"L0.robot"`` (the arm the drive's library owns)."""
    return drive_name.split(".", 1)[0] + ".robot"


def _track_for(span: Span) -> "tuple[int, str]":
    """(pid, track name) for one span."""
    drive = span.attrs.get("drive")
    if drive is not None:
        if span.name in _ROBOT_SPAN_NAMES:
            return _HARDWARE_PID, _robot_track(str(drive))
        return _HARDWARE_PID, str(drive)
    if span.request_id is not None:
        return _REQUESTS_PID, f"request {span.request_id}"
    return _REQUESTS_PID, "untracked"


def to_chrome_trace(spans: Iterable[Span], label: str = "repro-tape") -> Dict[str, Any]:
    """Render spans as a Chrome/Perfetto ``trace_event`` document."""
    events: List[Dict[str, Any]] = []
    tids: Dict[tuple, int] = {}

    def tid_for(pid: int, track: str) -> int:
        key = (pid, track)
        if key not in tids:
            tids[key] = len(tids) + 1
            events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tids[key],
                    "args": {"name": track},
                }
            )
        return tids[key]

    for pid, name in ((_HARDWARE_PID, "hardware"), (_REQUESTS_PID, "requests")):
        events.append(
            {"ph": "M", "name": "process_name", "pid": pid, "args": {"name": name}}
        )

    for span in spans:
        pid, track = _track_for(span)
        args: Dict[str, Any] = {
            "span": span.span_id,
            "parent": span.parent_id,
            "request": span.request_id,
            "start_s": span.start,
            "end_s": span.end,
        }
        args.update(span.attrs)
        event: Dict[str, Any] = {
            "name": span.name,
            "cat": "sim",
            "pid": pid,
            "tid": tid_for(pid, track),
            "ts": span.start * 1e6,
            "args": args,
        }
        if span.end > span.start:
            event["ph"] = "X"
            event["dur"] = (span.end - span.start) * 1e6
        else:
            event["ph"] = "i"
            event["s"] = "t"  # thread-scoped instant
        events.append(event)

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": label, "clock": "simulated seconds"},
    }


def write_chrome_trace(spans: Iterable[Span], path, label: str = "repro-tape") -> Dict[str, Any]:
    """Write the trace document to ``path``; returns the document."""
    doc = to_chrome_trace(spans, label=label)
    with open(path, "w") as fh:
        json.dump(doc, fh)
    return doc


def spans_from_chrome_trace(doc: Dict[str, Any]) -> List[Span]:
    """Rebuild the span list from an exported document (lossless)."""
    spans: List[Span] = []
    for event in doc.get("traceEvents", []):
        if event.get("ph") not in ("X", "i"):
            continue
        args = event.get("args", {})
        if "span" not in args:
            continue
        attrs = {k: v for k, v in args.items() if k not in _RESERVED_ARGS}
        spans.append(
            Span(
                name=event["name"],
                start=args["start_s"],
                end=args["end_s"],
                attrs=attrs,
                span_id=args["span"],
                parent_id=args.get("parent"),
                request_id=args.get("request"),
            )
        )
    spans.sort(key=lambda s: (s.start, s.span_id))
    return spans


def validate_chrome_trace(doc: Dict[str, Any]) -> List[str]:
    """Schema/consistency check for an exported trace; returns problems.

    An empty list means the document is well-formed: every duration event
    has non-negative ``ts``/``dur``, every span's ``parent`` id exists,
    every request has a ``request`` root span, and every drive referenced
    by a span has its own named track.
    """
    problems: List[str] = []
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["document has no traceEvents list"]

    span_events = [e for e in events if e.get("ph") in ("X", "i") and "span" in e.get("args", {})]
    thread_names = {
        e["args"]["name"]
        for e in events
        if e.get("ph") == "M" and e.get("name") == "thread_name"
    }
    ids = {e["args"]["span"] for e in span_events}

    requests_seen = set()
    drives_seen = set()
    for event in span_events:
        name = event.get("name", "<unnamed>")
        args = event["args"]
        if "tid" not in event or "pid" not in event:
            problems.append(f"{name} (span {args['span']}): missing pid/tid")
        if event.get("ts", -1) < 0:
            problems.append(f"{name} (span {args['span']}): negative ts {event.get('ts')}")
        if event.get("ph") == "X" and event.get("dur", -1) < 0:
            problems.append(f"{name} (span {args['span']}): negative dur {event.get('dur')}")
        if args["end_s"] < args["start_s"]:
            problems.append(
                f"{name} (span {args['span']}): end_s {args['end_s']} < start_s {args['start_s']}"
            )
        parent = args.get("parent")
        if parent is not None and parent not in ids:
            problems.append(f"{name} (span {args['span']}): parent {parent} does not exist")
        if args.get("request") is not None:
            requests_seen.add(args["request"])
        if args.get("drive") is not None:
            drives_seen.add(str(args["drive"]))

    roots = {
        e["args"]["request"]
        for e in span_events
        if e.get("name") == "request" and e["args"].get("parent") is None
    }
    for request_id in sorted(requests_seen - roots):
        problems.append(f"request {request_id} has spans but no 'request' root span")

    for drive in sorted(drives_seen - thread_names):
        problems.append(f"drive {drive} has spans but no named track")

    return problems


def write_metrics_jsonl(registry, path) -> int:
    """Dump a registry's snapshot series as JSONL; returns lines written.

    The first line is a ``meta`` record carrying instrument units; each
    following line is one snapshot (``{"type": "snapshot", "t_s": …}``).
    The final line is a ``registry_export`` record — the registry's full
    mergeable state (gauge integrals, histogram buckets, complete digest
    bins), so re-importing the file into a
    :class:`~repro.obs.fleet.FleetRegistry` reproduces the run's fleet
    aggregates exactly, not just its sampled time series.
    """
    from .fleet import export_registry

    lines = [json.dumps({"type": "meta", "units": registry.units()})]
    for snap in registry.snapshots:
        lines.append(json.dumps({"type": "snapshot", **snap}))
    lines.append(json.dumps({"type": "registry_export", **export_registry(registry)}))
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    return len(lines)


def read_metrics_jsonl(path) -> "tuple[Dict[str, str], List[Dict[str, Any]]]":
    """Load a metrics dump back as ``(units, snapshots)``."""
    units: Dict[str, str] = {}
    snapshots: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "meta":
                units = record.get("units", {})
            elif record.get("type") == "snapshot":
                snapshots.append(record)
    return units, snapshots
