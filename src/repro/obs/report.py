"""Critical-path stage attribution and text flame reports.

The paper decomposes response time into ``T_switch + T_seek +
T_transfer`` (Sec. 4); this module recovers that decomposition — and a
finer one — from the causal span tree, so a policy comparison can say
*where* each request's sojourn went instead of only how long it was.

For every request we locate its **critical drive** (the drive whose last
stage finishes the request) and attribute the sojourn to the stages on
that path: scheduling waits (``queue_wait``/``dispatch_wait``), the
switch components (rewind, robot wait, unload, robot exchange/fetch,
load), ``seek``, ``disk_wait`` and ``transfer``.  Whatever the critical
drive's stages don't cover — time its work sat behind other in-flight
jobs — lands in ``blocked``.  By construction::

    seek == RequestMetrics.seek_s        (critical drive's seeks)
    transfer == RequestMetrics.transfer_s
    switch == RequestMetrics.switch_s == everything else

so the report's aggregates agree with ``EvaluationResult.summary()``.

Aborted spans (stages cut short by a drive failure; the work restarted
elsewhere) are excluded from attribution but kept in the flame view.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from ..des.monitor import Span

__all__ = [
    "RequestAttribution",
    "StageReport",
    "attribute_requests",
    "render_request_flame",
]

#: Stage (leaf-span) names in report order.
STAGE_ORDER = [
    "queue_wait",
    "dispatch_wait",
    "rewind",
    "robot_wait",
    "unload",
    "robot_exchange",
    "robot_fetch",
    "load",
    "fault_transient",
    "seek",
    "disk_wait",
    "transfer",
]

#: Stages the paper folds into T_switch (everything but seek/transfer).
SWITCH_STAGES = frozenset(STAGE_ORDER) - {"seek", "transfer"}


@dataclass
class RequestAttribution:
    """One request's sojourn, attributed to its critical-path stages."""

    request_id: int
    response_s: float
    critical_drive: Optional[str]
    #: Stage name -> seconds spent in that stage on the critical path.
    stages: Dict[str, float] = field(default_factory=dict)
    #: Critical-path time not covered by any instrumented stage (waiting
    #: behind other in-flight work on the shared hardware).
    blocked_s: float = 0.0

    @property
    def seek_s(self) -> float:
        return self.stages.get("seek", 0.0)

    @property
    def transfer_s(self) -> float:
        return self.stages.get("transfer", 0.0)

    @property
    def switch_s(self) -> float:
        """Everything that is neither seek nor transfer (paper's T_switch)."""
        return self.response_s - self.seek_s - self.transfer_s

    @property
    def top_stage(self) -> str:
        """The longest single attribution bucket (including ``blocked``)."""
        candidates = dict(self.stages)
        candidates["blocked"] = self.blocked_s
        return max(candidates, key=lambda k: candidates[k])


@dataclass
class StageReport:
    """Aggregated stage attribution over a request stream."""

    requests: List[RequestAttribution] = field(default_factory=list)
    label: str = ""

    def __len__(self) -> int:
        return len(self.requests)

    def totals(self) -> Dict[str, float]:
        """Summed seconds per stage (plus ``blocked`` and ``response``)."""
        out: Dict[str, float] = {name: 0.0 for name in STAGE_ORDER}
        out["blocked"] = 0.0
        out["response"] = 0.0
        for req in self.requests:
            for name, seconds in req.stages.items():
                out[name] = out.get(name, 0.0) + seconds
            out["blocked"] += req.blocked_s
            out["response"] += req.response_s
        return out

    def means(self) -> Dict[str, float]:
        n = len(self.requests)
        if n == 0:
            return {}
        return {name: total / n for name, total in self.totals().items()}

    # -- the paper's decomposition, for agreement checks -----------------------
    @property
    def avg_response_s(self) -> float:
        return self._avg("response_s")

    @property
    def avg_seek_s(self) -> float:
        return self._avg("seek_s")

    @property
    def avg_transfer_s(self) -> float:
        return self._avg("transfer_s")

    @property
    def avg_switch_s(self) -> float:
        return self._avg("switch_s")

    def _avg(self, attr: str) -> float:
        if not self.requests:
            return float("nan")
        return sum(getattr(r, attr) for r in self.requests) / len(self.requests)

    def top_stage_counts(self) -> Dict[str, int]:
        """How many requests were dominated by each stage."""
        counts: Dict[str, int] = {}
        for req in self.requests:
            counts[req.top_stage] = counts.get(req.top_stage, 0) + 1
        return dict(sorted(counts.items(), key=lambda kv: -kv[1]))

    def format(self, bar_width: int = 30) -> str:
        """Text table: per-stage totals, share of response, dominance."""
        totals = self.totals()
        response = totals["response"] or float("nan")
        dominant = self.top_stage_counts()
        title = f"Stage attribution ({len(self.requests)} requests"
        title += f", {self.label})" if self.label else ")"
        lines = [
            title,
            f"{'stage':<16} {'total (s)':>12} {'mean (s)':>10} {'% resp':>7} "
            f"{'top-blocker':>11}  profile",
        ]
        n = max(len(self.requests), 1)
        rows = [name for name in STAGE_ORDER if totals.get(name, 0.0) > 0.0] + ["blocked"]
        for name in rows:
            total = totals.get(name, 0.0)
            share = total / response if response else float("nan")
            bar = "#" * int(round(share * bar_width))
            lines.append(
                f"{name:<16} {total:>12.1f} {total / n:>10.1f} {share:>6.1%} "
                f"{dominant.get(name, 0):>11d}  {bar}"
            )
        lines.append(
            f"{'response':<16} {totals['response']:>12.1f} "
            f"{totals['response'] / n:>10.1f} {1:>6.0%}"
        )
        lines.append(
            f"(switch = response - seek - transfer = "
            f"{self.avg_switch_s:.1f} s mean; blocked = critical-path time "
            f"behind other in-flight work)"
        )
        return "\n".join(lines)


def _group_by_request(spans: Iterable[Span]) -> Dict[int, List[Span]]:
    grouped: Dict[int, List[Span]] = {}
    for span in spans:
        if span.request_id is not None:
            grouped.setdefault(span.request_id, []).append(span)
    return grouped


def _leaves(spans: Sequence[Span]) -> List[Span]:
    parents = {s.parent_id for s in spans if s.parent_id is not None}
    return [s for s in spans if s.span_id not in parents]


def attribute_requests(spans: Iterable[Span], label: str = "") -> StageReport:
    """Build a :class:`StageReport` from a span tree (live or re-imported).

    Requests without a ``request`` root span (e.g. traced with tracing
    enabled mid-run) are skipped rather than mis-attributed.
    """
    report = StageReport(label=label)
    for request_id, request_spans in sorted(_group_by_request(spans).items()):
        root = next(
            (s for s in request_spans if s.name == "request" and s.parent_id is None),
            None,
        )
        if root is None:
            continue
        live = [s for s in request_spans if not s.aborted]
        leaves = _leaves(live)

        drive_leaves = [s for s in leaves if s.attrs.get("drive") is not None]
        critical_drive: Optional[str] = None
        if drive_leaves:
            critical_drive = str(max(drive_leaves, key=lambda s: s.end).attrs["drive"])

        stages: Dict[str, float] = {}
        for leaf in leaves:
            drive = leaf.attrs.get("drive")
            if drive is None:
                # Request-level scheduling waits gate every drive, hence the
                # critical path too.
                if leaf.name in SWITCH_STAGES:
                    stages[leaf.name] = stages.get(leaf.name, 0.0) + leaf.duration
            elif str(drive) == critical_drive:
                stages[leaf.name] = stages.get(leaf.name, 0.0) + leaf.duration

        attribution = RequestAttribution(
            request_id=request_id,
            response_s=root.duration,
            critical_drive=critical_drive,
            stages=stages,
        )
        covered = sum(s for name, s in stages.items() if name in SWITCH_STAGES)
        attribution.blocked_s = max(0.0, attribution.switch_s - covered)
        report.requests.append(attribution)
    return report


def render_request_flame(
    spans: Iterable[Span], request_id: int, width: int = 48
) -> str:
    """Indented text flame of one request's span tree.

    Each line shows the stage, its duration, and a bar positioned and
    scaled against the request's response time — a causality-faithful
    poor-man's flame chart for terminals and test failures.
    """
    request_spans = [s for s in spans if s.request_id == request_id]
    root = next(
        (s for s in request_spans if s.name == "request" and s.parent_id is None),
        None,
    )
    if root is None:
        return f"(no request root span for request {request_id})"
    span_children: Dict[int, List[Span]] = {}
    for span in request_spans:
        if span.parent_id is not None:
            span_children.setdefault(span.parent_id, []).append(span)
    for children in span_children.values():
        children.sort(key=lambda s: (s.start, s.span_id))

    total = root.duration or 1.0
    lines = [f"request {request_id}: {root.duration:.1f} s sojourn"]

    def emit(span: Span, depth: int) -> None:
        offset = int((span.start - root.start) / total * width)
        length = max(1, int(span.duration / total * width))
        bar = " " * offset + "█" * min(length, width - offset)
        label = span.name + (" (aborted)" if span.aborted else "")
        detail = ", ".join(
            str(span.attrs[k]) for k in ("drive", "tape", "object") if k in span.attrs
        )
        lines.append(
            f"  {'  ' * depth}{label:<{max(2, 24 - 2 * depth)}} "
            f"{span.duration:>9.1f}s |{bar:<{width}}|"
            + (f"  {detail}" if detail else "")
        )
        for child in span_children.get(span.span_id, []):
            emit(child, depth + 1)

    for child in span_children.get(root.span_id, []):
        emit(child, 0)
    return "\n".join(lines)
