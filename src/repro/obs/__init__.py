"""End-to-end simulation telemetry (``repro.obs``).

Three layers over the DES core's causal span trees
(:class:`~repro.des.Trace` / :class:`~repro.des.Span`):

* :mod:`repro.obs.registry` — counters, gauges and time-weighted
  histograms with periodic snapshot sampling on the simulation clock;
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON and
  metrics JSONL exporters plus a schema validator and lossless importer;
* :mod:`repro.obs.report` — critical-path stage attribution and text
  flame rendering, agreeing with the paper's
  ``T_switch + T_seek + T_transfer`` decomposition.

See ``docs/observability.md`` for the span taxonomy and metric names.
"""

from .export import (
    read_metrics_jsonl,
    spans_from_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)
from .registry import Counter, Gauge, MetricsRegistry, TimeWeightedHistogram
from .report import (
    STAGE_ORDER,
    RequestAttribution,
    StageReport,
    attribute_requests,
    render_request_flame,
)

__all__ = [
    "Counter",
    "Gauge",
    "TimeWeightedHistogram",
    "MetricsRegistry",
    "to_chrome_trace",
    "write_chrome_trace",
    "spans_from_chrome_trace",
    "validate_chrome_trace",
    "write_metrics_jsonl",
    "read_metrics_jsonl",
    "RequestAttribution",
    "StageReport",
    "attribute_requests",
    "render_request_flame",
    "STAGE_ORDER",
]
