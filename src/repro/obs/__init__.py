"""End-to-end simulation telemetry (``repro.obs``).

Layers over the DES core's causal span trees
(:class:`~repro.des.Trace` / :class:`~repro.des.Span`):

* :mod:`repro.obs.registry` — counters, gauges, time-weighted histograms
  and mergeable quantile digests with periodic snapshot sampling on the
  simulation clock;
* :mod:`repro.obs.digest` — the bounded-memory, exactly-mergeable
  DDSketch-style quantile digest behind fleet percentiles;
* :mod:`repro.obs.fleet` — cross-process snapshot export/merge, the
  order-insensitive :class:`FleetRegistry`, fleet JSONL persistence, and
  the live :class:`FleetFeed` sweep stream;
* :mod:`repro.obs.slo` — declarative service-level objectives
  (``p99_sojourn <= 120``) evaluated against fleet telemetry;
* :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON and
  metrics JSONL exporters plus a schema validator and lossless importer;
* :mod:`repro.obs.report` — critical-path stage attribution and text
  flame rendering, agreeing with the paper's
  ``T_switch + T_seek + T_transfer`` decomposition;
* :mod:`repro.obs.dashboard` — the self-contained HTML sweep dashboard
  behind ``repro-tape report``.

See ``docs/observability.md`` for the span taxonomy, metric names, merge
semantics, and the SLO grammar.
"""

from .dashboard import render_dashboard, write_dashboard
from .digest import QuantileDigest
from .export import (
    read_metrics_jsonl,
    spans_from_chrome_trace,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_jsonl,
)
from .fleet import (
    FleetFeed,
    FleetRegistry,
    export_registry,
    read_fleet_jsonl,
    snapshot_of_result,
    write_fleet_jsonl,
)
from .registry import Counter, Gauge, MetricsRegistry, TimeWeightedHistogram
from .report import (
    STAGE_ORDER,
    RequestAttribution,
    StageReport,
    attribute_requests,
    render_request_flame,
)
from .slo import (
    DEFAULT_CHAOS_SLOS,
    SLO,
    SLOVerdict,
    evaluate_slos,
    format_verdicts,
    parse_slo,
    parse_slos,
    slos_pass,
)

__all__ = [
    "Counter",
    "Gauge",
    "TimeWeightedHistogram",
    "QuantileDigest",
    "MetricsRegistry",
    "FleetRegistry",
    "FleetFeed",
    "export_registry",
    "snapshot_of_result",
    "write_fleet_jsonl",
    "read_fleet_jsonl",
    "SLO",
    "SLOVerdict",
    "parse_slo",
    "parse_slos",
    "evaluate_slos",
    "format_verdicts",
    "slos_pass",
    "DEFAULT_CHAOS_SLOS",
    "render_dashboard",
    "write_dashboard",
    "to_chrome_trace",
    "write_chrome_trace",
    "spans_from_chrome_trace",
    "validate_chrome_trace",
    "write_metrics_jsonl",
    "read_metrics_jsonl",
    "RequestAttribution",
    "StageReport",
    "attribute_requests",
    "render_request_flame",
    "STAGE_ORDER",
]
