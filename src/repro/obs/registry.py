"""Metrics registry: counters, gauges, and time-weighted histograms.

The open-system engine (:mod:`repro.sim.opensystem`) publishes live
instrument values here — drive/robot occupancy and wait-queue depth (via
:class:`~repro.des.ResourceUsageMonitor` hooks), in-flight requests,
dispatcher queue depth, and switch counts — and a periodic sampler process
on the shared simulation clock turns them into a time series of
*snapshots* that :func:`repro.obs.export.write_metrics_jsonl` dumps one
JSON object per line.

All instruments are clocked in **simulated** seconds: gauges and
histograms integrate value·dt over simulation time, so their means answer
"what fraction of the horizon was the robot busy", not anything about
wall time.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence

from .digest import DEFAULT_REL_ERR, QuantileDigest

__all__ = [
    "Counter",
    "Gauge",
    "TimeWeightedHistogram",
    "QuantileDigest",
    "MetricsRegistry",
]


class Counter:
    """A monotonically increasing count (events, grants, switches…)."""

    __slots__ = ("name", "unit", "value")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc {amount})")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value:g}{self.unit and ' ' + self.unit}>"


class Gauge:
    """A sampled level (queue depth, in-flight requests, slots in use).

    Tracks the current value plus its extremes and the time integral
    ∫ value·dt, so :meth:`time_weighted_mean` is exact regardless of the
    snapshot period.
    """

    __slots__ = ("name", "unit", "value", "min", "max", "_integral", "_since", "_t0")

    def __init__(self, name: str, unit: str = "") -> None:
        self.name = name
        self.unit = unit
        self.value = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._integral = 0.0
        self._since: Optional[float] = None
        self._t0: Optional[float] = None

    def _settle(self, now: float) -> None:
        if self._since is not None:
            self._integral += self.value * (now - self._since)
        else:
            self._t0 = now
        self._since = now

    def set(self, value: float, now: float) -> None:
        self._settle(now)
        self.value = float(value)
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def add(self, delta: float, now: float) -> None:
        self.set(self.value + delta, now)

    def time_weighted_mean(self, now: Optional[float] = None) -> float:
        """Mean value over [first observation, ``now``] (NaN if never set)."""
        if self._t0 is None:
            return float("nan")
        end = self._since if now is None else max(now, self._since)
        elapsed = end - self._t0
        if elapsed <= 0:
            return self.value
        integral = self._integral + self.value * (end - self._since)
        return integral / elapsed

    def __repr__(self) -> str:
        return f"<Gauge {self.name}={self.value:g}{self.unit and ' ' + self.unit}>"


class TimeWeightedHistogram:
    """Distribution of a level over *time*: seconds spent in each bucket.

    ``observe(value, now)`` marks a transition: the time since the previous
    observation is credited to the previous value's bucket.  Bucket ``i``
    covers ``(bounds[i-1], bounds[i]]`` with open-ended first and last
    buckets, matching how one reads "the queue was ≤ 2 deep for 80 % of
    the run".
    """

    __slots__ = ("name", "unit", "bounds", "bucket_s", "_value", "_since")

    def __init__(self, name: str, bounds: Sequence[float], unit: str = "") -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = list(bounds)
        if ordered != sorted(ordered):
            raise ValueError(f"histogram bounds must be sorted, got {bounds}")
        self.name = name
        self.unit = unit
        self.bounds = ordered
        self.bucket_s = [0.0] * (len(ordered) + 1)
        self._value: Optional[float] = None
        self._since: Optional[float] = None

    def _settle(self, now: float) -> None:
        if self._value is not None:
            # bisect_left keeps buckets right-closed: value == bound lands
            # in (prev, bound], so fraction_at_most(bound) counts it.
            self.bucket_s[bisect_left(self.bounds, self._value)] += now - self._since
        self._since = now

    def observe(self, value: float, now: float) -> None:
        self._settle(now)
        self._value = float(value)

    @property
    def total_s(self) -> float:
        return sum(self.bucket_s)

    def fraction_at_most(self, bound: float, now: Optional[float] = None) -> float:
        """Share of observed time the value was ≤ ``bound`` (a bucket edge)."""
        if bound not in self.bounds:
            raise ValueError(f"{bound} is not a bucket bound of {self.bounds}")
        bucket_s = list(self.bucket_s)
        if now is not None and self._value is not None and now > self._since:
            bucket_s[bisect_left(self.bounds, self._value)] += now - self._since
        total = sum(bucket_s)
        if total <= 0:
            return float("nan")
        upto = self.bounds.index(bound) + 1
        return sum(bucket_s[:upto]) / total

    def __repr__(self) -> str:
        return f"<TimeWeightedHistogram {self.name} bounds={self.bounds}>"


class MetricsRegistry:
    """Named instruments plus a snapshot time series.

    Instruments are get-or-create: ``registry.counter("switches")`` returns
    the same object every call, so producers don't coordinate creation.
    :meth:`snapshot` freezes every instrument's current reading;
    :meth:`install_sampler` runs snapshots periodically on a DES clock,
    parking itself when the event queue drains so it never keeps the
    simulation alive.
    """

    __slots__ = ("counters", "gauges", "histograms", "digests", "snapshots")

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, TimeWeightedHistogram] = {}
        self.digests: Dict[str, QuantileDigest] = {}
        self.snapshots: List[Dict] = []

    # -- instrument factories ------------------------------------------------
    def counter(self, name: str, unit: str = "") -> Counter:
        return self._get_or_create(self.counters, Counter, name, unit)

    def gauge(self, name: str, unit: str = "") -> Gauge:
        return self._get_or_create(self.gauges, Gauge, name, unit)

    def histogram(
        self, name: str, bounds: Sequence[float], unit: str = ""
    ) -> TimeWeightedHistogram:
        existing = self.histograms.get(name)
        if existing is not None:
            if existing.bounds != list(bounds):
                raise ValueError(
                    f"histogram {name!r} already exists with bounds {existing.bounds}"
                )
            return existing
        hist = TimeWeightedHistogram(name, bounds, unit)
        self.histograms[name] = hist
        return hist

    def digest(
        self, name: str, rel_err: float = DEFAULT_REL_ERR, unit: str = ""
    ) -> QuantileDigest:
        """Get-or-create a mergeable quantile digest (sample-weighted).

        Unlike the time-weighted instruments above, a digest sketches a
        *per-event* value distribution (sojourn, seek, switch latencies);
        its merge across processes is lossless, so fleet percentiles
        compose correctly (see :mod:`repro.obs.digest`).
        """
        existing = self.digests.get(name)
        if existing is not None:
            if existing.rel_err != rel_err:
                raise ValueError(
                    f"digest {name!r} already exists with rel_err "
                    f"{existing.rel_err}, not {rel_err}"
                )
            return existing
        digest = QuantileDigest(name, rel_err=rel_err, unit=unit)
        self.digests[name] = digest
        return digest

    @staticmethod
    def _get_or_create(table, factory, name: str, unit: str):
        existing = table.get(name)
        if existing is not None:
            if unit and existing.unit and existing.unit != unit:
                raise ValueError(
                    f"instrument {name!r} already registered with unit "
                    f"{existing.unit!r}, not {unit!r}"
                )
            return existing
        instrument = factory(name, unit)
        table[name] = instrument
        return instrument

    # -- snapshots -------------------------------------------------------------
    def snapshot(self, now: float) -> Dict:
        """Freeze every instrument's reading at simulation time ``now``."""
        snap = {
            "t_s": float(now),
            "counters": {name: c.value for name, c in sorted(self.counters.items())},
            "gauges": {name: g.value for name, g in sorted(self.gauges.items())},
            "histograms": {
                name: {"bounds": h.bounds, "bucket_s": list(h.bucket_s)}
                for name, h in sorted(self.histograms.items())
            },
        }
        if self.digests:
            snap["digests"] = {
                name: d.summary() for name, d in sorted(self.digests.items())
            }
        self.snapshots.append(snap)
        return snap

    def install_sampler(self, env, period_s: float):
        """Snapshot every ``period_s`` simulated seconds until ``env`` drains.

        The sampler checks the event queue after each snapshot and stops
        re-arming once it is the only thing scheduled, so a run's drain
        condition (``env.run()`` until empty) is unaffected.
        """
        if period_s <= 0:
            raise ValueError(f"sample period must be positive, got {period_s}")

        def _sampler():
            while True:
                self.snapshot(env.now)
                if len(env) == 0:
                    return
                yield env.timeout(period_s)

        return env.process(_sampler())

    def units(self) -> Dict[str, str]:
        """Instrument name -> unit, for exporters and docs."""
        out = {}
        for table in (self.counters, self.gauges, self.histograms, self.digests):
            for name, instrument in table.items():
                out[name] = instrument.unit
        return out

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry {len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, {len(self.histograms)} histograms, "
            f"{len(self.digests)} digests, {len(self.snapshots)} snapshots>"
        )
