"""Fleet telemetry: cross-process registry snapshots, merge, and streaming.

A multi-worker sweep (:mod:`repro.experiments.parallel`) evaluates points
in child processes, and every counter, gauge, histogram, and latency digest
recorded there dies with the child — unless it travels.  This module is the
transport and the algebra:

* :func:`export_registry` freezes a :class:`~repro.obs.MetricsRegistry`
  into a compact, JSON-able, *mergeable* snapshot (full digest state, gauge
  time-integrals, histogram bucket seconds — not just last values);
* :func:`snapshot_of_result` derives such a snapshot deterministically from
  any point result object (open-system results carry a live registry;
  closed-loop results synthesize latency digests from their samples), so
  fleet aggregates are identical whether a point was computed serially, in
  a worker, or replayed from the on-disk cache;
* :class:`FleetRegistry` folds snapshots in any order into fleet-level
  counters (summed), gauges (time-integral-weighted), histograms
  (bucket-wise sums), and digests (lossless sketch merge) — percentiles
  compose correctly instead of averaging averages;
* :func:`write_fleet_jsonl` / :func:`read_fleet_jsonl` round-trip the
  per-point snapshot stream so a finished sweep's telemetry can be merged,
  re-merged, and rendered (``repro-tape report``) long after the run;
* :class:`FleetFeed` is a ``multiprocessing``-queue feed workers emit
  progress records into mid-point, so a 10-minute point streams instead of
  appearing all at once (``repro-tape metrics --follow``).

Merge semantics (the invariant every consumer relies on): folding is
associative and commutative up to float rounding, and **exactly**
order-insensitive for integer-valued counters and digest bucket counts —
proven by the property tests in ``tests/obs/test_fleet.py``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional

from .digest import QuantileDigest
from .registry import MetricsRegistry

__all__ = [
    "export_registry",
    "snapshot_of_result",
    "FleetRegistry",
    "FleetFeed",
    "write_fleet_jsonl",
    "read_fleet_jsonl",
    "LATENCY_DIGESTS",
]

#: Per-request latency digests recorded by the open system and synthesized
#: for closed-loop results: name -> RequestMetrics attribute.
LATENCY_DIGESTS = {
    "latency.sojourn_s": "response_s",
    "latency.seek_s": "seek_s",
    "latency.switch_s": "switch_s",
    "latency.transfer_s": "transfer_s",
}


def export_registry(registry: MetricsRegistry) -> Dict[str, Any]:
    """Freeze a registry into a compact, mergeable, JSON-able snapshot.

    Gauges export their full time-integral state (not just the last value),
    histograms their bucket seconds, digests their complete bucket maps —
    everything a :class:`FleetRegistry` needs to merge losslessly.
    """
    gauges: Dict[str, Any] = {}
    for name, g in sorted(registry.gauges.items()):
        elapsed = 0.0
        if g._t0 is not None and g._since is not None:
            elapsed = g._since - g._t0
        gauges[name] = {
            "value": g.value,
            "min": g.min,
            "max": g.max,
            "integral": g._integral,
            "elapsed_s": elapsed,
        }
    return {
        "counters": {n: c.value for n, c in sorted(registry.counters.items())},
        "gauges": gauges,
        "histograms": {
            n: {"bounds": list(h.bounds), "bucket_s": list(h.bucket_s)}
            for n, h in sorted(registry.histograms.items())
        },
        "digests": {n: d.to_dict() for n, d in sorted(registry.digests.items())},
        "units": registry.units(),
    }


def snapshot_of_result(result: Any, point_meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """A mergeable snapshot derived deterministically from a point result.

    Open-system results (:class:`~repro.sim.OpenSystemResult`) export their
    embedded registry — live counters, gauges, and latency digests — plus
    availability bookkeeping from the fault layer.  Closed-loop
    (:class:`~repro.sim.EvaluationResult`) and FCFS results synthesize the
    same latency digests from their per-request samples, so every point
    kind contributes comparable sojourn/seek/switch sketches to the fleet.

    The snapshot is a pure function of the result (never of process state),
    which makes fleet aggregates independent of worker count, execution
    order, and cache hits — the property ``tests/experiments/test_parallel``
    pins.
    """
    registry = getattr(result, "registry", None)
    if registry is not None:
        snapshot = export_registry(registry)
    else:
        synthesized = MetricsRegistry()
        samples = getattr(result, "samples", None)
        if samples is not None:  # EvaluationResult (closed / incremental)
            for name, attr in LATENCY_DIGESTS.items():
                digest = synthesized.digest(name, unit="s")
                for metrics in samples:
                    # switch_s is derived (response - seek - transfer) and
                    # can round a hair below zero; digests are non-negative.
                    digest.record(max(0.0, getattr(metrics, attr)))
            synthesized.counter("requests.completed", unit="requests").inc(
                len(samples)
            )
        else:  # QueueingResult (fcfs): only sojourns are known
            records = getattr(result, "records", [])
            digest = synthesized.digest("latency.sojourn_s", unit="s")
            for record in records:
                digest.record(max(0.0, record.sojourn_s))
            synthesized.counter("requests.completed", unit="requests").inc(
                len(records)
            )
        snapshot = export_registry(synthesized)

    # Fault/availability surface: store the *mergeable* form (availability
    # weighted by horizon) so the fleet's availability is the time-weighted
    # mean across points, not a mean of ratios over unequal horizons.
    horizon = getattr(result, "horizon_s", None)
    if horizon is not None:
        counters = snapshot["counters"]
        counters["fleet.horizon_s"] = float(horizon)
        counters["fleet.availability_weighted_s"] = float(horizon) * float(
            getattr(result, "availability", 1.0)
        )
    if point_meta:
        snapshot["point"] = dict(point_meta)
    return snapshot


class FleetRegistry:
    """Order-insensitively merged view over many registry snapshots.

    ``fold`` accepts snapshots from :func:`export_registry` /
    :func:`snapshot_of_result`; aggregates are available immediately after
    each fold, so a sweep's ``on_result`` hook reads live fleet state while
    later points are still running.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        #: name -> {value (sum of levels), min, max, integral, elapsed_s}.
        self.gauges: Dict[str, Dict[str, float]] = {}
        self.histograms: Dict[str, Dict[str, Any]] = {}
        self.digests: Dict[str, QuantileDigest] = {}
        self.units: Dict[str, str] = {}
        #: Per-point metadata of folded snapshots, in fold order.
        self.points: List[Dict[str, Any]] = []
        #: Raw folded snapshots (kept for JSONL round-trips and re-merges).
        self.raw_snapshots: List[Dict[str, Any]] = []

    # -- merge ------------------------------------------------------------
    def fold(self, snapshot: Dict[str, Any]) -> "FleetRegistry":
        """Merge one snapshot into the fleet (commutative, associative)."""
        for name, value in snapshot.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0.0) + float(value)
        for name, g in snapshot.get("gauges", {}).items():
            fleet_g = self.gauges.get(name)
            if fleet_g is None:
                fleet_g = self.gauges[name] = {
                    "value": 0.0,
                    "min": None,
                    "max": None,
                    "integral": 0.0,
                    "elapsed_s": 0.0,
                }
            fleet_g["value"] += float(g.get("value", 0.0))
            for key, pick in (("min", min), ("max", max)):
                incoming = g.get(key)
                if incoming is not None:
                    current = fleet_g[key]
                    fleet_g[key] = (
                        incoming if current is None else pick(current, incoming)
                    )
            fleet_g["integral"] += float(g.get("integral", 0.0))
            fleet_g["elapsed_s"] += float(g.get("elapsed_s", 0.0))
        for name, h in snapshot.get("histograms", {}).items():
            fleet_h = self.histograms.get(name)
            if fleet_h is None:
                self.histograms[name] = {
                    "bounds": list(h["bounds"]),
                    "bucket_s": list(h["bucket_s"]),
                }
            else:
                if fleet_h["bounds"] != list(h["bounds"]):
                    raise ValueError(
                        f"histogram {name!r} bounds mismatch: "
                        f"{fleet_h['bounds']} vs {h['bounds']}"
                    )
                fleet_h["bucket_s"] = [
                    a + b for a, b in zip(fleet_h["bucket_s"], h["bucket_s"])
                ]
        for name, d in snapshot.get("digests", {}).items():
            incoming = QuantileDigest.from_dict(d)
            existing = self.digests.get(name)
            if existing is None:
                self.digests[name] = incoming
            else:
                existing.merge(incoming)
        self.units.update(snapshot.get("units", {}))
        if "point" in snapshot:
            self.points.append(dict(snapshot["point"]))
        self.raw_snapshots.append(snapshot)
        return self

    def merge(self, other: "FleetRegistry") -> "FleetRegistry":
        """Fold every snapshot of ``other`` into this fleet."""
        for snapshot in other.raw_snapshots:
            self.fold(snapshot)
        return self

    # -- views ------------------------------------------------------------
    def counter(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def quantile(self, name: str, q: float) -> float:
        """Fleet-level quantile of a digest (NaN when absent/empty)."""
        digest = self.digests.get(name)
        if digest is None:
            return float("nan")
        return digest.quantile(q)

    def gauge_mean(self, name: str) -> float:
        """Time-weighted mean of a merged gauge (NaN when absent)."""
        g = self.gauges.get(name)
        if g is None or g["elapsed_s"] <= 0:
            return float("nan")
        return g["integral"] / g["elapsed_s"]

    @property
    def availability(self) -> float:
        """Horizon-weighted mean availability across folded points (1.0
        when no point carried fault bookkeeping)."""
        horizon = self.counters.get("fleet.horizon_s", 0.0)
        if horizon <= 0:
            return 1.0
        return self.counters.get("fleet.availability_weighted_s", 0.0) / horizon

    @property
    def aborted_requests(self) -> float:
        return self.counters.get("requests.aborted", 0.0)

    @property
    def cache_hit_rate(self) -> float:
        """Fleet cache hits / lookups (NaN before any lookup)."""
        hits = self.counters.get("sweep.cache_hits", 0.0)
        misses = self.counters.get("sweep.cache_misses", 0.0)
        total = hits + misses
        return hits / total if total > 0 else float("nan")

    def aggregates(self) -> Dict[str, Any]:
        """Canonical fold-order-independent summary, for equality checks.

        Per-point metadata (which *is* order-sensitive) is excluded;
        everything else — counters, merged gauge books, histogram buckets,
        digest states — is returned in sorted-name order.
        """
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": {n: dict(g) for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: {"bounds": h["bounds"], "bucket_s": h["bucket_s"]}
                for n, h in sorted(self.histograms.items())
            },
            "digests": {n: d.to_dict() for n, d in sorted(self.digests.items())},
        }

    def summary(self) -> Dict[str, Any]:
        """Headline numbers for dashboards and logs."""
        out: Dict[str, Any] = {
            "points": len(self.points) or len(self.raw_snapshots),
            "requests_completed": self.counters.get("requests.completed", 0.0),
            "requests_aborted": self.aborted_requests,
            "availability": self.availability,
            "cache_hit_rate": self.cache_hit_rate,
        }
        for name in sorted(self.digests):
            out[name] = self.digests[name].summary()
        return out

    def __repr__(self) -> str:
        return (
            f"<FleetRegistry {len(self.raw_snapshots)} snapshots, "
            f"{len(self.counters)} counters, {len(self.digests)} digests>"
        )


# ---------------------------------------------------------------------------
# Persistence


def write_fleet_jsonl(fleet: FleetRegistry, path) -> int:
    """Dump the fleet's per-point snapshot stream as JSONL; lines written.

    The first line is a ``fleet_meta`` record (units, snapshot count); each
    following line is one folded snapshot.  Reading the file back and
    re-folding reproduces the fleet's aggregates exactly — merge is
    lossless, so the file *is* the registry.
    """
    lines = [
        json.dumps(
            {
                "type": "fleet_meta",
                "units": fleet.units,
                "snapshots": len(fleet.raw_snapshots),
            }
        )
    ]
    for snapshot in fleet.raw_snapshots:
        lines.append(json.dumps({"type": "point_snapshot", **snapshot}))
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    return len(lines)


def read_fleet_jsonl(path) -> FleetRegistry:
    """Rebuild a :class:`FleetRegistry` by re-folding a saved JSONL file.

    Also accepts a single-run metrics JSONL written by
    :func:`repro.obs.export.write_metrics_jsonl`: its final
    ``registry_export`` record folds as one snapshot.
    """
    fleet = FleetRegistry()
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.get("type")
            if kind in ("point_snapshot", "registry_export"):
                record = {k: v for k, v in record.items() if k != "type"}
                fleet.fold(record)
    return fleet


# ---------------------------------------------------------------------------
# Live streaming


class FleetFeed:
    """A cross-process telemetry feed for long-running sweeps.

    The parent creates the feed; worker processes (wired up by the sweep
    engine's pool initializer) emit small JSON-able records — point
    started/finished markers and mid-point progress from the open system's
    completion hook — and the parent drains them while futures are still
    pending.  Built on a ``multiprocessing.Manager`` queue because plain
    ``multiprocessing.Queue`` objects cannot cross a
    ``ProcessPoolExecutor``'s initializer-argument pickling boundary.

    The manager process only exists while a feed is armed: sweeps without a
    feed pay a single ``None`` check per point (the
    allocation-free-when-disabled discipline of the tracing layer).
    """

    def __init__(self) -> None:
        import multiprocessing

        self._manager = multiprocessing.Manager()
        self.queue = self._manager.Queue()
        self.emitted = 0

    def emit(self, record: Dict[str, Any]) -> None:
        """Publish one record (worker side); never blocks the simulation."""
        try:
            self.queue.put_nowait(record)
            self.emitted += 1
        except Exception:  # noqa: BLE001 - a dead feed must not kill the run
            pass

    def drain(self) -> List[Dict[str, Any]]:
        """Every record queued since the last drain (parent side)."""
        import queue as queue_mod

        records: List[Dict[str, Any]] = []
        while True:
            try:
                records.append(self.queue.get_nowait())
            except (queue_mod.Empty, OSError, EOFError):
                break
        return records

    def close(self) -> None:
        self._manager.shutdown()

    def __enter__(self) -> "FleetFeed":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
