"""Declarative service-level objectives over fleet telemetry.

An SLO is one line of text — ``"p99_sojourn <= 120"``, ``"availability >=
0.999"``, ``"aborted_requests == 0"`` — parsed once and evaluated against a
:class:`~repro.obs.fleet.FleetRegistry` (or any single exported snapshot
folded into one).  Because fleet digests merge losslessly, a percentile
objective evaluated on the merged fleet is the same verdict a single
process would have reached over all samples: no averaging of averages.

Grammar (case-insensitive metric spellings, whitespace optional)::

    objective := metric op threshold
    op        := <= | < | >= | > | == | !=
    threshold := float literal

    metric    := pNN_<latency>          quantile of a latency digest
               | mean_<latency>         exact mean of a latency digest
               | max_<latency>          exact max of a latency digest
               | count_<latency>        sample count of a latency digest
               | availability           horizon-weighted fleet availability
               | aborted_requests       requests.aborted counter
               | cache_hit_rate         fleet cache hits / lookups
               | <counter name>         any fleet counter, verbatim
                                        (e.g. tape.switches, faults.retries)

    latency   := sojourn | seek | switch | transfer
               | any digest name, verbatim (e.g. latency.sojourn_s)

Missing metrics evaluate to NaN and **fail** the objective (with a detail
saying so) — an SLO against telemetry that was never recorded is a
misconfiguration, not a pass.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Sequence, Union

__all__ = [
    "SLO",
    "SLOVerdict",
    "parse_slo",
    "parse_slos",
    "evaluate_slos",
    "format_verdicts",
    "slos_pass",
    "DEFAULT_CHAOS_SLOS",
]

#: Objectives a chaos run is held to when the user gives none: the system
#: must stay up and must not drop accepted work.
DEFAULT_CHAOS_SLOS = ("availability >= 0.99", "aborted_requests == 0")

#: Short latency spellings -> digest names used by the simulators.
_LATENCY_ALIASES = {
    "sojourn": "latency.sojourn_s",
    "seek": "latency.seek_s",
    "switch": "latency.switch_s",
    "transfer": "latency.transfer_s",
}

_OPS: Dict[str, Callable[[float, float], bool]] = {
    "<=": lambda a, b: a <= b,
    "<": lambda a, b: a < b,
    ">=": lambda a, b: a >= b,
    ">": lambda a, b: a > b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
}

_EXPR_RE = re.compile(
    r"^\s*(?P<metric>[A-Za-z][\w.]*)\s*"
    r"(?P<op><=|>=|==|!=|<|>)\s*"
    r"(?P<threshold>[-+]?\d*\.?\d+(?:[eE][-+]?\d+)?)\s*$"
)

_QUANTILE_RE = re.compile(r"^p(?P<q>\d{1,2}(?:\.\d+)?)_(?P<rest>.+)$", re.IGNORECASE)
_AGG_RE = re.compile(r"^(?P<agg>mean|max|count)_(?P<rest>.+)$", re.IGNORECASE)


def _digest_name(spelling: str) -> str:
    return _LATENCY_ALIASES.get(spelling.lower(), spelling)


@dataclass(frozen=True)
class SLO:
    """One parsed objective: ``observe(fleet) op threshold``."""

    text: str
    metric: str
    op: str
    threshold: float

    def observe(self, fleet: Any) -> float:
        """Read the objective's metric off a fleet registry (NaN if absent)."""
        metric = self.metric
        quantile_match = _QUANTILE_RE.match(metric)
        if quantile_match:
            q = float(quantile_match.group("q"))
            return fleet.quantile(_digest_name(quantile_match.group("rest")), q)
        agg_match = _AGG_RE.match(metric)
        if agg_match:
            digest = fleet.digests.get(_digest_name(agg_match.group("rest")))
            if digest is None or not digest.count:
                return float("nan")
            agg = agg_match.group("agg").lower()
            if agg == "mean":
                return digest.mean
            if agg == "max":
                return digest.max
            return float(digest.count)
        lowered = metric.lower()
        if lowered == "availability":
            return fleet.availability
        if lowered == "aborted_requests":
            return fleet.counter("requests.aborted")
        if lowered == "cache_hit_rate":
            return fleet.cache_hit_rate
        if metric in fleet.counters:
            return fleet.counter(metric)
        return float("nan")

    def evaluate(self, fleet: Any) -> "SLOVerdict":
        observed = self.observe(fleet)
        if math.isnan(observed):
            return SLOVerdict(
                slo=self,
                observed=observed,
                passed=False,
                detail=f"metric {self.metric!r} absent from fleet telemetry",
            )
        passed = _OPS[self.op](observed, self.threshold)
        return SLOVerdict(slo=self, observed=observed, passed=passed, detail="")


@dataclass(frozen=True)
class SLOVerdict:
    """The outcome of one objective against one fleet."""

    slo: SLO
    observed: float
    passed: bool
    detail: str = ""

    @property
    def status(self) -> str:
        return "PASS" if self.passed else "FAIL"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "objective": self.slo.text,
            "metric": self.slo.metric,
            "op": self.slo.op,
            "threshold": self.slo.threshold,
            "observed": None if math.isnan(self.observed) else self.observed,
            "passed": self.passed,
            "detail": self.detail,
        }


def parse_slo(text: str) -> SLO:
    """Parse one objective line; raises ``ValueError`` with the grammar."""
    match = _EXPR_RE.match(text)
    if not match:
        raise ValueError(
            f"cannot parse SLO {text!r}: expected '<metric> <op> <number>', "
            "e.g. 'p99_sojourn <= 120' or 'availability >= 0.999'"
        )
    metric = match.group("metric")
    quantile_match = _QUANTILE_RE.match(metric)
    if quantile_match and not 0.0 <= float(quantile_match.group("q")) <= 100.0:
        raise ValueError(f"SLO {text!r}: quantile must be in [0, 100]")
    return SLO(
        text=text.strip(),
        metric=metric,
        op=match.group("op"),
        threshold=float(match.group("threshold")),
    )


def parse_slos(specs: Union[str, Iterable[str]]) -> List[SLO]:
    """Parse objectives from a list, or one string split on ``,``/``;``."""
    if isinstance(specs, str):
        specs = [part for part in re.split(r"[,;]", specs) if part.strip()]
    return [parse_slo(spec) for spec in specs]


def evaluate_slos(slos: Sequence[SLO], fleet: Any) -> List[SLOVerdict]:
    """Every objective's verdict against one fleet registry."""
    return [slo.evaluate(fleet) for slo in slos]


def format_verdicts(verdicts: Sequence[SLOVerdict]) -> str:
    """Fixed-width text report, one objective per line, worst first."""
    if not verdicts:
        return "(no objectives)"
    ordered = sorted(verdicts, key=lambda v: v.passed)
    width = max(len(v.slo.text) for v in ordered)
    lines = []
    for v in ordered:
        observed = "n/a" if math.isnan(v.observed) else f"{v.observed:g}"
        line = f"{v.status}  {v.slo.text:<{width}}  observed={observed}"
        if v.detail:
            line += f"  ({v.detail})"
        lines.append(line)
    failed = sum(1 for v in ordered if not v.passed)
    lines.append(
        f"{len(ordered) - failed}/{len(ordered)} objectives met"
        + (f", {failed} FAILED" if failed else "")
    )
    return "\n".join(lines)


def slos_pass(verdicts: Sequence[SLOVerdict]) -> bool:
    """True when every objective passed."""
    return all(v.passed for v in verdicts)
