"""Self-contained HTML dashboard for fleet telemetry (``repro-tape report``).

One HTML file, zero external assets: inline CSS (light + dark via CSS custom
properties), one inline script for the timeline crosshair.  The layout is a
KPI row of stat tiles, a cached/computed progress meter, a per-stage latency
percentile table fed by the fleet's merged digests, an SLO verdict table
(icon + label, never color alone), a drives-down step timeline rendered from
registry snapshots when the input carries a time series, and a capped
per-point table.  Every chart has a table fallback, series identity never
rides on color alone, and the palette below is the validated reference set
(single blue series; ordinal two-step blue for the meter; reserved status
colors for verdicts).
"""

from __future__ import annotations

import html
import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .fleet import LATENCY_DIGESTS, FleetRegistry
from .slo import SLOVerdict

__all__ = ["render_dashboard", "write_dashboard"]

#: Display order and labels for the per-stage latency table.
_STAGE_LABELS = [
    ("latency.sojourn_s", "Sojourn (arrival → last byte)"),
    ("latency.seek_s", "Seek"),
    ("latency.switch_s", "Switch + queue"),
    ("latency.transfer_s", "Transfer"),
]

_PERCENTILES = (50.0, 90.0, 95.0, 99.0)

#: Cap for the per-point table; the fleet JSONL holds the full set.
_MAX_POINT_ROWS = 40

_CSS = """
:root { color-scheme: light; }
body {
  margin: 0; padding: 24px;
  background: #f9f9f7; color: #0b0b0b;
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9; --baseline: #c3c2b7;
  --border: rgba(11,11,11,0.10);
  --series-1: #2a78d6; --series-1-light: #86b6ef;
  --status-good: #0ca30c; --status-critical: #d03b3b;
  --good-text: #006300;
}
@media (prefers-color-scheme: dark) {
  :root { color-scheme: dark; }
  body {
    background: #0d0d0d; color: #ffffff;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --grid: #2c2c2a; --baseline: #383835;
    --border: rgba(255,255,255,0.10);
    --series-1: #3987e5; --series-1-light: #6da7ec;
    --status-good: #0ca30c; --status-critical: #d03b3b;
    --good-text: #0ca30c;
  }
}
main { max-width: 960px; margin: 0 auto; }
h1 { font-size: 20px; font-weight: 600; margin: 0 0 4px; }
.subtitle { color: var(--ink-2); margin: 0 0 20px; }
section {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px 20px; margin-bottom: 16px;
}
section h2 { font-size: 13px; font-weight: 600; color: var(--ink-2);
  text-transform: none; margin: 0 0 12px; }
.tiles { display: flex; flex-wrap: wrap; gap: 0; background: none;
  border: none; padding: 0; }
.tile { flex: 1 1 140px; background: var(--surface-1);
  border: 1px solid var(--border); border-radius: 8px;
  padding: 12px 16px; margin: 0 8px 8px 0; }
.tile .label { color: var(--ink-2); font-size: 12px; }
.tile .value { font-size: 26px; font-weight: 600; margin-top: 2px; }
.tile .note { color: var(--ink-3); font-size: 12px; margin-top: 2px; }
table { border-collapse: collapse; width: 100%; }
th { text-align: left; color: var(--ink-3); font-weight: 500;
  font-size: 12px; padding: 4px 10px 4px 0; border-bottom: 1px solid var(--grid); }
td { padding: 5px 10px 5px 0; border-bottom: 1px solid var(--grid);
  font-variant-numeric: tabular-nums; }
td.name { color: var(--ink-1); font-variant-numeric: normal; }
tr:last-child td { border-bottom: none; }
tr:hover td { background: color-mix(in srgb, var(--series-1) 6%, transparent); }
.num { text-align: right; }
th.num { text-align: right; }
.meter { display: flex; height: 16px; border-radius: 4px; overflow: hidden;
  background: var(--grid); }
.meter .computed { background: var(--series-1); }
.meter .gap { width: 2px; background: var(--surface-1); }
.meter .cached { background: var(--series-1-light); }
.legend { display: flex; gap: 16px; margin-top: 8px; color: var(--ink-2);
  font-size: 12px; }
.legend .key { display: inline-block; width: 10px; height: 10px;
  border-radius: 2px; margin-right: 5px; vertical-align: -1px; }
.status { font-weight: 600; white-space: nowrap; }
.status.pass { color: var(--status-good); }
.status.fail { color: var(--status-critical); }
.muted { color: var(--ink-3); }
svg text { fill: var(--ink-3); font: 11px system-ui, sans-serif; }
svg .grid { stroke: var(--grid); stroke-width: 1; }
svg .axis { stroke: var(--baseline); stroke-width: 1; }
svg .series { stroke: var(--series-1); stroke-width: 2; fill: none;
  stroke-linejoin: round; stroke-linecap: round; }
svg .wash { fill: var(--series-1); opacity: 0.10; stroke: none; }
svg .crosshair { stroke: var(--baseline); stroke-width: 1; visibility: hidden; }
svg .hoverdot { fill: var(--series-1); stroke: var(--surface-1);
  stroke-width: 2; visibility: hidden; }
#tl-tip { position: absolute; pointer-events: none; visibility: hidden;
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 6px; padding: 4px 8px; font-size: 12px;
  box-shadow: 0 2px 8px rgba(0,0,0,0.12); white-space: nowrap; }
details summary { color: var(--ink-2); cursor: pointer; font-size: 12px;
  margin-top: 8px; }
"""

_TIMELINE_JS = """
(function () {
  var svg = document.getElementById('tl-svg');
  if (!svg) return;
  var data = JSON.parse(document.getElementById('tl-data').textContent);
  var tip = document.getElementById('tl-tip');
  var dot = document.getElementById('tl-dot');
  var line = document.getElementById('tl-line');
  var geo = JSON.parse(svg.dataset.geo);
  function sx(t) {
    return geo.x0 + (geo.tmax > geo.tmin
      ? (t - geo.tmin) / (geo.tmax - geo.tmin) * (geo.x1 - geo.x0) : 0);
  }
  function sy(v) {
    return geo.y1 - (geo.vmax > 0 ? v / geo.vmax * (geo.y1 - geo.y0) : 0);
  }
  svg.addEventListener('mousemove', function (ev) {
    var rect = svg.getBoundingClientRect();
    var mx = (ev.clientX - rect.left) * (geo.w / rect.width);
    var best = 0, bd = Infinity;
    for (var i = 0; i < data.length; i++) {
      var d = Math.abs(sx(data[i][0]) - mx);
      if (d < bd) { bd = d; best = i; }
    }
    var t = data[best][0], v = data[best][1];
    line.setAttribute('x1', sx(t)); line.setAttribute('x2', sx(t));
    line.style.visibility = 'visible';
    dot.setAttribute('cx', sx(t)); dot.setAttribute('cy', sy(v));
    dot.style.visibility = 'visible';
    tip.textContent = 't = ' + (t / 3600).toFixed(2) + ' h \\u00b7 ' +
      v + ' drive' + (v === 1 ? '' : 's') + ' down';
    tip.style.left = (ev.pageX + 14) + 'px';
    tip.style.top = (ev.pageY - 10) + 'px';
    tip.style.visibility = 'visible';
  });
  svg.addEventListener('mouseleave', function () {
    tip.style.visibility = 'hidden';
    dot.style.visibility = 'hidden';
    line.style.visibility = 'hidden';
  });
})();
"""


def _esc(value: Any) -> str:
    return html.escape(str(value))


def _fmt(value: float, digits: int = 1) -> str:
    """Compact numeric formatting for tiles and table cells."""
    if value is None or (isinstance(value, float) and math.isnan(value)):
        return "–"
    if abs(value) >= 10_000:
        return f"{value:,.0f}"
    if float(value).is_integer() and abs(value) < 10_000:
        return f"{int(value):,}"
    return f"{value:,.{digits}f}"


def _tile(label: str, value: str, note: str = "") -> str:
    note_html = f'<div class="note">{_esc(note)}</div>' if note else ""
    return (
        f'<div class="tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{_esc(value)}</div>{note_html}</div>'
    )


def _kpi_row(fleet: FleetRegistry) -> str:
    completed = fleet.counter("requests.completed")
    aborted = fleet.aborted_requests
    hit_rate = fleet.cache_hit_rate
    availability = fleet.availability
    has_horizon = fleet.counter("fleet.horizon_s") > 0
    tiles = [
        _tile("Points merged", _fmt(float(len(fleet.raw_snapshots)))),
        _tile("Requests completed", _fmt(completed)),
        _tile(
            "Availability",
            f"{availability * 100:.3f}%" if has_horizon else "–",
            "" if has_horizon else "no fault bookkeeping in input",
        ),
        _tile(
            "Cache hit rate",
            "–" if math.isnan(hit_rate) else f"{hit_rate * 100:.0f}%",
        ),
        _tile("Aborted requests", _fmt(aborted)),
        _tile("Tape switches", _fmt(fleet.counter("tape.switches"))),
    ]
    return '<div class="tiles">' + "".join(tiles) + "</div>"


def _progress_section(fleet: FleetRegistry) -> str:
    hits = fleet.counter("sweep.cache_hits")
    misses = fleet.counter("sweep.cache_misses")
    total = hits + misses
    if total <= 0:
        return ""
    computed_pct = misses / total * 100.0
    cached_pct = hits / total * 100.0
    gap = '<div class="gap"></div>' if hits and misses else ""
    return f"""<section>
<h2>Sweep progress — {_fmt(total)} points ({_fmt(misses)} computed, {_fmt(hits)} from cache)</h2>
<div class="meter">
<div class="computed" style="width:{computed_pct:.2f}%"></div>{gap}
<div class="cached" style="width:{cached_pct:.2f}%"></div>
</div>
<div class="legend">
<span><span class="key" style="background:var(--series-1)"></span>Computed</span>
<span><span class="key" style="background:var(--series-1-light)"></span>Cache hit</span>
</div>
</section>"""


def _latency_section(fleet: FleetRegistry) -> str:
    rows = []
    for name, label in _STAGE_LABELS:
        digest = fleet.digests.get(name)
        if digest is None or not digest.count:
            continue
        cells = [
            f'<td class="name">{_esc(label)}</td>',
            f'<td class="num">{_fmt(float(digest.count))}</td>',
            f'<td class="num">{_fmt(digest.mean, 2)}</td>',
        ]
        for q in _PERCENTILES:
            cells.append(f'<td class="num">{_fmt(digest.quantile(q), 2)}</td>')
        cells.append(f'<td class="num">{_fmt(digest.max, 2)}</td>')
        rows.append("<tr>" + "".join(cells) + "</tr>")
    if not rows:
        return ""
    header = (
        '<tr><th>Stage</th><th class="num">Count</th><th class="num">Mean (s)</th>'
        + "".join(f'<th class="num">p{q:g}</th>' for q in _PERCENTILES)
        + '<th class="num">Max (s)</th></tr>'
    )
    return (
        "<section><h2>Per-stage latency percentiles (seconds, merged digests, "
        "±1% relative error)</h2><table>"
        + header
        + "".join(rows)
        + "</table></section>"
    )


def _slo_section(verdicts: Sequence[SLOVerdict]) -> str:
    if not verdicts:
        return ""
    rows = []
    for v in sorted(verdicts, key=lambda v: v.passed):
        observed = "–" if math.isnan(v.observed) else _fmt(v.observed, 4)
        icon, css = ("✓ PASS", "pass") if v.passed else ("✗ FAIL", "fail")
        detail = f' <span class="muted">({_esc(v.detail)})</span>' if v.detail else ""
        rows.append(
            f'<tr><td class="name">{_esc(v.slo.text)}</td>'
            f'<td class="num">{observed}</td>'
            f'<td class="num">{_fmt(v.slo.threshold, 4)}</td>'
            f'<td><span class="status {css}">{icon}</span>{detail}</td></tr>'
        )
    met = sum(1 for v in verdicts if v.passed)
    return (
        f"<section><h2>Service-level objectives — {met}/{len(verdicts)} met</h2>"
        '<table><tr><th>Objective</th><th class="num">Observed</th>'
        '<th class="num">Threshold</th><th>Verdict</th></tr>'
        + "".join(rows)
        + "</table></section>"
    )


def _drives_down_series(
    snapshots: Sequence[Dict[str, Any]],
) -> List[List[float]]:
    series = []
    for snap in snapshots:
        gauges = snap.get("gauges", {})
        if "faults.drives_down" in gauges:
            series.append([float(snap.get("t_s", 0.0)), float(gauges["faults.drives_down"])])
    return series


def _timeline_section(snapshots: Optional[Sequence[Dict[str, Any]]]) -> str:
    series = _drives_down_series(snapshots or [])
    if len(series) < 2:
        return ""
    w, h = 920, 200
    x0, x1, y0, y1 = 46, w - 12, 12, h - 26
    tmin, tmax = series[0][0], series[-1][0]
    vmax = max(1.0, max(v for _, v in series))

    def sx(t: float) -> float:
        return x0 + (t - tmin) / (tmax - tmin) * (x1 - x0) if tmax > tmin else x0

    def sy(v: float) -> float:
        return y1 - v / vmax * (y1 - y0)

    # Step path: a gauge holds its value until the next snapshot.
    path = [f"M {sx(series[0][0]):.1f} {sy(series[0][1]):.1f}"]
    for (t_prev, v_prev), (t, v) in zip(series, series[1:]):
        path.append(f"L {sx(t):.1f} {sy(v_prev):.1f}")
        path.append(f"L {sx(t):.1f} {sy(v):.1f}")
    line_path = " ".join(path)
    wash_path = (
        line_path
        + f" L {sx(series[-1][0]):.1f} {y1:.1f} L {sx(series[0][0]):.1f} {y1:.1f} Z"
    )

    grid = []
    ticks = range(0, int(vmax) + 1) if vmax <= 6 else range(0, int(vmax) + 1, 2)
    for v in ticks:
        y = sy(float(v))
        grid.append(f'<line class="grid" x1="{x0}" y1="{y:.1f}" x2="{x1}" y2="{y:.1f}"/>')
        grid.append(f'<text x="{x0 - 8}" y="{y + 4:.1f}" text-anchor="end">{v}</text>')
    x_labels = []
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        t = tmin + frac * (tmax - tmin)
        x_labels.append(
            f'<text x="{sx(t):.1f}" y="{h - 8}" text-anchor="middle">'
            f"{t / 3600:.1f} h</text>"
        )

    geo = json.dumps(
        {"w": w, "x0": x0, "x1": x1, "y0": y0, "y1": y1,
         "tmin": tmin, "tmax": tmax, "vmax": vmax}
    )
    table_rows = "".join(
        f'<tr><td class="num">{t / 3600:.2f}</td><td class="num">{int(v)}</td></tr>'
        for t, v in series
    )
    return f"""<section>
<h2>Drives down over simulated time</h2>
<svg id="tl-svg" viewBox="0 0 {w} {h}" width="100%" data-geo='{_esc(geo)}' role="img"
 aria-label="Step chart of simultaneously failed drives over simulated time">
{''.join(grid)}
<line class="axis" x1="{x0}" y1="{y1}" x2="{x1}" y2="{y1}"/>
<path class="wash" d="{wash_path}"/>
<path class="series" d="{line_path}"/>
<line id="tl-line" class="crosshair" x1="0" y1="{y0}" x2="0" y2="{y1}"/>
<circle id="tl-dot" class="hoverdot" r="4"/>
{''.join(x_labels)}
</svg>
<div id="tl-tip"></div>
<script id="tl-data" type="application/json">{json.dumps(series)}</script>
<details><summary>Table view</summary>
<table><tr><th class="num">t (h)</th><th class="num">Drives down</th></tr>
{table_rows}</table></details>
</section>"""


def _points_section(fleet: FleetRegistry) -> str:
    if not fleet.points:
        return ""
    rows = []
    for meta in fleet.points[:_MAX_POINT_ROWS]:
        rows.append(
            f'<tr><td class="name">{_esc(meta.get("label", "?"))}</td>'
            f'<td>{_esc(meta.get("kind", ""))}</td>'
            f'<td>{"cache" if meta.get("cached") else "computed"}</td></tr>'
        )
    truncated = (
        f'<p class="muted">… and {len(fleet.points) - _MAX_POINT_ROWS} more points '
        "(full set in the fleet JSONL).</p>"
        if len(fleet.points) > _MAX_POINT_ROWS
        else ""
    )
    return (
        f"<section><h2>Points ({len(fleet.points)})</h2>"
        "<table><tr><th>Point</th><th>Kind</th><th>Source</th></tr>"
        + "".join(rows)
        + "</table>"
        + truncated
        + "</section>"
    )


def render_dashboard(
    fleet: FleetRegistry,
    verdicts: Sequence[SLOVerdict] = (),
    snapshots: Optional[Sequence[Dict[str, Any]]] = None,
    title: str = "repro-tape fleet report",
    subtitle: str = "",
) -> str:
    """Render the fleet (plus optional SLO verdicts and a registry snapshot
    time series for the drives-down timeline) as one self-contained HTML
    page."""
    sections = [
        _kpi_row(fleet),
        _progress_section(fleet),
        _latency_section(fleet),
        _slo_section(verdicts),
        _timeline_section(snapshots),
        _points_section(fleet),
    ]
    subtitle_html = f'<p class="subtitle">{_esc(subtitle)}</p>' if subtitle else ""
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{_esc(title)}</title>
<style>{_CSS}</style>
</head>
<body>
<main>
<h1>{_esc(title)}</h1>
{subtitle_html}
{''.join(s for s in sections if s)}
</main>
<script>{_TIMELINE_JS}</script>
</body>
</html>
"""


def write_dashboard(
    fleet: FleetRegistry,
    path,
    verdicts: Sequence[SLOVerdict] = (),
    snapshots: Optional[Sequence[Dict[str, Any]]] = None,
    title: str = "repro-tape fleet report",
    subtitle: str = "",
) -> str:
    """Write the dashboard HTML to ``path``; returns the document."""
    doc = render_dashboard(
        fleet, verdicts=verdicts, snapshots=snapshots, title=title, subtitle=subtitle
    )
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as fh:
        fh.write(doc)
    return doc
