"""Bounded-memory, exactly-mergeable quantile digests for latency metrics.

Averaging per-worker p99s is wrong — percentiles don't compose.  What does
compose is the underlying *distribution sketch*: this module implements a
DDSketch-style digest (Masson, Rim & Lee, VLDB 2019) whose buckets are
geometrically spaced so every quantile estimate carries a bounded
**relative** error, and whose merge is a bucket-wise integer addition —
associative, commutative, and lossless.  Merging the digests of ten sweep
workers therefore yields *exactly* the digest a single process would have
built from the concatenated samples, so fleet-level p50/p95/p99 are correct
by construction.

Design points:

* ``record(v)`` costs one ``log`` and one dict increment — cheap enough to
  run per completed request on the simulation hot path;
* values map to bucket ``ceil(log_gamma(v))`` with ``gamma = (1 + eps) /
  (1 - eps)``, giving ``|estimate - v| <= eps * v`` for every recorded
  value; zeros (and values below :attr:`QuantileDigest.min_trackable`)
  live in a dedicated zero bucket;
* memory is bounded by ``max_bins``: overflowing collapses the *lowest*
  buckets together (the error bound then holds for everything above the
  collapsed floor — the tail quantiles one actually alerts on);
* exact ``count`` / ``sum`` / ``min`` / ``max`` ride along, so means stay
  exact even though quantiles are approximate.

Serialization (:meth:`QuantileDigest.to_dict` / :meth:`from_dict`) is plain
JSON-able data; digests round-trip bit-exactly through the metrics JSONL
written by :mod:`repro.obs.export`.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable

__all__ = ["QuantileDigest", "DEFAULT_REL_ERR", "DEFAULT_MAX_BINS"]

#: 1 % relative error: p99 of a 1000 s sojourn is right to within 10 s.
DEFAULT_REL_ERR = 0.01

#: Bucket cap.  At 1 % error one bucket spans a factor gamma ~= 1.0202, so
#: 2048 bins cover > 17 orders of magnitude before any collapse happens.
DEFAULT_MAX_BINS = 2048


class QuantileDigest:
    """A mergeable sketch of a non-negative value distribution.

    Parameters
    ----------
    name:
        Instrument name (``"sojourn_s"``); carried through snapshots.
    rel_err:
        Relative accuracy guarantee for quantiles, in (0, 1).
    unit:
        Display unit (``"s"``).
    max_bins:
        Memory bound; the lowest buckets collapse together beyond it.
    """

    __slots__ = (
        "name",
        "unit",
        "rel_err",
        "max_bins",
        "gamma",
        "_log_gamma",
        "bins",
        "zero_count",
        "count",
        "sum",
        "min",
        "max",
    )

    def __init__(
        self,
        name: str,
        rel_err: float = DEFAULT_REL_ERR,
        unit: str = "",
        max_bins: int = DEFAULT_MAX_BINS,
    ) -> None:
        if not 0.0 < rel_err < 1.0:
            raise ValueError(f"rel_err must be in (0, 1), got {rel_err}")
        if max_bins < 2:
            raise ValueError(f"max_bins must be >= 2, got {max_bins}")
        self.name = name
        self.unit = unit
        self.rel_err = rel_err
        self.max_bins = max_bins
        self.gamma = (1.0 + rel_err) / (1.0 - rel_err)
        self._log_gamma = math.log(self.gamma)
        #: Bucket index -> sample count.  Bucket ``i`` covers
        #: ``(gamma^(i-1), gamma^i]``.
        self.bins: Dict[int, int] = {}
        self.zero_count = 0
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    @property
    def min_trackable(self) -> float:
        """Values at or below this land in the zero bucket (~1e-9 s)."""
        return 1e-9

    # -- recording ---------------------------------------------------------
    def record(self, value: float, count: int = 1) -> None:
        """Fold ``count`` observations of ``value`` into the sketch."""
        if value < 0.0:
            raise ValueError(f"digest {self.name!r} is non-negative, got {value}")
        if count <= 0:
            return
        self.count += count
        self.sum += value * count
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value <= self.min_trackable:
            self.zero_count += count
            return
        index = math.ceil(math.log(value) / self._log_gamma)
        self.bins[index] = self.bins.get(index, 0) + count
        if len(self.bins) > self.max_bins:
            self._collapse_lowest()

    def _collapse_lowest(self) -> None:
        """Merge the two lowest buckets (keeps tail quantiles accurate)."""
        low = sorted(self.bins)
        first, second = low[0], low[1]
        self.bins[second] += self.bins.pop(first)

    # -- queries -----------------------------------------------------------
    def quantile(self, q: float) -> float:
        """The q-th quantile (q in [0, 100]); NaN when empty.

        Accurate to ``rel_err`` relative error for any value recorded above
        :attr:`min_trackable` (and exact at the extremes, which return the
        tracked ``min``/``max``).
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"quantile must be in [0, 100], got {q}")
        if self.count == 0:
            return float("nan")
        # Nearest-rank on the merged bucket counts.
        rank = max(1, math.ceil(q / 100.0 * self.count))
        if rank <= self.zero_count:
            return max(0.0, self.min)
        seen = self.zero_count
        for index in sorted(self.bins):
            seen += self.bins[index]
            if seen >= rank:
                # Bucket midpoint in log space: 2*gamma^i/(gamma+1) has
                # bounded relative error against anything in the bucket.
                estimate = 2.0 * self.gamma**index / (self.gamma + 1.0)
                return min(max(estimate, self.min), self.max)
        return self.max  # pragma: no cover - rank <= count always lands

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def summary(self, quantiles: Iterable[float] = (50, 90, 95, 99)) -> Dict[str, float]:
        """Compact stats dict for snapshots and dashboards."""
        out: Dict[str, float] = {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min if self.count else float("nan"),
            "max": self.max if self.count else float("nan"),
        }
        for q in quantiles:
            out[f"p{q:g}"] = self.quantile(q)
        return out

    # -- merge -------------------------------------------------------------
    def merge(self, other: "QuantileDigest") -> "QuantileDigest":
        """Fold ``other`` into this digest in place (bucket-wise, lossless).

        Requires identical ``rel_err`` (same bucket geometry) — merging
        sketches with different error bounds would silently degrade both.
        """
        if other.rel_err != self.rel_err:
            raise ValueError(
                f"cannot merge digests with different rel_err "
                f"({self.rel_err} vs {other.rel_err})"
            )
        for index, count in other.bins.items():
            self.bins[index] = self.bins.get(index, 0) + count
        while len(self.bins) > self.max_bins:
            self._collapse_lowest()
        self.zero_count += other.zero_count
        self.count += other.count
        self.sum += other.sum
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
        return self

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-able full state (bins keyed by string for JSON round-trip)."""
        return {
            "name": self.name,
            "unit": self.unit,
            "rel_err": self.rel_err,
            "max_bins": self.max_bins,
            "zero_count": self.zero_count,
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "bins": {str(i): c for i, c in sorted(self.bins.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QuantileDigest":
        digest = cls(
            data["name"],
            rel_err=data["rel_err"],
            unit=data.get("unit", ""),
            max_bins=data.get("max_bins", DEFAULT_MAX_BINS),
        )
        digest.zero_count = int(data.get("zero_count", 0))
        digest.count = int(data.get("count", 0))
        digest.sum = float(data.get("sum", 0.0))
        digest.min = math.inf if data.get("min") is None else float(data["min"])
        digest.max = -math.inf if data.get("max") is None else float(data["max"])
        digest.bins = {int(i): int(c) for i, c in data.get("bins", {}).items()}
        return digest

    def copy(self) -> "QuantileDigest":
        return QuantileDigest.from_dict(self.to_dict())

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        if not self.count:
            return f"<QuantileDigest {self.name} empty>"
        return (
            f"<QuantileDigest {self.name} n={self.count} "
            f"p50={self.quantile(50):g} p99={self.quantile(99):g}"
            f"{self.unit and ' ' + self.unit}>"
        )
