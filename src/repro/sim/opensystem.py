"""Persistent open-system simulation: concurrent in-flight requests.

The paper's simulator (and :func:`repro.sim.engine.simulate_request`)
assumes requests arrive "one by one with long time interval between two
requests".  This module drops that assumption *structurally*: an
:class:`OpenSystem` owns a single long-lived DES
:class:`~repro.des.Environment`; a Poisson arrival process injects
Zipf-sampled requests onto the shared clock; and a pluggable
request-scheduling policy decides how much the in-flight requests may
overlap:

``serial-fcfs``
    Whole requests serialize behind one capacity-1 lock, reproducing the
    closed-loop :func:`~repro.sim.queueing.simulate_fcfs_queue` behaviour
    (same seed ⇒ same sojourn times) — the regression anchor.

``concurrent``
    A per-library dispatcher with per-drive job queues admits tape jobs
    from *multiple* requests simultaneously.  Requests touching disjoint
    libraries — or disjoint drives of one library — overlap fully, while
    the physical serialization points carry over unchanged: the robot arm
    (capacity-1 per library), the disk-stream cap, and the
    one-cartridge-one-drive invariant.  Drive failures interrupt the
    persistent drive worker; leftover extents re-queue and surviving
    drives rescue them, as in the closed-loop engine.

Entry points: ``session.open(policy=...)`` or :func:`simulate_open_system`.
"""

from __future__ import annotations

import gc
from collections import deque
from dataclasses import dataclass, field, replace as _dc_replace
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple, Union

import numpy as np

from ..catalog import Request
from ..des import Environment, Event, EventScheduler, Interrupt, Resource, ResourceUsageMonitor, Trace
from ..hardware import ObjectExtent, TapeDrive, TapeLibrary, TapeId
from ..obs import MetricsRegistry
from ..redundancy.dispatch import count_fallbacks, select_members
from .engine import RequestExecution, _serve_job, _switch_to
from .faults import FaultEscalation, FaultInjector, FaultSpec, failures_to_specs
from .metrics import DriveServiceRecord, RequestMetrics, WindowStat, sliding_window_stats
from .queueing import QueuedRequestRecord, QueueingResult
from .replacement import replacement_key
from .scheduling import TapeJob, estimate_job_time
from .seekplanner import SeekPlanner, resolve_seek_planner

__all__ = [
    "OpenSystem",
    "OpenSystemResult",
    "simulate_open_system",
    "SCHEDULING_POLICIES",
    "READ_SELECTIONS",
    "available_scheduling_policies",
]

#: (record, metrics) produced by one completed request.
_Outcome = Tuple[QueuedRequestRecord, RequestMetrics]


@dataclass
class OpenSystemResult(QueueingResult):
    """One open-system arrival stream's outcomes.

    Extends :class:`~repro.sim.queueing.QueueingResult` (whose mean/percentile
    and busy-union utilization views apply unchanged to overlapping services)
    with the per-request paper metrics, per-resource occupancy accounting,
    and sliding-window views.

    Note that in an open system a request's ``RequestMetrics.response_s`` is
    its *sojourn* (arrival to last byte), so queueing delay is included.
    """

    policy: str = ""
    metrics: List[RequestMetrics] = field(default_factory=list)
    #: Resource name -> occupancy summary (grants, max_in_use, busy_s,
    #: slot_busy_s, queue stats) from the attached ResourceUsageMonitors.
    resources: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Simulation time when the environment drained.
    horizon_s: float = 0.0
    #: The session's causal span tree (empty Trace when tracing was off).
    trace: Optional[Trace] = None
    #: Live-instrument registry with its snapshot series.
    registry: Optional[MetricsRegistry] = None
    #: Fault-layer summary (availability, degraded time, counters) from the
    #: run's :class:`~repro.sim.faults.FaultInjector`; empty when none armed.
    faults: Dict[str, float] = field(default_factory=dict)
    #: Repair-layer summary (tape losses, rebuilds, objects lost, backlog)
    #: from the run's :class:`~repro.sim.repair.RepairManager`; empty when
    #: no media faults were configured.
    repair: Dict[str, float] = field(default_factory=dict)

    # -- fault/availability views -----------------------------------------
    @property
    def availability(self) -> float:
        """Time-weighted mean fraction of drives up (1.0 without faults)."""
        return float(self.faults.get("availability", 1.0))

    @property
    def degraded_time_s(self) -> float:
        """Total time at least one drive was down."""
        return float(self.faults.get("degraded_time_s", 0.0))

    @property
    def aborted_requests(self) -> int:
        """Requests that completed as aborted (every candidate drive down)."""
        return sum(1 for record in self.records if record.aborted)

    # -- durability views --------------------------------------------------
    @property
    def objects_lost(self) -> int:
        """Objects with a fragment below ``needed`` survivors (unrecoverable)."""
        repair = getattr(self, "repair", None) or {}
        return int(repair.get("objects_lost", 0))

    @property
    def durability(self) -> float:
        """Fraction of cataloged objects still recoverable at the horizon."""
        repair = getattr(self, "repair", None) or {}
        total = repair.get("objects_total", 0)
        if not total:
            return 1.0
        return 1.0 - float(repair.get("objects_lost", 0)) / float(total)

    @property
    def repair_backlog_seconds(self) -> float:
        """Summed loss-detection-to-rebuilt time over all repaired members
        (open repairs are charged up to the horizon)."""
        repair = getattr(self, "repair", None) or {}
        return float(repair.get("backlog_s", 0.0))

    # -- telemetry views -------------------------------------------------
    def spans(self) -> list:
        """Every recorded span (empty when tracing was disabled)."""
        return list(self.trace) if self.trace is not None else []

    def to_chrome_trace(self) -> dict:
        """Chrome/Perfetto ``trace_event`` document of this run's spans."""
        from ..obs import to_chrome_trace

        return to_chrome_trace(self.spans(), label=f"{self.scheme}/{self.policy}")

    def write_trace(self, path) -> dict:
        """Write the Perfetto-loadable trace JSON; returns the document."""
        from ..obs import write_chrome_trace

        return write_chrome_trace(self.spans(), path, label=f"{self.scheme}/{self.policy}")

    def write_metrics(self, path) -> int:
        """Dump the registry's snapshot series as JSONL; lines written."""
        from ..obs import write_metrics_jsonl

        if self.registry is None:
            raise ValueError("this result carries no metrics registry")
        return write_metrics_jsonl(self.registry, path)

    def stage_report(self):
        """Critical-path stage attribution (see :mod:`repro.obs.report`)."""
        from ..obs import attribute_requests

        return attribute_requests(self.spans(), label=f"{self.scheme}/{self.policy}")

    @property
    def peak_in_flight(self) -> int:
        """Largest number of simultaneously in-flight requests."""
        from .metrics import in_flight_profile

        _, counts = in_flight_profile(self.records)
        return int(counts.max()) if len(counts) else 0

    def windowed(self, window_s: float, step_s: Optional[float] = None) -> List[WindowStat]:
        """Sliding-window arrivals/in-flight/sojourn-percentile stats."""
        return sliding_window_stats(self.records, window_s, step_s)

    def resource_utilization(self, name: str, capacity: int = 1) -> float:
        """Mean busy fraction of one monitored resource over the horizon."""
        stats = self.resources[name]
        if self.horizon_s <= 0:
            return 0.0
        return stats["slot_busy_s"] / (self.horizon_s * capacity)


# ---------------------------------------------------------------------------
# Scheduling policies


class SerialFCFSPolicy:
    """Exclusive whole-request service: the closed-loop model on one clock.

    Every request takes a global capacity-1 lock for its entire service, so
    hardware-state evolution (mounted tapes, head positions) and therefore
    every service duration is identical to running
    :func:`~repro.sim.queueing.simulate_fcfs_queue` with the same seed.
    """

    name = "serial-fcfs"
    #: Rejected at :class:`OpenSystem` construction when fault specs (or the
    #: legacy ``failures=`` map) are present: the policy arms no recovery
    #: hooks between requests.
    supports_faults = False

    def bind(self, opensys: "OpenSystem") -> None:
        self.os = opensys
        self.lock = Resource(opensys.env, capacity=1)

    def serve(
        self,
        request: Request,
        arrival_s: float,
        parent: Optional[int] = None,
        token: Optional[int] = None,
    ):
        os = self.os
        env = os.env
        trace_key = token if token is not None else request.id
        with self.lock.request() as grant:
            with os.trace.span(
                env, "queue_wait", parent=parent, request=trace_key, policy=self.name
            ):
                yield grant
            start = env.now
            execution = RequestExecution(
                env,
                os.system,
                os.index,
                request,
                os.tape_priority,
                os.trace,
                os.replacement_policy,
                None,
                os.disk,
                parent=parent,
                trace_request=trace_key,
                seek_planner=os.seek_planner,
            )
            yield from execution.wait()
            metrics = execution.finalize()
        # Open-system semantics: response is the sojourn (arrival to last
        # byte), so time queued behind the serial lock is part of T_switch —
        # finalize() measured from the lock grant, re-base onto the arrival.
        metrics = RequestMetrics.from_drive_records(
            request_id=request.id,
            size_mb=metrics.size_mb,
            num_tapes=metrics.num_tapes,
            records=list(execution.records.values()),
            start_s=arrival_s,
        )
        record = QueuedRequestRecord(
            request_id=request.id,
            arrival_s=arrival_s,
            start_s=start,
            finish_s=env.now,
            size_mb=metrics.size_mb,
        )
        return record, metrics

    def check_drained(self) -> None:
        if self.lock.users or self.lock.queue:
            raise RuntimeError("serial-fcfs lock still held after the run drained")


@dataclass
class _DispatchedJob:
    """One tape job in flight through a library dispatcher."""

    job: TapeJob
    #: Span-tree grouping key of the owning arrival (unique per arrival).
    request_id: int
    #: The owning request's per-drive records (shared across its jobs).
    records: Dict[str, DriveServiceRecord]
    done: Event
    #: When a drive first began working on this job (service start).
    started_at: Optional[float] = None
    #: When the job entered the dispatcher (for queue/span accounting).
    submitted_at: float = 0.0
    #: Reserved ``tape_job`` span id (closed when the job lands) and the
    #: owning request's root span id.
    span_id: Optional[int] = None
    parent_id: Optional[int] = None
    #: Set when the job was failed instead of served (no candidate drive
    #: left and no repair pending); the owning request completes aborted.
    aborted: bool = False
    error: str = ""
    #: True for rebuild traffic submitted by the repair manager; repair
    #: jobs share the dispatcher/worker machinery with user restores but
    #: are ordered by the configured repair-priority policy.
    repair: bool = False


class ConcurrentPolicy:
    """Overlap requests across libraries and drives.

    Each request fans its tape jobs out to per-library dispatchers and
    completes when the last job lands; dispatchers run jobs from any number
    of in-flight requests on their drives simultaneously.
    """

    name = "concurrent"
    supports_faults = True

    def bind(self, opensys: "OpenSystem") -> None:
        self.os = opensys
        self.dispatchers = {
            library.id: _LibraryDispatcher(opensys, library)
            for library in opensys.system.libraries
        }
        #: Redundancy instruments, created lazily on the first redundant
        #: serve: non-redundant runs keep their registry content (and its
        #: pinned digest) byte-identical to the pre-redundancy engine.
        self._red_inst: Optional[Dict[str, object]] = None

    def _submit_tape_jobs(
        self,
        tape_extents: Dict[TapeId, List[ObjectExtent]],
        trace_key: int,
        parent: Optional[int],
        records: Dict[str, DriveServiceRecord],
        repair: bool = False,
    ) -> List[_DispatchedJob]:
        """Fan per-tape extent lists out to the library dispatchers."""
        os = self.os
        env = os.env
        djobs: List[_DispatchedJob] = []
        by_library: Dict[int, List[TapeJob]] = {}
        for tape_id, extents in tape_extents.items():
            by_library.setdefault(tape_id.library, []).append(
                TapeJob(tape_id, sorted(extents, key=lambda e: e.start_mb))
            )
        shard = os.shard_filter
        for library_id in sorted(by_library):
            if shard is not None and library_id not in shard:
                # Another shard owns this library: its jobs run there, on an
                # identical clock fed by the identical arrival stream.
                continue
            library = os.system.libraries[library_id]
            tape_jobs = by_library[library_id]
            # Longest-processing-time first, as in the closed-loop planner.
            tape_jobs.sort(
                key=lambda job: (
                    -estimate_job_time(job, library, planner=os.seek_planner),
                    job.tape_id,
                )
            )
            for job in tape_jobs:
                djob = _DispatchedJob(
                    job=job, request_id=trace_key, records=records, done=env.event(),
                    submitted_at=env.now, span_id=os.trace.reserve_id(),
                    parent_id=parent, repair=repair,
                )
                djobs.append(djob)
                self.dispatchers[library_id].submit(djob)
        return djobs

    def serve(
        self,
        request: Request,
        arrival_s: float,
        parent: Optional[int] = None,
        token: Optional[int] = None,
    ):
        os = self.os
        env = os.env
        if os.index.has_redundancy:
            outcome = yield from self._serve_redundant(
                request, arrival_s, parent=parent, token=token
            )
            return outcome
        trace_key = token if token is not None else request.id
        jobs = os.index.group_by_tape(request.object_ids)
        total_mb = sum(e.size_mb for extents in jobs.values() for e in extents)
        records: Dict[str, DriveServiceRecord] = {}
        djobs = self._submit_tape_jobs(jobs, trace_key, parent, records)

        yield env.all_of([dj.done for dj in djobs])

        aborted = any(dj.aborted for dj in djobs)
        if records:
            metrics = RequestMetrics.from_drive_records(
                request_id=request.id,
                size_mb=total_mb,
                num_tapes=len(jobs),
                records=list(records.values()),
                start_s=arrival_s,
                aborted=aborted,
            )
        else:
            # Aborted before any drive touched it: every candidate drive in
            # some library was already down with no repair pending.
            metrics = RequestMetrics(
                request_id=request.id,
                size_mb=total_mb,
                response_s=env.now - arrival_s,
                seek_s=0.0,
                transfer_s=0.0,
                num_tapes=len(jobs),
                num_switches=0,
                num_drives=0,
                aborted=True,
            )
        starts = [dj.started_at for dj in djobs if dj.started_at is not None]
        started = min(starts) if starts else env.now
        capture = os._shard_capture
        if capture is not None:
            # Shard child: ship the local share of this token to the merge.
            # start/finish are None (not degenerate arrival-time values)
            # when no local library served it, so cross-shard min/max stay
            # honest.
            capture[trace_key] = (
                request.id,
                arrival_s,
                total_mb,
                len(jobs),
                list(records.values()),
                min(starts) if starts else None,
                env.now if djobs else None,
                aborted,
            )
        record = QueuedRequestRecord(
            request_id=request.id,
            arrival_s=arrival_s,
            start_s=started,
            finish_s=env.now,
            size_mb=total_mb,
            aborted=aborted,
        )
        return record, metrics

    # -- choice-of-d replica dispatch ------------------------------------
    def _redundancy_instruments(self) -> Dict[str, object]:
        if self._red_inst is None:
            registry = self.os.registry
            self._red_inst = {
                "requests": registry.counter("redundancy.requests", unit="requests"),
                "fallbacks": registry.counter("redundancy.fallbacks", unit="members"),
                "retries": registry.counter("redundancy.retries", unit="rounds"),
                "unservable": registry.counter("redundancy.unservable", unit="groups"),
                "digest": registry.digest("replica_fallbacks", unit="members"),
            }
        return self._red_inst

    def _dispatcher_live(self, tape_id: TapeId) -> bool:
        """A member is live when its library has a worker or a committed repair."""
        dispatcher = self.dispatchers[tape_id.library]
        if dispatcher.workers:
            return True
        injector = self.os.injector
        return injector is not None and injector.will_recover(dispatcher.library)

    def _dispatcher_load(self, tape_id: TapeId) -> int:
        dispatcher = self.dispatchers[tape_id.library]
        load = (
            len(dispatcher.pending) + len(dispatcher.inbox) + len(dispatcher.busy)
        )
        if not dispatcher.workers:
            # Down-but-recovering: counts as live (jobs wait for the repair)
            # but any member with a working drive should win the choice.
            load += 1_000_000
        return load

    def _member_cost(self, tape_id: TapeId, extent: ObjectExtent):
        """Estimated cost of reading one member (``read_selection=cheapest``).

        Mounted tapes win outright (no robot exchange), then the lowest
        single-extent :func:`~repro.sim.scheduling.estimate_job_time`;
        down-but-recovering libraries are a last resort.
        """
        dispatcher = self.dispatchers[tape_id.library]
        library = dispatcher.library
        if not dispatcher.workers:
            return (2, 0.0)
        mounted = 0 if library.drive_holding(tape_id) is not None else 1
        estimate = estimate_job_time(
            TapeJob(tape_id, [extent]), library, planner=self.os.seek_planner
        )
        return (mounted, estimate)

    def _serve_redundant(
        self,
        request: Request,
        arrival_s: float,
        parent: Optional[int] = None,
        token: Optional[int] = None,
    ):
        """Serve via redundancy groups: route to least-loaded live members.

        Each fragment resolves to a :class:`~repro.catalog.RedundancyGroup`
        of which ``needed`` members must be read.  Selection is
        choice-of-d (:func:`repro.redundancy.dispatch.select_members`);
        jobs that abort on a failed library exclude their tape and the
        shortfall re-dispatches to surviving members, so a request only
        aborts once some group has no members left — at which point the
        bookkeeping (counters, empty-record metrics) matches the
        non-redundant abort path exactly.
        """
        os = self.os
        env = os.env
        trace_key = token if token is not None else request.id
        inst = self._redundancy_instruments()
        inst["requests"].inc()
        groups = os.index.redundancy_groups(request.object_ids)
        total_mb = sum(g.bytes_mb for g in groups)
        records: Dict[str, DriveServiceRecord] = {}
        all_djobs: List[_DispatchedJob] = []
        submitted_tapes: Set[TapeId] = set()
        #: Members still to read per group index.
        remaining = {i: g.needed for i, g in enumerate(groups)}
        #: Tapes already dispatched for a group (in flight or landed).
        used: Dict[int, Set[TapeId]] = {i: set() for i in range(len(groups))}
        #: Tapes that aborted a job of this request (never retried).
        excluded: Set[TapeId] = set()
        fallbacks = 0
        rounds = 0
        unservable = False
        cost_of = self._member_cost if os.read_selection == "cheapest" else None

        while True:
            tape_extents: Dict[TapeId, List[ObjectExtent]] = {}
            tape_groups: Dict[TapeId, List[int]] = {}
            for i, group in enumerate(groups):
                need = remaining[i]
                if need <= 0:
                    continue
                chosen = select_members(
                    _dc_replace(group, needed=need),
                    excluded | used[i],
                    self._dispatcher_live,
                    self._dispatcher_load,
                    cost_of=cost_of,
                )
                if chosen is None:
                    # Every member exhausted: the group — and with it the
                    # request — aborts, exactly as a non-redundant request
                    # whose only tape's library died.
                    unservable = True
                    inst["unservable"].inc()
                    remaining[i] = 0
                    continue
                fallbacks += count_fallbacks(chosen, group.needed)
                for tape_id, extent in chosen:
                    tape_extents.setdefault(tape_id, []).append(extent)
                    tape_groups.setdefault(tape_id, []).append(i)
                    used[i].add(tape_id)
            if not tape_extents:
                break
            if rounds:
                inst["retries"].inc()
            rounds += 1
            djobs = self._submit_tape_jobs(tape_extents, trace_key, parent, records)
            all_djobs.extend(djobs)
            submitted_tapes.update(tape_extents)
            yield env.all_of([dj.done for dj in djobs])
            for djob in djobs:
                if djob.aborted:
                    excluded.add(djob.job.tape_id)
                else:
                    for i in tape_groups.get(djob.job.tape_id, ()):
                        remaining[i] -= 1

        inst["fallbacks"].inc(fallbacks)
        inst["digest"].record(float(fallbacks))
        aborted = unservable
        if records:
            metrics = RequestMetrics.from_drive_records(
                request_id=request.id,
                size_mb=total_mb,
                num_tapes=len(submitted_tapes),
                records=list(records.values()),
                start_s=arrival_s,
                aborted=aborted,
            )
        else:
            metrics = RequestMetrics(
                request_id=request.id,
                size_mb=total_mb,
                response_s=env.now - arrival_s,
                seek_s=0.0,
                transfer_s=0.0,
                num_tapes=len(submitted_tapes),
                num_switches=0,
                num_drives=0,
                aborted=True,
            )
        starts = [dj.started_at for dj in all_djobs if dj.started_at is not None]
        started = min(starts) if starts else env.now
        record = QueuedRequestRecord(
            request_id=request.id,
            arrival_s=arrival_s,
            start_s=started,
            finish_s=env.now,
            size_mb=total_mb,
            aborted=aborted,
        )
        return record, metrics

    def check_drained(self) -> None:
        for dispatcher in self.dispatchers.values():
            unserved = len(dispatcher.pending) + len(dispatcher.inbox)
            if unserved:
                raise RuntimeError(
                    f"library {dispatcher.library.id} finished with "
                    f"{unserved} unserved tape jobs (no eligible drive survived?)"
                )


class _LibraryDispatcher:
    """Per-library job queue feeding persistent per-drive worker processes.

    Admission rules mirror the closed-loop planner, evaluated dynamically
    against live hardware state instead of once per request:

    * a job whose tape is mounted (or being mounted) waits for *that* drive
      — a cartridge exists once — and serves in place when it frees up;
    * an offline tape takes an idle empty switch drive first, otherwise
      displaces an idle drive's mounted tape in replacement-policy order,
      never displacing a tape that a queued job still needs;
    * pinned drives serve their mounted tape but never switch, unless no
      unpinned drive is left alive (degraded operation);
    * a failing drive's unserved extents re-queue at the front and the
      remaining drives pick them up.
    """

    def __init__(self, opensys: "OpenSystem", library: TapeLibrary) -> None:
        self.opensys = opensys
        self.env = opensys.env
        self.library = library
        self.trace = opensys.trace
        self.disk = opensys.disk
        self.replacement_policy = opensys.replacement_policy
        self.tape_priority = opensys.tape_priority
        self.seek_planner = opensys.seek_planner
        self.pending_gauge = opensys.registry.gauge(
            f"dispatch.L{library.id}.pending", unit="jobs"
        )
        self.pending: Deque[_DispatchedJob] = deque()
        #: Drive index -> job handed over but not yet picked up.
        self.inbox: Dict[int, _DispatchedJob] = {}
        #: Drive indices currently assigned/working (inbox or serving).
        self.busy: set = set()
        #: Idle workers parked on these events.
        self.wake: Dict[int, Event] = {}
        #: Tape -> drive index responsible for it right now (assignment
        #: through service; prevents two drives mounting one cartridge).
        self.committed: Dict[TapeId, int] = {}
        #: Drive indices with a failure interrupt in flight (guards against
        #: double interrupts when two fault processes hit one drive at once).
        self._dying: set = set()
        #: Drive index -> live restore-on-repair process (pinned drives).
        self._restores: Dict[int, object] = {}
        #: Parked restore processes, woken at every dispatch round.
        self._restore_waiters: List[Event] = []
        #: Set by :meth:`FaultInjector.arm` when a transient stream targets
        #: one of this library's drives (keeps the no-faults path branch-free
        #: beyond one attribute test).
        self.transients_armed = False
        #: Set by :meth:`FaultInjector.arm` when media faults are configured
        #: (gates the lost-tape admission check) / when a wear process
        #: targets one of this library's tapes (gates cycle accounting).
        #: Both keep the no-media-fault hot path to one attribute test.
        self.media_armed = False
        self.wear_armed = False
        #: Repair-priority policy, configured by the RepairManager when
        #: media faults are armed; ``None`` keeps plain FIFO admission.
        self.repair_policy: Optional[str] = None
        #: Fair-share token bucket (drive-seconds): accrues at
        #: ``share x live drives`` and is spent per admitted repair job.
        self._repair_share = 0.0
        self._repair_burst_s = 0.0
        self._repair_tokens = 0.0
        self._repair_tokens_at = 0.0
        #: Count of repair jobs currently in ``pending``: with zero, the
        #: dispatch loop skips policy ordering entirely, so an armed but
        #: fault-free run pays nothing per round.
        self._repair_pending = 0
        #: Batch-0 home tape of each pinned drive, captured at construction;
        #: repaired pinned drives restore this mount when feasible.
        self.pinned_home: Dict[int, TapeId] = {
            drive.id.index: drive.mounted.id
            for drive in library.drives
            if drive.pinned and drive.mounted is not None
        }
        self.workers = {
            drive.id.index: self.env.process(self._worker(drive))
            for drive in library.drives
            if not drive.failed
        }

    # -- admission ------------------------------------------------------
    def submit(self, djob: _DispatchedJob) -> None:
        if self.media_armed and self.library.tapes[djob.job.tape_id].lost:
            # The cartridge is destroyed: fail fast so redundant serves
            # fail over (and non-redundant requests abort) immediately.
            djob.aborted = True
            djob.error = f"tape {djob.job.tape_id} lost (media failure)"
            self._close_job_span(djob, drive_name="", aborted=True)
            djob.done.succeed()
            return
        self.pending.append(djob)
        if djob.repair:
            self._repair_pending += 1
        self._dispatch()
        if not self.workers:
            # No live drive at submit time: abort now unless a committed
            # repair will resurrect one (the job then waits for it).
            self._abort_unservable()

    def configure_repair(
        self, policy: str, share: float, burst_s: float
    ) -> None:
        """Arm the repair-priority policy (called by the RepairManager)."""
        self.repair_policy = policy
        self._repair_share = share
        self._repair_burst_s = burst_s
        self._repair_tokens = 0.0
        self._repair_tokens_at = self.env.now

    def _repair_order(self) -> List[_DispatchedJob]:
        """Pending queue in policy order (stable within each class)."""
        if self.repair_policy == "user-first":
            return sorted(self.pending, key=lambda dj: dj.repair)
        if self.repair_policy == "repair-first":
            return sorted(self.pending, key=lambda dj: not dj.repair)
        return list(self.pending)  # fair-share keeps FIFO order

    def _admit_repair(self, djob: _DispatchedJob) -> Optional[float]:
        """Token cost (drive-seconds) to run this repair job now, or ``None``.

        Only ``fair-share`` meters admission; the bucket accrues
        ``share x live drives`` drive-seconds per second (capped at the
        burst).  Work-conserving override: with no user job waiting, repair
        runs regardless of tokens — idle drives are never held back, and
        the environment can always drain (a token-starved repair job with
        user work pending always has a future completion event to wake it).
        """
        if self.repair_policy != "fair-share":
            return 0.0
        if not any(not dj.repair for dj in self.pending):
            return 0.0
        now = self.env.now
        if now > self._repair_tokens_at:
            rate = self._repair_share * max(1, len(self.workers))
            self._repair_tokens = min(
                self._repair_burst_s,
                self._repair_tokens + rate * (now - self._repair_tokens_at),
            )
            self._repair_tokens_at = now
        cost = estimate_job_time(djob.job, self.library, planner=self.seek_planner)
        if self._repair_tokens >= cost:
            return cost
        return None

    def _dispatch(self) -> None:
        if self.pending:
            # Round-invariant context, hoisted out of the assignment loop:
            # the live-drive pool and its degraded flag cannot change during
            # a synchronous dispatch round (workers only resume at a later
            # kernel step), and ``protected`` — tapes of pending jobs plus
            # committed tapes — is invariant under assignment because an
            # assigned job's tape moves from the pending side of the union
            # to the committed side.
            workers = self.workers
            live = [d for d in self.library.drives if d.id.index in workers]
            degraded = not any(not d.pinned for d in live)
            protected = {dj.job.tape_id for dj in self.pending} | set(self.committed)
            # Mounted-cartridge index in drive order (mounts only change
            # when a worker later resumes), replacing a per-pending-job
            # ``drive_holding`` scan with one dict lookup.  ``setdefault``
            # keeps the first-match semantics of the scan it replaces.
            mounted = {}
            for d in self.library.drives:
                tape = d.mounted
                if tape is not None:
                    mounted.setdefault(tape.id, d)
            while self.pending and self._try_assign(live, degraded, protected, mounted):
                pass
        self.pending_gauge.set(len(self.pending), self.env.now)
        if self._restore_waiters:
            waiters, self._restore_waiters = self._restore_waiters, []
            for event in waiters:
                if not event.triggered:
                    event.succeed()

    def _try_assign(self, live, degraded, protected, mounted) -> bool:
        """Assign the first admissible pending job; True if one was placed."""
        busy = self.busy
        idle = [d for d in live if d.id.index not in busy]
        if not idle:
            return False
        committed = self.committed
        workers = self.workers
        pending = (
            self._repair_order() if self._repair_pending else self.pending
        )
        for djob in pending:
            repair_cost = 0.0
            if djob.repair:
                cost = self._admit_repair(djob)
                if cost is None:
                    continue  # fair-share: not enough drive-second tokens yet
                repair_cost = cost
            tape_id = djob.job.tape_id
            holder_idx = committed.get(tape_id)
            if holder_idx is None:
                holder = mounted.get(tape_id)
                if holder is not None and holder.id.index in workers:
                    holder_idx = holder.id.index
            if holder_idx is not None:
                if holder_idx in self.busy:
                    continue  # the cartridge lives in a busy drive: wait for it
                chosen = self.library.drives[holder_idx]
            else:
                candidates = [d for d in idle if degraded or not d.pinned]
                empty = [d for d in candidates if d.mounted is None]
                if empty:
                    chosen = min(empty, key=lambda d: d.id.index)
                else:
                    displaceable = [
                        d for d in candidates if d.mounted.id not in protected
                    ]
                    if not displaceable:
                        continue
                    chosen = min(
                        displaceable,
                        key=lambda d: replacement_key(
                            self.replacement_policy, d, self.tape_priority
                        ),
                    )
            self.pending.remove(djob)
            if djob.repair:
                self._repair_pending -= 1
            if repair_cost:
                self._repair_tokens -= repair_cost
            self._assign(djob, chosen)
            return True
        return False

    def _assign(self, djob: _DispatchedJob, drive: TapeDrive) -> None:
        idx = drive.id.index
        self.busy.add(idx)
        self.committed[djob.job.tape_id] = idx
        self.inbox[idx] = djob
        wake = self.wake.pop(idx, None)
        if wake is not None:
            wake.succeed()

    # -- failure / repair hooks (driven by the FaultInjector) ------------
    def purge_lost_tape(self, tape_id: TapeId) -> None:
        """Abort queued / handed-over jobs targeting a destroyed cartridge.

        A job a worker is *already serving* completes (bytes were streaming
        before the loss; the loss manifests at the next mount attempt).
        Everything still queued or parked in a drive inbox fails now, so
        redundant requests fail over within the same dispatch round.
        """
        doomed = [dj for dj in self.pending if dj.job.tape_id == tape_id]
        for djob in doomed:
            self.pending.remove(djob)
            if djob.repair:
                self._repair_pending -= 1
        for idx in [
            i for i, dj in self.inbox.items() if dj.job.tape_id == tape_id
        ]:
            doomed.append(self.inbox.pop(idx))
            self.busy.discard(idx)
        self.committed.pop(tape_id, None)
        for djob in doomed:
            djob.aborted = True
            djob.error = f"tape {tape_id} lost (media failure)"
            self._close_job_span(djob, drive_name="", aborted=True)
            djob.done.succeed()
        if doomed:
            self._dispatch()

    def fail_drive(self, drive: TapeDrive, cause: str = "drive-failure") -> bool:
        """Interrupt the drive's worker (and any restore in flight).

        Returns False when the drive is already dead or dying, so two fault
        processes hitting one drive at the same instant cannot double-fail
        it (the loser must not later "repair" a failure it never caused).
        """
        idx = drive.id.index
        worker = self.workers.get(idx)
        if worker is None or not worker.is_alive or idx in self._dying:
            return False
        self._dying.add(idx)
        restore = self._restores.get(idx)
        if restore is not None and restore.is_alive:
            restore.interrupt(cause)
        worker.interrupt(cause)
        return True

    def repair_drive(self, drive: TapeDrive) -> bool:
        """Bring a failed drive back: spawn a fresh worker, rejoin the pool.

        Pinned drives additionally start a restore process that remounts
        their batch-0 home tape once the cartridge is back in its cell and
        the drive is idle — ending degraded parallel-batch mode.
        """
        idx = drive.id.index
        if idx in self.workers:
            return False
        drive.failed = False
        self.workers[idx] = self.env.process(self._worker(drive))
        injector = self.opensys.injector
        if injector is not None:
            injector.note_drive_up(str(drive.id))
        home = self.pinned_home.get(idx)
        if drive.pinned and home is not None and idx not in self._restores:
            self._restores[idx] = self.env.process(
                self._restore_pinned(drive, home)
            )
        self._dispatch()
        return True

    def _restore_pinned(self, drive: TapeDrive, home: TapeId):
        """Remount a repaired pinned drive's home tape when feasible.

        Waits (woken at every dispatch round) until the drive is idle and
        the home cartridge is reachable: either back in its cell, or parked
        in an *idle* switch drive that served it in degraded mode — then
        it is reclaimed (rewind + robot unload back to the cell) before the
        normal switch.  Queued jobs always win ties: the restore only
        claims drives nothing is assigned to.
        """
        env = self.env
        idx = drive.id.index
        try:
            while True:
                if drive.failed or idx not in self.workers:
                    return
                holder = self.library.drive_holding(home)
                if holder is drive:
                    return  # already home (e.g. a queued job remounted it)
                self_idle = (
                    home not in self.committed
                    and idx not in self.busy
                    and idx not in self.inbox
                )
                holder_idx = holder.id.index if holder is not None else None
                can_reclaim = holder is None or (
                    holder_idx in self.workers
                    and holder_idx not in self.busy
                    and holder_idx not in self.inbox
                )
                if self_idle and can_reclaim:
                    self.busy.add(idx)
                    if holder_idx is not None:
                        self.busy.add(holder_idx)
                    self.committed[home] = idx
                    record = DriveServiceRecord(str(drive.id))
                    try:
                        if holder is not None:
                            yield from self._eject(holder, home)
                        yield from _switch_to(
                            env, self.library, drive, home, record, self.trace
                        )
                    finally:
                        self.busy.discard(idx)
                        if holder_idx is not None:
                            self.busy.discard(holder_idx)
                        if self.committed.get(home) == idx:
                            del self.committed[home]
                    return
                event = env.event()
                self._restore_waiters.append(event)
                yield event
        except Interrupt:
            return  # the drive failed again mid-restore; worker cleans up
        finally:
            self._restores.pop(idx, None)
            self._dispatch()

    def _eject(self, holder: TapeDrive, tape_id: TapeId):
        """Rewind + robot unload: return a reclaimed cartridge to its cell."""
        env = self.env
        name = str(holder.id)
        robot = self.library.robot
        rewind = holder.rewind_time()
        if rewind > 0:
            with self.trace.span(env, "rewind", drive=name):
                yield env.timeout(rewind)
        requested_at = env.now
        with robot.resource.request() as grant:
            yield grant
            if env.now > requested_at:
                self.trace.record(
                    "robot_wait", requested_at, env.now, drive=name
                )
            if holder.mounted is None or holder.mounted.id != tape_id:
                return  # the holder failed (and ejected) while we waited
            with self.trace.span(env, "unload", drive=name):
                yield env.timeout(holder.unload_time)
            with self.trace.span(env, "robot_exchange", drive=name):
                yield env.timeout(robot.move_time)
            # The holder may have failed mid-eject: its worker already
            # pulled the cartridge back to the cell, which is what we want.
            if holder.mounted is not None and holder.mounted.id == tape_id:
                holder.unmount()

    def _abort_unservable(self) -> None:
        """Fail every queued job when no drive can ever serve it.

        Called when the last live drive leaves the pool (and at submit into
        a dead library).  Jobs survive only if the fault injector has a
        *committed* repair for one of this library's drives — a future
        stochastic failure/repair cycle cannot resurrect a drive that died
        for another reason, so waiting on one would hang the environment.
        """
        if self.workers:
            return
        injector = self.opensys.injector
        if injector is not None and injector.will_recover(self.library):
            return
        doomed = list(self.inbox.values()) + list(self.pending)
        self.inbox.clear()
        self.pending.clear()
        self._repair_pending = 0
        for djob in doomed:
            self.committed.pop(djob.job.tape_id, None)
            djob.aborted = True
            djob.error = (
                f"library {self.library.id}: all drives failed, none pending "
                "repair"
            )
            self._close_job_span(djob, drive_name="", aborted=True)
            djob.done.succeed()
        self.pending_gauge.set(0, self.env.now)

    # -- the drive worker ------------------------------------------------
    def _worker(self, drive: TapeDrive):
        """Persistent drive process: serve dispatched jobs until failure.

        Lives for the whole session (re-used across requests); parks on a
        wake event while idle, so a drained environment simply leaves it
        suspended.
        """
        env = self.env
        trace = self.trace
        idx = drive.id.index
        drive_name = str(drive.id)
        djob: Optional[_DispatchedJob] = None
        try:
            while True:
                while idx not in self.inbox:
                    event = env.event()
                    self.wake[idx] = event
                    yield event
                djob = self.inbox.pop(idx)
                job = djob.job
                record = djob.records.setdefault(
                    drive_name, DriveServiceRecord(drive_name)
                )
                if djob.started_at is None:
                    djob.started_at = env.now
                if env.now > djob.submitted_at:
                    trace.record(
                        "dispatch_wait", djob.submitted_at, env.now,
                        parent=djob.span_id, request=djob.request_id,
                        drive=drive_name,
                    )
                injector = self.opensys.injector
                mounted_cycle = 0.0
                if drive.mounted is None or drive.mounted.id != job.tape_id:
                    mounted_cycle = 1.0
                    if self.transients_armed:
                        yield from injector.transient_gate(
                            drive_name, "mount",
                            parent=djob.span_id, request=djob.request_id,
                        )
                    yield from _switch_to(
                        env, self.library, drive, job.tape_id, record, trace,
                        parent=djob.span_id, request=djob.request_id,
                    )
                if self.transients_armed:
                    yield from injector.transient_gate(
                        drive_name, "read",
                        parent=djob.span_id, request=djob.request_id,
                    )
                yield from _serve_job(
                    env, drive, job, record, trace, self.disk,
                    parent=djob.span_id, request=djob.request_id,
                    planner=self.seek_planner,
                )
                record.completion_s = env.now
                self.committed.pop(job.tape_id, None)
                self.busy.discard(idx)
                finished, djob = djob, None
                self._close_job_span(finished, drive_name)
                finished.done.succeed()
                if self.wear_armed:
                    # Media wear is charged at job boundaries: one cycle per
                    # mount plus one per extent seek.  A wear death here
                    # purges queued jobs and wakes the repair manager before
                    # the next dispatch round.
                    injector.note_tape_cycles(
                        job.tape_id, mounted_cycle + float(len(job.extents))
                    )
                self._dispatch()
        except (Interrupt, FaultEscalation) as cause:
            drive.failed = True
            trace.record(
                "drive_failure", env.now, env.now,
                parent=djob.span_id if djob is not None else None,
                request=djob.request_id if djob is not None else None,
                drive=drive_name, cause=str(cause),
            )
            if drive.mounted is not None:
                drive.unmount()  # cartridge pulled back to its cell
            self.workers.pop(idx, None)
            self.wake.pop(idx, None)
            self.busy.discard(idx)
            self._dying.discard(idx)
            injector = self.opensys.injector
            if injector is not None:
                injector.note_drive_down(drive_name)
            orphan = self.inbox.pop(idx, None) or djob
            if orphan is not None:
                self.committed.pop(orphan.job.tape_id, None)
                record = orphan.records.get(drive_name)
                if record is not None:
                    record.completion_s = env.now
                if orphan.job.is_done:
                    self._close_job_span(orphan, drive_name)
                    orphan.done.succeed()
                else:
                    # The in-flight extent restarts from scratch elsewhere;
                    # the job keeps its reserved span id, so the rescuing
                    # drive's stages stay in the same causal subtree and the
                    # span still closes exactly once — when the job lands.
                    orphan.job = orphan.job.split_remaining()
                    self.pending.appendleft(orphan)
                    if orphan.repair:
                        self._repair_pending += 1
            self._dispatch()
            # If this was the library's last drive and no repair is
            # committed, the queue can never drain: fail it now.
            self._abort_unservable()

    def _close_job_span(
        self, djob: _DispatchedJob, drive_name: str, aborted: bool = False
    ) -> None:
        """Close the job's reserved ``tape_job`` span (exactly once)."""
        attrs = {"tape": str(djob.job.tape_id), "drive": drive_name}
        if aborted:
            attrs["aborted"] = True
            attrs["error"] = djob.error
        self.trace.record_reserved(
            djob.span_id,
            "tape_job",
            djob.submitted_at,
            self.env.now,
            parent=djob.parent_id,
            request=djob.request_id,
            **attrs,
        )


#: Registered request-scheduling policies (name -> zero-arg factory).
SCHEDULING_POLICIES: Dict[str, Callable[[], object]] = {
    SerialFCFSPolicy.name: SerialFCFSPolicy,
    ConcurrentPolicy.name: ConcurrentPolicy,
}

#: Degraded-read member-selection strategies (``read_selection=``).
READ_SELECTIONS = ("least-loaded", "cheapest")


def available_scheduling_policies() -> Tuple[str, ...]:
    return tuple(sorted(SCHEDULING_POLICIES))


# ---------------------------------------------------------------------------
# The open system itself


class OpenSystem:
    """A placed tape system serving an open arrival stream on one clock.

    Created via :meth:`repro.sim.session.SimulationSession.open` (or
    directly).  The environment, robot bindings, disk-stream cap, resource
    monitors, and policy state persist across :meth:`run` calls, so several
    arrival batches can share one warmed-up system.

    Parameters
    ----------
    session:
        The placed :class:`~repro.sim.session.SimulationSession`.
    policy:
        A name from :data:`SCHEDULING_POLICIES` (default ``"concurrent"``).
    failures:
        Optional drive name -> absolute failure time map — legacy sugar for
        one-shot permanent :class:`~repro.sim.faults.DriveFailure` specs
        (``concurrent`` policy only).
    faults:
        Optional iterable of :class:`~repro.sim.faults.FaultSpec`s, armed
        at each :meth:`run` (``concurrent`` policy only).  Both fault specs
        and the legacy map are validated here, before any simulation runs.
    fault_seed:
        Root seed for the fault processes' random substreams (independent
        of the arrival-stream seed passed to :meth:`run`).
    seek_planner:
        Within-tape retrieval-order strategy — a registered name, a
        :class:`~repro.sim.seekplanner.SeekPlanner` instance, or ``None``
        to inherit the session's planner (itself defaulting to
        ``greedy-sweep``).
    repair_policy:
        How rebuild traffic competes with user restores when media faults
        are armed — a name from
        :data:`repro.sim.repair.REPAIR_POLICIES` (default ``user-first``).
        Validated even without media faults; only armed with them.
    read_selection:
        How degraded reads pick their ``needed`` members: ``least-loaded``
        (the PR 8 default, bit-identical) or ``cheapest`` (mounted tape
        first, then lowest estimated job time).
    scheduler:
        Event-scheduler selection for the environment — a name from
        :data:`repro.des.scheduler.SCHEDULERS` (``"heapq"``,
        ``"calendar"``) or ``None`` to consult ``REPRO_SCHEDULER``.
        Purely a throughput knob: every scheduler pops in the same total
        order, so results are bit-identical.
    shard_workers:
        Run one DES environment per round-robin library shard in this
        many forked workers (``concurrent`` policy, no faults, no
        redundancy, no disk cap — see :mod:`repro.sim.sharding`; other
        configurations warn and fall back).  ``1`` (the default) is
        today's single-environment path, seed-for-seed.
    shard_filter:
        Internal — library ids this instance submits jobs for (shard
        children only).  All other libraries' jobs are skipped while the
        arrival stream and request bookkeeping stay identical.
    """

    def __init__(
        self,
        session,
        policy: str = "concurrent",
        failures: Optional[Dict[str, float]] = None,
        faults: Optional[Tuple[FaultSpec, ...]] = None,
        fault_seed: int = 0,
        seek_planner: Union[None, str, SeekPlanner] = None,
        repair_policy: Optional[str] = None,
        read_selection: str = "least-loaded",
        scheduler: Union[None, str, EventScheduler] = None,
        shard_workers: int = 1,
        shard_filter: Optional[Tuple[int, ...]] = None,
    ) -> None:
        self.session = session
        self.system = session.system
        if seek_planner is None:
            seek_planner = getattr(session, "seek_planner", None)
        self.seek_planner = resolve_seek_planner(seek_planner)
        # Share the session's trace when it enabled one (closed-loop spans
        # and open-system spans then interleave with distinct ids); otherwise
        # trace this system by default — REPRO_TRACE=0 still disables it.
        self.trace = session.trace if session.trace.enabled else Trace()
        self.replacement_policy = session.replacement_policy
        self.tape_priority = session.placement.tape_priority
        self.failures = dict(failures or {})

        try:
            factory = SCHEDULING_POLICIES[policy]
        except KeyError:
            known = ", ".join(available_scheduling_policies())
            raise ValueError(
                f"unknown scheduling policy {policy!r}; known: {known}"
            ) from None
        self.fault_specs: Tuple[FaultSpec, ...] = tuple(faults or ()) + (
            failures_to_specs(self.failures)
        )
        for spec in self.fault_specs:
            spec.validate(self.system)
        if self.fault_specs and not getattr(factory, "supports_faults", False):
            raise ValueError(
                f"fault injection requires the 'concurrent' policy, not "
                f"{policy!r} (it arms no recovery hooks between requests)"
            )

        if int(shard_workers) != shard_workers or shard_workers < 1:
            raise ValueError(f"shard_workers must be an integer >= 1, got {shard_workers}")
        self.shard_workers = int(shard_workers)
        #: Library ids this instance owns (shard children only; None = all).
        self.shard_filter: Optional[frozenset] = (
            frozenset(shard_filter) if shard_filter is not None else None
        )
        #: Shard children publish per-token payloads here for the merge
        #: (:mod:`repro.sim.sharding`); None costs one check per request.
        self._shard_capture: Optional[Dict[int, tuple]] = None
        self.scheduler_spec = scheduler
        self.env = Environment(scheduler=scheduler)
        self._ran = False
        self._expected = 0

        # Registry first: policy binding and monitor attachment publish
        # instruments into it.
        self.registry = MetricsRegistry()
        self._arrival_seq = 0
        self._in_flight = self.registry.gauge("requests.in_flight", unit="requests")
        self._arrived = self.registry.counter("requests.arrived", unit="requests")
        self._completed = self.registry.counter("requests.completed", unit="requests")
        self._aborted = self.registry.counter("requests.aborted", unit="requests")
        self._switches = self.registry.counter("tape.switches", unit="switches")
        # Per-request latency digests: mergeable sketches whose fleet-level
        # p50/p95/p99 compose exactly across sweep workers (see
        # :mod:`repro.obs.digest`).  One log + one dict increment per stage
        # per completed request.
        self._d_sojourn = self.registry.digest("latency.sojourn_s", unit="s")
        self._d_seek = self.registry.digest("latency.seek_s", unit="s")
        self._d_switch = self.registry.digest("latency.switch_s", unit="s")
        self._d_transfer = self.registry.digest("latency.transfer_s", unit="s")
        #: Optional per-completion hook ``hook(opensys, (record, metrics))``,
        #: fired after a request's instruments settle.  The sweep engine
        #: wires a throttled fleet-feed emitter here so long points stream
        #: progress mid-run; when unset the cost is one None check.
        self.on_complete: Optional[Callable[["OpenSystem", _Outcome], None]] = None

        streams = self.system.spec.disk_streams
        self.disk = Resource(self.env, streams) if streams is not None else None
        self.monitors: Dict[str, ResourceUsageMonitor] = {}
        for library in self.system.libraries:
            library.robot.bind(self.env)
            name = f"L{library.id}.robot"
            self.monitors[name] = ResourceUsageMonitor(
                name, registry=self.registry
            ).attach(library.robot.resource)
        if self.disk is not None:
            self.monitors["disk"] = ResourceUsageMonitor(
                "disk", registry=self.registry
            ).attach(self.disk)

        if read_selection not in READ_SELECTIONS:
            raise ValueError(
                f"unknown read selection {read_selection!r}; known: "
                + ", ".join(READ_SELECTIONS)
            )
        self.read_selection = read_selection

        self.policy_name = policy
        self.injector: Optional[FaultInjector] = None
        self.policy = factory()
        self.policy.bind(self)
        if self.fault_specs:
            self.injector = FaultInjector(self.fault_specs, seed=fault_seed).bind(self)

        # The repair manager exists only when media can actually be lost:
        # its repair.* instruments and groups_at_risk gauge then never
        # appear in drive-fault-only or fault-free runs (registry parity).
        from .repair import REPAIR_POLICIES, RepairManager

        if repair_policy is not None and repair_policy not in REPAIR_POLICIES:
            raise ValueError(
                f"unknown repair policy {repair_policy!r}; known: "
                + ", ".join(REPAIR_POLICIES)
            )
        self.repair: Optional[RepairManager] = None
        if self.injector is not None and self.injector.has_media_faults:
            self.repair = RepairManager(self, policy=repair_policy or "user-first")

    @property
    def index(self):
        """The session's live location index (tracks ``session.reset()``)."""
        return self.session.index

    def run(
        self,
        arrival_rate_per_hour: float,
        num_arrivals: int = 100,
        seed: int = 0,
        reset: bool = True,
        sample_period_s: Optional[float] = None,
    ) -> OpenSystemResult:
        """Inject a Poisson stream of Zipf-sampled requests; drain; report.

        Arrival sampling matches
        :func:`~repro.sim.queueing.simulate_fcfs_queue` draw-for-draw, so
        the same seed produces the same arrival times and request sequence.
        Subsequent calls continue on the same clock (pass ``reset=False``).
        ``sample_period_s`` installs a periodic registry snapshot sampler
        on the shared clock (it stops re-arming once the system drains).
        """
        if arrival_rate_per_hour <= 0:
            raise ValueError(
                f"arrival rate must be positive, got {arrival_rate_per_hour}"
            )
        if num_arrivals <= 0:
            raise ValueError(f"num_arrivals must be positive, got {num_arrivals}")
        if self.shard_workers > 1 and self.shard_filter is None:
            from .sharding import maybe_run_sharded

            result = maybe_run_sharded(
                self, arrival_rate_per_hour, num_arrivals, seed,
                reset=reset, sample_period_s=sample_period_s,
            )
            if result is not None:
                return result
            # Unshardable configuration: warned, continue single-environment.
        # Pause automatic cyclic GC for the whole stream, not just the
        # inner ``env.run()`` loop (which pauses on its own and leaves a
        # pre-disabled GC alone): ``session.reset()`` and the setup /
        # finalization around the event loop allocate enough to trigger
        # full-heap collections that rescan the persistent workload graph —
        # inside any wall/CPU measurement a caller wraps around this call.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            if reset:
                if self._ran:
                    raise ValueError(
                        "reset=True is only valid for the first run on this "
                        "OpenSystem (the clock and hardware state have advanced); "
                        "pass reset=False to continue the stream"
                    )
                self.session.reset()
            self._ran = True
            self._expected = num_arrivals

            rng = np.random.default_rng(seed)
            inter = rng.exponential(3600.0 / arrival_rate_per_hour, size=num_arrivals)
            arrivals = np.cumsum(inter) + self.env.now
            sampled = self.session.workload.requests.sample(rng, num_arrivals)

            outcomes: List[_Outcome] = []

            def arrival_process():
                for arrival, request in zip(arrivals, sampled):
                    delay = float(arrival) - self.env.now
                    if delay > 0:
                        yield self.env.timeout(delay)
                    self.env.process(
                        self._request_runner(request, float(arrival), outcomes)
                    )

            self.env.process(arrival_process())
            if self.injector is not None:
                self.injector.arm()
            if sample_period_s is not None:
                self.registry.install_sampler(self.env, sample_period_s)
            self.env.run()
            self.policy.check_drained()
            if self.injector is not None:
                self.injector.finalize()
            self.registry.snapshot(self.env.now)
        finally:
            if gc_was_enabled:
                gc.enable()
        if len(outcomes) != num_arrivals:
            raise RuntimeError(
                f"{num_arrivals - len(outcomes)} requests never completed "
                "(environment drained early)"
            )

        num_drives = sum(len(library.drives) for library in self.system.libraries)
        outcomes.sort(key=lambda pair: pair[0].arrival_s)
        result = OpenSystemResult(
            scheme=self.session.scheme_name,
            arrival_rate_per_hour=arrival_rate_per_hour,
            records=[record for record, _ in outcomes],
            policy=self.policy_name,
            metrics=[metrics for _, metrics in outcomes],
            resources={name: mon.summary() for name, mon in self.monitors.items()},
            horizon_s=self.env.now,
            trace=self.trace,
            registry=self.registry,
            faults=(
                self.injector.summary(self.env.now, num_drives=num_drives)
                if self.injector is not None
                else {}
            ),
            repair=(
                self.repair.summary(self.env.now)
                if self.repair is not None
                else {}
            ),
        )
        # Publish availability in its horizon-weighted mergeable form so a
        # registry export (metrics JSONL) alone can reconstruct fleet
        # availability.  Set-to-current (not +=) keeps continued streams
        # (reset=False) and snapshot_of_result's overwrite consistent.
        horizon_c = self.registry.counter("fleet.horizon_s", unit="s")
        horizon_c.inc(result.horizon_s - horizon_c.value)
        avail_c = self.registry.counter("fleet.availability_weighted_s", unit="s")
        avail_c.inc(result.horizon_s * result.availability - avail_c.value)
        return result

    def _request_runner(self, request: Request, arrival_s: float, sink: List[_Outcome]):
        # Catalog requests can be sampled repeatedly, so the span tree is
        # keyed by a unique per-arrival token; the catalog id rides along as
        # a root-span attribute.
        token = self._arrival_seq
        self._arrival_seq += 1
        self._arrived.inc()
        self._in_flight.add(1, self.env.now)
        with self.trace.span(
            self.env, "request", request=token,
            catalog_id=request.id, policy=self.policy_name,
        ) as ctx:
            outcome = yield from self.policy.serve(
                request, arrival_s, parent=ctx.id, token=token
            )
        self._in_flight.add(-1, self.env.now)
        self._completed.inc()
        if outcome[0].aborted:
            self._aborted.inc()
        metrics = outcome[1]
        self._switches.inc(metrics.num_switches)
        # switch_s is derived (response - seek - transfer) and can round a
        # hair below zero; digests are non-negative by contract.
        self._d_sojourn.record(max(0.0, metrics.response_s))
        self._d_seek.record(max(0.0, metrics.seek_s))
        self._d_switch.record(max(0.0, metrics.switch_s))
        self._d_transfer.record(max(0.0, metrics.transfer_s))
        sink.append(outcome)
        if self.on_complete is not None:
            self.on_complete(self, outcome)
        if self.injector is not None and len(sink) >= self._expected:
            # Last planned arrival landed: stop recurring fault processes so
            # the environment drains instead of ticking MTBF clocks forever.
            self.injector.stand_down()

    def __repr__(self) -> str:
        return (
            f"<OpenSystem {self.policy_name} on {self.session.scheme_name}, "
            f"t={self.env.now:.1f}s>"
        )


def simulate_open_system(
    session,
    arrival_rate_per_hour: float,
    num_arrivals: int = 100,
    seed: int = 0,
    policy: str = "concurrent",
    failures: Optional[Dict[str, float]] = None,
    faults: Optional[Tuple[FaultSpec, ...]] = None,
    fault_seed: int = 0,
    sample_period_s: Optional[float] = None,
    seek_planner: Union[None, str, SeekPlanner] = None,
    repair_policy: Optional[str] = None,
    read_selection: str = "least-loaded",
    scheduler: Union[None, str, EventScheduler] = None,
    shard_workers: int = 1,
) -> OpenSystemResult:
    """One-shot convenience: build an :class:`OpenSystem`, run one stream."""
    return OpenSystem(
        session, policy=policy, failures=failures, faults=faults,
        fault_seed=fault_seed, seek_planner=seek_planner,
        repair_policy=repair_policy, read_selection=read_selection,
        scheduler=scheduler, shard_workers=shard_workers,
    ).run(
        arrival_rate_per_hour,
        num_arrivals=num_arrivals,
        seed=seed,
        sample_period_s=sample_period_s,
    )
