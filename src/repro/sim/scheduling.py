"""Per-request scheduling decisions (which drive serves which tape, when).

These are pure functions over hardware state so the policy is testable
without running the event loop:

* tapes already mounted with requested objects are served in place;
* mounted, switchable tapes *without* requested objects become switch
  targets immediately ("the tape switch operation happens to any tape drive
  containing no requested objects");
* offline tapes with requested objects queue longest-processing-time first
  and free switch drives pull from the queue greedily;
* when more drives are eligible than needed, mounted tapes are displaced in
  least-popular-first order (the replacement policy of [11] that the paper
  adopts for the always-mounted analysis);
* pinned drives (batch 0 of parallel batch placement) never switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Mapping, Optional, Sequence

from ..hardware import ObjectExtent, TapeLibrary, TapeId
from .replacement import replacement_key
from .seekplanner import SeekPlanner, resolve_seek_planner

__all__ = [
    "TapeJob",
    "LibraryPlan",
    "estimate_job_time",
    "build_library_plan",
    "partition_libraries",
]


def partition_libraries(num_libraries: int, num_shards: int) -> List[List[int]]:
    """Round-robin library ids over ``num_shards`` DES shards.

    Library ``j`` lands in shard ``j % num_shards``, so shard loads stay
    balanced under the placement layer's id-ordered striping and the
    assignment is a pure function of the two counts — sharded results can
    never depend on discovery order.  Empty shards are never produced:
    callers clamp ``num_shards`` to ``num_libraries`` first.
    """
    if num_libraries < 1:
        raise ValueError(f"num_libraries must be >= 1, got {num_libraries}")
    if not 1 <= num_shards <= num_libraries:
        raise ValueError(
            f"num_shards must be in [1, {num_libraries}], got {num_shards}"
        )
    shards: List[List[int]] = [[] for _ in range(num_shards)]
    for library_id in range(num_libraries):
        shards[library_id % num_shards].append(library_id)
    return shards


@dataclass
class TapeJob:
    """All requested extents residing on one tape.

    ``completed`` is a completion *index* into ``extents``: the engine
    reorders ``extents`` into sweep order when service begins and advances
    the index as each extent finishes, so an interrupting drive failure can
    see what is left in O(1) instead of scanning-and-removing per extent.
    """

    tape_id: TapeId
    extents: List[ObjectExtent]
    completed: int = 0

    @property
    def bytes_mb(self) -> float:
        return sum(e.size_mb for e in self.extents)

    @property
    def remaining_extents(self) -> List[ObjectExtent]:
        """Extents not yet fully read (the in-flight one counts as unread)."""
        return self.extents[self.completed :]

    @property
    def is_done(self) -> bool:
        return self.completed >= len(self.extents)

    def begin(self, ordered: List[ObjectExtent]) -> None:
        """Install the sweep order chosen by the engine and reset progress."""
        self.extents = ordered
        self.completed = 0

    def advance(self) -> None:
        """Mark the next extent in ``extents`` as fully read."""
        self.completed += 1

    def split_remaining(self) -> "TapeJob":
        """A fresh job holding only the unserved extents (for re-queueing)."""
        return TapeJob(self.tape_id, list(self.remaining_extents))

    def __len__(self) -> int:
        return len(self.extents)


@dataclass
class LibraryPlan:
    """The static part of one library's work for one request."""

    library_id: int
    #: (drive index, job) for tapes already on a drive.
    serving: List[tuple] = field(default_factory=list)
    #: Jobs needing a mount, LPT-first.
    offline: List[TapeJob] = field(default_factory=list)
    #: Drive indices eligible to switch, in preferred start order.
    switch_order: List[int] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        return not self.serving and not self.offline


def estimate_job_time(
    job: TapeJob,
    library: TapeLibrary,
    head_mb: float = 0.0,
    planner: Optional[SeekPlanner] = None,
) -> float:
    """Service-time estimate used only for LPT ordering (seek + transfer).

    The seek part is priced by the same planner the engine will execute
    with, against the ``TapeSpec`` of the drive actually holding the job's
    tape when it is mounted (drives in a heterogeneous library may position
    at different rates); offline tapes fall back to the library's default
    spec since their drive assignment is not yet known.
    """
    drive = library.drive_holding(job.tape_id)
    tape_spec = drive.tape_spec if drive is not None else library.spec.tape
    _, seek = resolve_seek_planner(planner).plan(job.extents, head_mb, tape_spec)
    return seek + library.spec.drive.transfer_time(job.bytes_mb)


def build_library_plan(
    library: TapeLibrary,
    jobs_by_tape: Mapping[TapeId, Sequence[ObjectExtent]],
    tape_priority: Mapping[TapeId, float],
    replacement_policy: str = "least_popular",
    planner: Optional[SeekPlanner] = None,
) -> LibraryPlan:
    """Split one library's jobs into in-place serves and a switch queue."""
    plan = LibraryPlan(library_id=library.id)
    local_jobs = {
        tid: TapeJob(tid, sorted(extents, key=lambda e: e.start_mb))
        for tid, extents in jobs_by_tape.items()
        if tid.library == library.id
    }

    mounted = library.mounted_tapes()
    serving_drives: List[int] = []
    for tid, job in local_jobs.items():
        drive = mounted.get(tid)
        if drive is not None:
            plan.serving.append((drive.id.index, job))
            serving_drives.append(drive.id.index)

    offline = [job for tid, job in local_jobs.items() if tid not in mounted]
    offline.sort(
        key=lambda job: (-estimate_job_time(job, library, planner=planner), job.tape_id)
    )
    plan.offline = offline

    if offline:
        plan.switch_order = _switch_drive_order(
            library, set(local_jobs), tape_priority, replacement_policy
        )
    return plan


def _switch_drive_order(
    library: TapeLibrary,
    requested_tapes: set,
    tape_priority: Mapping[TapeId, float],
    replacement_policy: str,
) -> List[int]:
    """Eligible switch drives, in the order they should take queued tapes.

    1. empty switchable drives (nothing to displace);
    2. switchable drives whose mounted tape holds no requested object, in
       replacement-policy order (default: least popular displaced first);
    3. switchable drives currently serving (they join once done — placing
       them last keeps their in-place service uninterrupted).
    """
    def classify(include_pinned: bool) -> List[int]:
        empty: List[int] = []
        displaceable: List[tuple] = []
        busy: List[int] = []
        for drive in library.drives:
            if drive.failed or (drive.pinned and not include_pinned):
                continue
            if drive.mounted is None:
                empty.append(drive.id.index)
            elif drive.mounted.id in requested_tapes:
                busy.append(drive.id.index)
            else:
                key = replacement_key(replacement_policy, drive, tape_priority)
                displaceable.append((key, drive.id.index))
        displaceable.sort()
        return empty + [idx for _, idx in displaceable] + list(busy)

    order = classify(include_pinned=False)
    if not order:
        # Degraded operation: every designated switch drive has failed.
        # Pinning is a placement policy, not physics — surviving pinned
        # drives serve as the last-resort switch pool.
        order = classify(include_pinned=True)
    return order
