"""Closed-form service-time computations for restricted cases.

These duplicate the engine's arithmetic *without* the event loop and serve
as independent oracles in tests:

* :func:`mounted_response` — a request whose tapes are all mounted needs no
  robot and no switching, so each drive's completion is simply its
  planner's seek plus transfer time, all starting at t=0; the DES must
  agree to float precision.
* :func:`uncontended_switch_time` — the drive-side cost of one switch with
  a free robot; a lower bound for any simulated switch.
"""

from __future__ import annotations

from typing import Union

from ..catalog import LocationIndex, Request
from ..hardware import SystemSpec, TapeSystem
from .metrics import DriveServiceRecord, RequestMetrics
from .seekplanner import SeekPlanner, resolve_seek_planner

__all__ = ["mounted_response", "uncontended_switch_time"]


def mounted_response(
    system: TapeSystem,
    index: LocationIndex,
    request: Request,
    seek_planner: Union[None, str, SeekPlanner] = None,
) -> RequestMetrics:
    """Analytic response for a request served entirely from mounted tapes.

    Raises ``ValueError`` if any requested tape is offline.  Does not mutate
    head positions (pure computation).  ``seek_planner`` must match the
    engine's configured planner for the oracle to agree with the DES.
    """
    planner = resolve_seek_planner(seek_planner)
    jobs = index.group_by_tape(request.object_ids)
    mounted = system.mounted_tape_ids()
    records = []
    total_mb = 0.0
    for tape_id, extents in jobs.items():
        drive = mounted.get(tape_id)
        if drive is None:
            raise ValueError(f"tape {tape_id} is not mounted; analytic model does not apply")
        tape = system.tape(tape_id)
        _, seek = planner.plan(extents, tape.head_mb, drive.tape_spec)
        transfer = drive.transfer_time(sum(e.size_mb for e in extents))
        total_mb += sum(e.size_mb for e in extents)
        records.append(
            DriveServiceRecord(
                drive=str(drive.id),
                completion_s=seek + transfer,
                seek_s=seek,
                transfer_s=transfer,
                bytes_mb=sum(e.size_mb for e in extents),
            )
        )
    return RequestMetrics.from_drive_records(
        request_id=request.id, size_mb=total_mb, num_tapes=len(jobs), records=records
    )


def uncontended_switch_time(spec: SystemSpec, head_mb: float = 0.0) -> float:
    """Drive-side duration of one tape switch with an idle robot.

    rewind(head) + unload + robot exchange (2 moves) + load-and-thread.
    """
    lib = spec.library
    rewind = lib.tape.locate_time(head_mb, 0.0)
    return rewind + lib.drive.unload_s + 2.0 * lib.cell_to_drive_s + lib.drive.load_s
