"""Replacement policies: which mounted tape gets displaced first.

The paper adopts the least-popular policy of Christodoulakis et al. [11]
("such a placement combined with the least popular replacement policy
minimizes the number of tape switches"); alternatives are provided for the
policy-comparison study (``benchmarks/bench_replacement.py``):

``least_popular``  displace the mounted tape with the smallest accumulated
                   access probability (the paper's default);
``most_popular``   adversarial inverse (diagnostic baseline);
``oldest_mount``   FIFO by mount order — classic buffer replacement, blind
                   to popularity;
``newest_mount``   LIFO by mount order (diagnostic baseline);
``slot_order``     deterministic by drive index — what a naive scheduler
                   with no bookkeeping would do.

A policy maps an eligible drive to a sort key; *lower keys are displaced
first*.  Ties break on the drive index for determinism.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Tuple

from ..hardware import TapeDrive, TapeId

__all__ = ["REPLACEMENT_POLICIES", "replacement_key", "available_policies"]

PolicyKey = Callable[[TapeDrive, Mapping[TapeId, float]], float]


def _least_popular(drive: TapeDrive, priority: Mapping[TapeId, float]) -> float:
    assert drive.mounted is not None
    return priority.get(drive.mounted.id, 0.0)


def _most_popular(drive: TapeDrive, priority: Mapping[TapeId, float]) -> float:
    return -_least_popular(drive, priority)


def _oldest_mount(drive: TapeDrive, priority: Mapping[TapeId, float]) -> float:
    return float(drive.mount_serial)


def _newest_mount(drive: TapeDrive, priority: Mapping[TapeId, float]) -> float:
    return -float(drive.mount_serial)


def _slot_order(drive: TapeDrive, priority: Mapping[TapeId, float]) -> float:
    return float(drive.id.index)


REPLACEMENT_POLICIES: Dict[str, PolicyKey] = {
    "least_popular": _least_popular,
    "most_popular": _most_popular,
    "oldest_mount": _oldest_mount,
    "newest_mount": _newest_mount,
    "slot_order": _slot_order,
}


def available_policies() -> Tuple[str, ...]:
    return tuple(sorted(REPLACEMENT_POLICIES))


def replacement_key(
    policy: str, drive: TapeDrive, priority: Mapping[TapeId, float]
) -> Tuple[float, int]:
    """Displacement sort key for ``drive`` under ``policy`` (lower first)."""
    try:
        key = REPLACEMENT_POLICIES[policy]
    except KeyError:
        known = ", ".join(available_policies())
        raise ValueError(f"unknown replacement policy {policy!r}; known: {known}") from None
    return (key(drive, priority), drive.id.index)
