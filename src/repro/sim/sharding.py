"""Per-library DES shards: conservative parallel runs of one open system.

Under the ``concurrent`` policy — and only there — libraries are
pairwise independent: a request fans per-tape jobs out to per-library
dispatchers whose decisions (drive choice, LPT order, replacement,
robot contention) read nothing but library-local state, and the only
cross-library join is the ``all_of`` barrier that completes a request
when its last job lands.  That join never feeds back into any library's
state, so the per-library event streams of a single-environment run and
of per-library runs are *identical*, event for event.

This module exploits that: it runs one :class:`~repro.des.Environment`
per library shard (a round-robin group of libraries, see
:func:`repro.sim.scheduling.partition_libraries`) in worker processes
and barrier-merges the results.  Formally this is conservative
time-window synchronization where the lookahead is the minimum
cross-shard latency; because shardable configurations have **no**
cross-shard coupling the lookahead is unbounded and the whole run is a
single window — no mid-run barriers at all.  The moment coupling exists
the lookahead collapses and sharding stops being a win:

* a **disk-stream cap** makes every job contend on one shared resource
  (zero lookahead — shards would have to synchronize on every grant);
* **fault injection** arms a global stand-down clock at the last
  arrival, and media repair couples libraries through the catalog;
* **redundancy** routes choice-of-d decisions over live cross-library
  load;
* ``serial-fcfs`` is inherently a single global queue.

Those configurations are *refused* (with a ``RuntimeWarning``) and the
run falls back to today's single-environment path, which stays
bit-identical.  ``shard_workers=1`` never enters this module.

Every shard simulates the **full** arrival stream — arrival times,
request sample, and per-arrival tokens are re-derived identically from
the seed — but only submits jobs for its own libraries, so tokens,
sizes, and tape counts agree across shards by construction and the
merge is a per-token union of disjoint drive-record sets.  Workers are
forked (never spawned): the placed session holds env-bound generators
that cannot pickle, but a forked child inherits them and only the
compact :class:`ShardOutcome` payload crosses back.
"""

from __future__ import annotations

import re
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..des.monitor import Span
from ..des.scheduler import EventScheduler
from ..obs.fleet import export_registry
from .metrics import RequestMetrics
from .queueing import QueuedRequestRecord
from .scheduling import partition_libraries

__all__ = ["ShardOutcome", "shard_blockers", "maybe_run_sharded"]

#: Registry instruments owned by exactly one library (and therefore by
#: exactly one shard): per-library robot resources and dispatcher depth.
_LIBRARY_INSTRUMENT = re.compile(r"^(?:resource|dispatch)\.L(\d+)\.")


@dataclass
class ShardOutcome:
    """Everything one shard ships back to the coordinator.

    ``tokens`` maps each arrival token to
    ``(catalog_id, arrival_s, total_mb, num_tapes, records, started_s,
    finish_s, aborted)`` where ``records`` / ``started_s`` / ``finish_s``
    cover only the shard's own libraries (``None`` when the request
    touched none of them); the first four fields are re-derived from the
    seed and agree across shards by construction.
    """

    shard_id: int
    library_ids: Tuple[int, ...]
    horizon_s: float
    events_processed: int
    tokens: Dict[int, tuple] = field(default_factory=dict)
    registry_export: Dict[str, Any] = field(default_factory=dict)
    monitors: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Raw span tuples ``(name, start, end, attrs, span_id, parent_id,
    #: request_id)``; empty when tracing is disabled.
    spans: List[tuple] = field(default_factory=list)
    next_span_id: int = 1


def shard_blockers(opensys, reset: bool, sample_period_s: Optional[float]) -> List[str]:
    """Why this run cannot shard (empty list = shardable).

    Each entry names a coupling that would collapse the conservative
    lookahead to zero (or break seed-for-seed parity outright); see the
    module docstring for the derivation.
    """
    blockers: List[str] = []
    if opensys.policy_name != "concurrent":
        blockers.append(
            f"policy {opensys.policy_name!r} serializes requests on one global queue"
        )
    if opensys.fault_specs:
        blockers.append("fault injection arms global stand-down/repair clocks")
    if opensys.index.has_redundancy:
        blockers.append("redundant dispatch routes on live cross-library load")
    if opensys.disk is not None:
        blockers.append("the disk-stream cap couples all shards (zero lookahead)")
    if sample_period_s is not None:
        blockers.append("periodic registry sampling needs the single shared clock")
    if not reset or opensys._ran:
        blockers.append("continuing an advanced stream (reset=False) keeps one clock")
    if opensys.on_complete is not None:
        blockers.append("a per-completion hook is installed (fires in-order on one clock)")
    return blockers


# -- worker side -----------------------------------------------------------

#: Fork-inherited coordinator state.  Set immediately before the pool is
#: created so children see it; holds live (unpicklable) objects on purpose.
_FORK_STATE: Dict[str, Any] = {}


def _run_shard(shard_id: int) -> ShardOutcome:
    """Child entry point: run one shard's libraries over the full stream."""
    from .opensystem import OpenSystem

    state = _FORK_STATE
    parent = state["opensys"]
    library_ids: Tuple[int, ...] = tuple(state["assignments"][shard_id])
    scheduler = parent.scheduler_spec
    if isinstance(scheduler, EventScheduler):
        # The coordinator's instance already backs its own environment;
        # give each shard a fresh scheduler of the same kind.
        scheduler = type(scheduler)()
    shard = OpenSystem(
        parent.session,
        policy=parent.policy_name,
        seek_planner=parent.seek_planner,
        read_selection=parent.read_selection,
        scheduler=scheduler,
        shard_filter=library_ids,
    )
    capture: Dict[int, tuple] = {}
    shard._shard_capture = capture
    shard.run(
        state["arrival_rate_per_hour"],
        num_arrivals=state["num_arrivals"],
        seed=state["seed"],
    )

    spans: List[tuple] = []
    next_span_id = 1
    if shard.trace.enabled:
        for s in shard.trace._all():
            spans.append(
                (s.name, s.start, s.end, dict(s.attrs), s.span_id, s.parent_id, s.request_id)
            )
        next_span_id = shard.trace._next_id

    prefixes = tuple(f"L{lib}." for lib in library_ids)
    return ShardOutcome(
        shard_id=shard_id,
        library_ids=library_ids,
        horizon_s=shard.env.now,
        events_processed=shard.env.events_processed,
        tokens=capture,
        registry_export=export_registry(shard.registry),
        monitors={
            name: mon.summary()
            for name, mon in shard.monitors.items()
            if name.startswith(prefixes)
        },
        spans=spans,
        next_span_id=next_span_id,
    )


def _execute_shards(num_shards: int) -> List[ShardOutcome]:
    """Fan shard runs out to forked workers; degrade to in-process serial.

    The serial fallback (no ``fork`` start method, pool failure) is still
    *correct* — each shard builds a fresh environment against its own
    ``session.reset()`` — it just forfeits the wall-clock win.
    """
    import multiprocessing

    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX hosts
        context = None
    if context is not None:
        try:
            with ProcessPoolExecutor(max_workers=num_shards, mp_context=context) as pool:
                return list(pool.map(_run_shard, range(num_shards)))
        except (BrokenProcessPool, OSError) as exc:  # pragma: no cover - host-specific
            warnings.warn(
                f"shard worker pool failed ({exc!r}); running shards serially in-process",
                RuntimeWarning,
                stacklevel=2,
            )
    return [_run_shard(i) for i in range(num_shards)]


# -- coordinator side ------------------------------------------------------


def maybe_run_sharded(
    opensys,
    arrival_rate_per_hour: float,
    num_arrivals: int,
    seed: int,
    reset: bool,
    sample_period_s: Optional[float],
):
    """Run sharded if the configuration allows it; ``None`` to fall back.

    Called by :meth:`OpenSystem.run` when ``shard_workers > 1``.  A
    refusal warns once (``RuntimeWarning``) and returns ``None`` so the
    caller proceeds on the single-environment path with identical results.
    """
    blockers = shard_blockers(opensys, reset=reset, sample_period_s=sample_period_s)
    if blockers:
        warnings.warn(
            f"shard_workers={opensys.shard_workers} requested but "
            + "; ".join(blockers)
            + " — falling back to a single environment",
            RuntimeWarning,
            stacklevel=3,
        )
        return None
    num_libraries = len(opensys.system.libraries)
    num_shards = min(opensys.shard_workers, num_libraries)
    if num_shards < 2:
        return None

    _FORK_STATE.clear()
    _FORK_STATE.update(
        opensys=opensys,
        assignments=partition_libraries(num_libraries, num_shards),
        arrival_rate_per_hour=arrival_rate_per_hour,
        num_arrivals=num_arrivals,
        seed=seed,
    )
    try:
        outcomes = _execute_shards(num_shards)
    finally:
        _FORK_STATE.clear()
    opensys._ran = True
    opensys._expected = num_arrivals
    return _merge_shards(opensys, outcomes, arrival_rate_per_hour, num_arrivals)


def _merge_shards(
    opensys,
    shards: List[ShardOutcome],
    arrival_rate_per_hour: float,
    num_arrivals: int,
):
    """Barrier-merge shard outcomes into one :class:`OpenSystemResult`.

    Produces the same observable surfaces as a single-environment run:
    per-request records/metrics rebuilt from the union of each token's
    (disjoint) drive records, latency digests re-recorded in completion
    order (the single-clock recording order), the in-flight gauge
    replayed on the merged arrival/finish timeline, library-owned
    resource instruments transplanted from their owning shard, and one
    synthesized request root span per token adopting the shards'
    job-span subtrees.
    """
    from .opensystem import OpenSystemResult

    merged: List[tuple] = []  # (record, metrics) per token, token order
    for token in range(num_arrivals):
        catalog_id = arrival_s = total_mb = num_tapes = None
        records: List[Any] = []
        starts: List[float] = []
        finishes: List[float] = []
        aborted = False
        for shard in shards:
            payload = shard.tokens.get(token)
            if payload is None:
                raise RuntimeError(
                    f"shard {shard.shard_id} never completed token {token}"
                )
            (catalog_id, arrival_s, total_mb, num_tapes,
             s_records, s_started, s_finish, s_aborted) = payload
            records.extend(s_records)
            if s_started is not None:
                starts.append(s_started)
            if s_finish is not None:
                finishes.append(s_finish)
            aborted = aborted or s_aborted
        if not records:
            raise RuntimeError(
                f"token {token} produced no drive records in any shard"
            )
        # Deterministic aggregation order; drive names are globally unique.
        records.sort(key=lambda r: r.drive)
        finish_s = max(finishes)
        metrics = RequestMetrics.from_drive_records(
            request_id=catalog_id,
            size_mb=total_mb,
            num_tapes=num_tapes,
            records=records,
            start_s=arrival_s,
            aborted=aborted,
        )
        record = QueuedRequestRecord(
            request_id=catalog_id,
            arrival_s=arrival_s,
            start_s=min(starts) if starts else finish_s,
            finish_s=finish_s,
            size_mb=total_mb,
            aborted=aborted,
        )
        merged.append((record, metrics))

    horizon_s = max(shard.horizon_s for shard in shards)

    # -- registry: replay the merged stream on the coordinator's pinned
    # instruments.  Counters are order-free totals; digests are recorded in
    # finish order (the order one clock would have recorded them); the
    # in-flight gauge replays the +1/-1 timeline.
    registry = opensys.registry
    timeline: List[Tuple[float, int]] = []
    for record, _ in merged:
        timeline.append((record.arrival_s, 1))
        timeline.append((record.finish_s, -1))
    timeline.sort(key=lambda step: (step[0], -step[1]))
    for at, delta in timeline:
        opensys._in_flight.add(delta, at)
    opensys._arrived.inc(len(merged))
    opensys._completed.inc(len(merged))
    for record, metrics in sorted(merged, key=lambda pair: pair[0].finish_s):
        if record.aborted:
            opensys._aborted.inc()
        opensys._switches.inc(metrics.num_switches)
        opensys._d_sojourn.record(max(0.0, metrics.response_s))
        opensys._d_seek.record(max(0.0, metrics.seek_s))
        opensys._d_switch.record(max(0.0, metrics.switch_s))
        opensys._d_transfer.record(max(0.0, metrics.transfer_s))

    for shard in shards:
        owned = set(shard.library_ids)
        export = shard.registry_export
        units = export.get("units", {})
        for name, value in export.get("counters", {}).items():
            match = _LIBRARY_INSTRUMENT.match(name)
            if match and int(match.group(1)) in owned:
                counter = registry.counter(name, unit=units.get(name, ""))
                counter.inc(value - counter.value)
        for name, state in export.get("gauges", {}).items():
            match = _LIBRARY_INSTRUMENT.match(name)
            if match and int(match.group(1)) in owned:
                gauge = registry.gauge(name, unit=units.get(name, ""))
                gauge.value = state["value"]
                gauge.min = state["min"]
                gauge.max = state["max"]
                gauge._integral = state["integral"]
                gauge._t0 = 0.0
                gauge._since = state["elapsed_s"]
    registry.snapshot(horizon_s)

    # -- trace: synthesize one request root per token, then graft each
    # shard's non-root spans with remapped ids under it.
    trace = opensys.trace
    if trace.enabled:
        root_ids: Dict[int, int] = {}
        for token, (record, _) in enumerate(merged):
            span = trace.record(
                "request",
                record.arrival_s,
                record.finish_s,
                request=token,
                catalog_id=record.request_id,
                policy=opensys.policy_name,
            )
            root_ids[token] = span.span_id
        for shard in shards:
            base = trace._next_id - 1
            shard_roots = {
                entry[4]: entry[6]  # span_id -> token
                for entry in shard.spans
                if entry[0] == "request" and entry[5] is None
            }
            for name, start, end, attrs, span_id, parent_id, request_id in shard.spans:
                if span_id in shard_roots:
                    continue
                if parent_id in shard_roots:
                    parent_id = root_ids[shard_roots[parent_id]]
                elif parent_id is not None:
                    parent_id = base + parent_id
                trace._spans.append(
                    Span(name, start, end, attrs, base + span_id, parent_id, request_id)
                )
            trace._next_id = base + shard.next_span_id

    resources = {}
    for shard in shards:
        resources.update(shard.monitors)

    #: The coordinator environment never ran; publish the fleet-wide event
    #: total on it so throughput telemetry (benchmarks, ``--profile``)
    #: reads the same counter either way.
    opensys.env.events_processed = sum(shard.events_processed for shard in shards)

    result = OpenSystemResult(
        scheme=opensys.session.scheme_name,
        arrival_rate_per_hour=arrival_rate_per_hour,
        records=[record for record, _ in merged],
        policy=opensys.policy_name,
        metrics=[metrics for _, metrics in merged],
        resources=resources,
        horizon_s=horizon_s,
        trace=trace,
        registry=registry,
        faults={},
        repair={},
    )
    horizon_c = registry.counter("fleet.horizon_s", unit="s")
    horizon_c.inc(result.horizon_s - horizon_c.value)
    avail_c = registry.counter("fleet.availability_weighted_s", unit="s")
    avail_c.inc(result.horizon_s * result.availability - avail_c.value)
    return result
