"""Pluggable within-tape seek planners: the LTSP solver family.

The within-tape retrieval order is the Linear Tape Scheduling Problem
(LTSP): given the head position and a set of non-overlapping extents on one
tape, find the read order minimizing total locate time.  The paper uses
the better of the two single sweeps, which is close to optimal but can be
beaten: reads carry the head forward for free, so turning around at the
right points rides those free advances, and under an affine model
(``TapeSpec.locate_startup_s > 0``) chaining adjacent extents saves whole
startup latencies on top.  LTSP has an exact polynomial dynamic program
(Honoré, Simon & Suter, arXiv:2112.09384) and a family of cheap sequencing
policies (Cardonha, Cire & Villa Real, arXiv:2112.07018).

Planners are strategy objects resolved by name through a registry
(mirroring :mod:`repro.placement.registry`):

``greedy-sweep`` (default)
    The paper's two-sweep heuristic — delegates to
    :func:`~repro.sim.seekplan.plan_retrieval`, bit-identical to the
    pre-registry engine.

``exact``
    O(n²) dynamic program over sweep turn-points: some optimal schedule
    partitions the position-sorted extents into contiguous blocks served
    top-down, each block read bottom-up in one ascending sweep, so only
    the block boundaries (the turn-points) need to be optimized.  Globally
    optimal; never worse than either sweep (both sweeps are extreme
    partitions).

``approx``
    Nearest-extent-next sequencing: repeatedly read the extent with the
    cheapest locate from the current head position (ties break toward the
    lower start).  O(n²), no lookahead.

``k-lookahead``
    Bounded-horizon search over interval orders: the unread set is kept
    contiguous in sorted position, each step expands every sequence of up
    to ``k`` frontier moves, prices each branch as accumulated locate cost
    plus a cheaper-sweep completion estimate, and commits the branch's
    first move.  A tunable middle ground between ``greedy-sweep`` and
    ``exact``.

Every planner returns ``(ordered_extents, total_seek_s)`` where the cost is
always recomputed through the shared
:func:`~repro.sim.seekplan.locate_cost` accumulation, so reported plan
costs are exactly what the engine will charge hop-by-hop.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple, Union

from ..hardware import ObjectExtent, TapeSpec
from .seekplan import locate_cost, plan_retrieval

__all__ = [
    "SeekPlanner",
    "GreedySweepPlanner",
    "ExactPlanner",
    "ApproxPlanner",
    "KLookaheadPlanner",
    "DEFAULT_SEEK_PLANNER",
    "register_seek_planner",
    "make_seek_planner",
    "available_seek_planners",
    "resolve_seek_planner",
]

#: A plan: the extents in read order plus the total locate time of that
#: order from the given head position (priced via ``locate_cost``).
Plan = Tuple[List[ObjectExtent], float]


class SeekPlanner:
    """Strategy interface: order one tape job's extents for retrieval.

    Implementations must be stateless across calls (one planner instance is
    shared by every drive process of a simulation) and must return a
    *permutation* of the input extents — the engine reads exactly what it
    was asked to read, only the order is the planner's to choose.
    """

    #: Registry name (set by subclasses).
    name: str = ""

    def plan(
        self, extents: Sequence[ObjectExtent], head_mb: float, spec: TapeSpec
    ) -> Plan:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class GreedySweepPlanner(SeekPlanner):
    """The paper's two-sweep heuristic (the default; bit-identical)."""

    name = "greedy-sweep"

    def plan(
        self, extents: Sequence[ObjectExtent], head_mb: float, spec: TapeSpec
    ) -> Plan:
        return plan_retrieval(extents, head_mb, spec)


class ExactPlanner(SeekPlanner):
    """Exact LTSP via a dynamic program over sweep turn-points.

    Reads are free forward motion, so a retrieval schedule is a head
    trajectory that must cross every extent's span upward at least once;
    everything else is paid locate travel.  Merging any two overlapping or
    out-of-order upward passes never costs more, so some optimal trajectory
    consists of *disjoint upward sweeps in descending position order*: the
    position-sorted extents are partitioned into contiguous blocks, blocks
    are served top-down, and each block is read bottom-up in one ascending
    sweep.  (The two single sweeps are the two extreme partitions: one
    block, and all-singleton blocks.)  The turn-points between sweeps are
    the only free choices left — the structure exploited by the exact LTSP
    algorithm of arXiv:2112.09384 — and the best partition is found by an
    O(n²) DP over block boundaries.

    The inter-block hops of a candidate partition are priced analytically
    (``startup + distance/rate``, always a strictly downward move when
    extent starts are distinct); intra-block hops and the initial hop use
    ``spec.locate_time`` verbatim via prefix sums.  The winning plan's
    reported cost is recomputed through :func:`locate_cost`, and the
    two-sweep plan is kept instead whenever degenerate coincident extents
    make it price lower — so ``exact`` is never worse than
    ``greedy-sweep`` on *any* input.
    """

    name = "exact"

    def plan(
        self, extents: Sequence[ObjectExtent], head_mb: float, spec: TapeSpec
    ) -> Plan:
        n = len(extents)
        if n <= 1:
            # Agree with every other planner on trivial inputs.
            return plan_retrieval(extents, head_mb, spec)
        ordered = sorted(extents, key=lambda e: e.start_mb)
        locate = spec.locate_time
        startup = spec.locate_startup_s
        rate = spec.locate_rate_mb_s
        starts = [e.start_mb for e in ordered]
        ends = [e.end_mb for e in ordered]

        # ascend[t]: locate cost of the hop chain reading 0..t in ascending
        # order, *excluding* the arrival hop to starts[0]; the ascending
        # chain k..t then costs ascend[t] - ascend[k].
        ascend = [0.0] * n
        for i in range(1, n):
            ascend[i] = ascend[i - 1] + locate(ends[i - 1], starts[i])

        # W[t]: cheapest way to serve extents 0..t when the head arrives
        # from above at position p, minus the p-dependent part — the next
        # hop down to a block bottom a_k prices p/rate + (startup - a_k/rate)
        # — so best(t, p) = p/rate + W[t].  choice[t] records the argmin
        # block bottom for reconstruction.
        W = [0.0] * n
        choice = [0] * n
        for t in range(n):
            best = float("inf")
            best_k = 0
            chain = ascend[t]
            for k in range(t + 1):
                c = startup - starts[k] / rate + chain - ascend[k]
                if k >= 1:
                    c += ends[t] / rate + W[k - 1]
                if c < best:
                    best = c
                    best_k = k
            W[t] = best
            choice[t] = best_k

        # Top block [k..n-1] is served first, reached from the head.
        best = float("inf")
        top = 0
        for k in range(n):
            c = locate(head_mb, starts[k]) + ascend[n - 1] - ascend[k]
            if k >= 1:
                c += ends[n - 1] / rate + W[k - 1]
            if c < best:
                best = c
                top = k

        order_idx: List[int] = list(range(top, n))
        t = top - 1
        while t >= 0:
            k = choice[t]
            order_idx.extend(range(k, t + 1))
            t = k - 1
        plan = [ordered[i] for i in order_idx]
        # Recompute through the shared accumulation so the reported cost is
        # bit-for-bit what the engine charges, and never return a plan the
        # two-sweep heuristic would beat (possible only in degenerate
        # coincident-extent inputs where the analytic hop pricing above
        # overcharges a startup).
        cost = locate_cost(plan, head_mb, spec)
        sweep_plan, sweep_total = plan_retrieval(extents, head_mb, spec)
        if sweep_total < cost:
            return sweep_plan, sweep_total
        return plan, cost


class ApproxPlanner(SeekPlanner):
    """Nearest-extent-next sequencing (Cardonha-style greedy policy)."""

    name = "approx"

    def plan(
        self, extents: Sequence[ObjectExtent], head_mb: float, spec: TapeSpec
    ) -> Plan:
        if not extents:
            return [], 0.0
        locate = spec.locate_time
        remaining = sorted(extents, key=lambda e: e.start_mb)
        position = head_mb
        plan: List[ObjectExtent] = []
        while remaining:
            best_i = min(
                range(len(remaining)),
                key=lambda i: (locate(position, remaining[i].start_mb), i),
            )
            extent = remaining.pop(best_i)
            plan.append(extent)
            position = extent.end_mb
        return plan, locate_cost(plan, head_mb, spec)


class KLookaheadPlanner(SeekPlanner):
    """Depth-``k`` search over interval-order frontier choices.

    State: the read set is kept contiguous in sorted position — after some
    prefix of reads the unread extents form a low block and a high block,
    and the next read takes the innermost extent of either.
    From the current state every sequence of up to ``k`` such moves is
    expanded; each branch is priced as its accumulated locate cost plus the
    cheaper-sweep cost of everything still unread from the branch's end
    position (an admissible completion estimate).  The first move of the
    best branch is committed and the search repeats, so the planner does
    O(n·2^k) locate evaluations.
    """

    name = "k-lookahead"

    def __init__(self, k: int = 3) -> None:
        if k < 1:
            raise ValueError(f"lookahead depth must be >= 1, got {k}")
        self.k = k

    def plan(
        self, extents: Sequence[ObjectExtent], head_mb: float, spec: TapeSpec
    ) -> Plan:
        n = len(extents)
        if n <= 1:
            return plan_retrieval(extents, head_mb, spec)
        ordered = sorted(extents, key=lambda e: e.start_mb)
        locate = spec.locate_time
        starts = [e.start_mb for e in ordered]
        ends = [e.end_mb for e in ordered]

        def completion(lo: int, hi: int, position: float) -> float:
            """Cheaper-sweep estimate for unread [0..lo] + [hi..n-1]."""
            unread = ordered[: lo + 1] + ordered[hi:]
            if not unread:
                return 0.0
            _, est = plan_retrieval(unread, position, spec)
            return est

        def search(lo: int, hi: int, position: float, depth: int) -> Tuple[float, int]:
            """Best (cost estimate, first move) expanding ``depth`` moves.

            ``lo`` is the highest unread index below the read block, ``hi``
            the lowest unread index above it (read block = (lo, hi) open
            interval).  A move reads index ``lo`` (move 0) or ``hi``
            (move 1).
            """
            if lo < 0 and hi >= n:
                return 0.0, -1
            if depth == 0:
                return completion(lo, hi, position), -1
            best = (float("inf"), -1)
            if lo >= 0:
                step = locate(position, starts[lo])
                tail, _ = search(lo - 1, hi, ends[lo], depth - 1)
                if step + tail < best[0]:
                    best = (step + tail, 0)
            if hi < n:
                step = locate(position, starts[hi])
                tail, _ = search(lo, hi + 1, ends[hi], depth - 1)
                if step + tail < best[0]:
                    best = (step + tail, 1)
            return best

        # Choose the first extent by the same bounded search: reading index
        # f creates the read block {f}.
        best_first = min(
            range(n),
            key=lambda f: locate(head_mb, starts[f])
            + search(f - 1, f + 1, ends[f], self.k - 1)[0],
        )
        lo, hi = best_first - 1, best_first + 1
        position = ends[best_first]
        order_idx = [best_first]
        while lo >= 0 or hi < n:
            _, move = search(lo, hi, position, self.k)
            if move == 0:
                order_idx.append(lo)
                position = ends[lo]
                lo -= 1
            else:
                order_idx.append(hi)
                position = ends[hi]
                hi += 1
        plan = [ordered[i] for i in order_idx]
        return plan, locate_cost(plan, head_mb, spec)


# ---------------------------------------------------------------------------
# Registry (mirrors repro.placement.registry)

_REGISTRY: Dict[str, Callable[..., SeekPlanner]] = {}

#: The engine's default planner name: the paper's two-sweep heuristic.
DEFAULT_SEEK_PLANNER = GreedySweepPlanner.name


def register_seek_planner(name: str, factory: Callable[..., SeekPlanner]) -> None:
    """Register a planner factory under a CLI-usable name."""
    _REGISTRY[name] = factory


def make_seek_planner(name: str, **kwargs) -> SeekPlanner:
    """Instantiate a registered planner by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown seek planner {name!r}; known: {known}") from None
    return factory(**kwargs)


def available_seek_planners() -> Tuple[str, ...]:
    """Sorted names of all registered planners."""
    return tuple(sorted(_REGISTRY))


register_seek_planner(GreedySweepPlanner.name, GreedySweepPlanner)
register_seek_planner(ExactPlanner.name, ExactPlanner)
register_seek_planner(ApproxPlanner.name, ApproxPlanner)
register_seek_planner(KLookaheadPlanner.name, KLookaheadPlanner)

#: Shared default instance: resolution happens once per simulation at
#: configuration time, and the greedy planner is stateless, so every
#: default-configured engine can share one object.
_DEFAULT_INSTANCE = GreedySweepPlanner()


def resolve_seek_planner(
    planner: Union[None, str, SeekPlanner],
) -> SeekPlanner:
    """Resolve a configuration value to a planner instance.

    ``None`` means the default (``greedy-sweep``); a string is looked up in
    the registry; an instance passes through unchanged (so pre-configured
    planners, e.g. ``KLookaheadPlanner(k=5)``, thread through every layer).
    """
    if planner is None:
        return _DEFAULT_INSTANCE
    if isinstance(planner, SeekPlanner):
        return planner
    return make_seek_planner(planner)
