"""The request-service engine: Sec. 6's simulator, on the DES kernel.

One call to :func:`simulate_request` serves one request to completion:

* the location index resolves the request to per-tape jobs;
* tapes already mounted serve in place (drives run in parallel);
* mounted switchable tapes without requested objects switch immediately;
  offline tapes queue LPT-first and free switch drives pull greedily;
* every mount/unmount competes for the library's single robot arm
  (capacity-1 resource) — robots of different libraries are independent;
* within a tape, extents are read in the order chosen by the configured
  seek planner (default: the paper's cheaper single sweep; see
  :mod:`repro.sim.seekplanner`).

Hardware state (mounted tapes, head positions) is mutated and *persists*
across calls, exactly like the paper's simulator where requests arrive one
at a time with long gaps: a switching tape left mounted stays mounted, and
its rewind is paid by whichever later request displaces it (T_switch
explicitly includes rewind time, Sec. 4).

The machinery is factored as :class:`RequestExecution` so the same
planning / drive-process / failure-rescue logic can run either on a
throwaway :class:`~repro.des.Environment` (this module's closed-loop
:func:`simulate_request`) or as one of many concurrent request processes
on a session's long-lived shared environment
(:mod:`repro.sim.opensystem`).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Mapping, Optional, Union

from ..catalog import LocationIndex, Request
from ..des import Environment, Interrupt, Resource, Trace
from ..hardware import TapeDrive, TapeLibrary, TapeId, TapeSystem
from .metrics import DriveServiceRecord, RequestMetrics
from .scheduling import TapeJob, build_library_plan
from .seekplanner import SeekPlanner, resolve_seek_planner

__all__ = ["simulate_request", "RequestExecution"]

_NULL_TRACE = Trace(enabled=False)


class RequestExecution:
    """One request admitted onto an environment (exclusive or shared).

    Construction plans every library's work against the *current* hardware
    state and spawns the drive processes; the caller then either drains the
    environment (:func:`simulate_request`) or, on a shared clock, yields
    from :meth:`wait` inside its own process.  :meth:`finalize` validates
    that every queued tape job was served and builds the request's metrics,
    measuring response time from ``env.now`` at admission — so on a shared
    environment the numbers are identical to a private zero-based clock.

    When tracing is enabled, every stage lands in a causal span tree.  A
    shared-clock caller passes ``parent`` (its own open ``request`` span);
    the closed-loop wrapper leaves it None and the execution reserves its
    own ``request`` root span, closed in :meth:`finalize`.
    """

    def __init__(
        self,
        env: Environment,
        system: TapeSystem,
        index: LocationIndex,
        request: Request,
        tape_priority: Optional[Mapping[TapeId, float]] = None,
        trace: Optional[Trace] = None,
        replacement_policy: str = "least_popular",
        failures: Optional[Mapping[str, float]] = None,
        disk: Optional[Resource] = None,
        parent: Optional[int] = None,
        trace_request: Optional[int] = None,
        seek_planner: Union[None, str, SeekPlanner] = None,
    ) -> None:
        self.env = env
        self.system = system
        self.request = request
        self.started_at = env.now
        # Resolve once at admission; every per-tape plan and LPT estimate in
        # this execution uses the same planner instance.
        planner = resolve_seek_planner(seek_planner)
        self.seek_planner = planner
        trace = trace if trace is not None else _NULL_TRACE
        self.trace = trace
        # The span-tree grouping key.  Open-system callers pass a unique
        # per-arrival token (the same catalog request can arrive repeatedly);
        # closed-loop executions default to the catalog id.
        self._trace_request = trace_request if trace_request is not None else request.id
        self._root_id: Optional[int] = None
        if parent is None:
            # Closed loop: this execution owns the request root span.
            self._root_id = trace.reserve_id()
            parent = self._root_id

        jobs = index.group_by_tape(request.object_ids)
        self.num_tapes = len(jobs)
        self.total_mb = sum(
            extent.size_mb for extents in jobs.values() for extent in extents
        )
        self.records: Dict[str, DriveServiceRecord] = {}
        self.queues: Dict[int, Deque[TapeJob]] = {}
        self.runtimes: list[_LibraryRuntime] = []

        tape_priority = tape_priority or {}
        failures = dict(failures or {})

        for library in system.libraries:
            plan = build_library_plan(
                library, jobs, tape_priority, replacement_policy, planner=planner
            )
            if plan.is_empty:
                continue
            if plan.offline and not plan.switch_order:
                raise RuntimeError(
                    f"library {library.id} has {len(plan.offline)} offline tapes to serve "
                    "but no switchable drive (all pinned?)"
                )
            if library.robot.env is not env:
                library.robot.bind(env)
            queue: Deque[TapeJob] = deque(plan.offline)
            self.queues[library.id] = queue
            runtime = _LibraryRuntime(
                env, library, queue, self.records, trace, disk, failures,
                request_id=self._trace_request, parent_id=parent, planner=planner,
            )
            self.runtimes.append(runtime)
            serving_indices = {idx for idx, _ in plan.serving}
            # Spawn order defines who pulls queued tapes first at t=0: idle
            # switch drives in replacement-policy order, then serving drives
            # (which join the pool only after finishing their in-place work).
            for idx in plan.switch_order:
                if idx in serving_indices:
                    continue
                runtime.spawn(library.drives[idx], None, switchable=True)
            for idx, job in plan.serving:
                runtime.spawn(library.drives[idx], job, switchable=idx in plan.switch_order)

    def wait(self):
        """Yield until every drive process (including rescuers) finishes."""
        while True:
            alive = [
                proc
                for runtime in self.runtimes
                for proc in runtime.processes
                if proc.is_alive
            ]
            if not alive:
                return
            yield self.env.all_of(alive)

    def finalize(self) -> RequestMetrics:
        """Check all work was served and aggregate the drive records."""
        for lib_id, queue in self.queues.items():
            if queue:
                library = self.system.libraries[lib_id]
                survivors = [
                    d for d in library.drives if not d.pinned and not d.failed
                ]
                if not survivors:
                    raise RuntimeError(
                        f"library {lib_id} has {len(queue)} unserved tape jobs "
                        "and no surviving switchable drive"
                    )
                raise RuntimeError(
                    f"library {lib_id} finished with {len(queue)} unserved tape jobs"
                )
        metrics = RequestMetrics.from_drive_records(
            request_id=self.request.id,
            size_mb=self.total_mb,
            num_tapes=self.num_tapes,
            records=list(self.records.values()),
            start_s=self.started_at,
        )
        if self._root_id is not None:
            self.trace.record_reserved(
                self._root_id,
                "request",
                self.started_at,
                self.started_at + metrics.response_s,
                request=self._trace_request,
                catalog_id=self.request.id,
                size_mb=self.total_mb,
                num_tapes=self.num_tapes,
            )
        return metrics


def simulate_request(
    system: TapeSystem,
    index: LocationIndex,
    request: Request,
    tape_priority: Optional[Mapping[TapeId, float]] = None,
    trace: Optional[Trace] = None,
    replacement_policy: str = "least_popular",
    failures: Optional[Mapping[str, float]] = None,
    seek_planner: Union[None, str, SeekPlanner] = None,
    scheduler=None,
) -> RequestMetrics:
    """Serve ``request`` on ``system``; returns its metrics.

    This is the closed-loop wrapper: the request runs to completion on an
    exclusive, throwaway environment, reproducing the paper's "one request
    at a time with long gaps" assumption.  For overlapping in-flight
    requests on one shared clock, see :mod:`repro.sim.opensystem`.

    ``tape_priority`` and ``replacement_policy`` control which mounted tapes
    are displaced first (default: the paper's least-popular policy);
    ``trace`` (if enabled) receives one span per
    rewind/unload/robot/load/seek/transfer.  ``seek_planner`` picks the
    within-tape retrieval-order strategy — a registered name, a
    :class:`~repro.sim.seekplanner.SeekPlanner` instance, or ``None`` for
    the default ``greedy-sweep``.

    ``failures`` injects permanent drive failures for this request: a map
    from drive name (e.g. ``"L0.D3"``) to the simulated time at which the
    drive dies.  A failing drive abandons its unfinished extents (the
    in-flight extent restarts from scratch), its cartridge is pulled, and
    the leftover work re-queues for the library's surviving switch drives
    — the response time grows accordingly.  All requested bytes are still
    delivered unless a library has *no* surviving switchable drive.

    ``scheduler`` selects the kernel's event scheduler (see
    :mod:`repro.des.scheduler`); closed-loop environments hold few pending
    events, so the default heap is effectively always right — the knob
    exists so ``REPRO_SCHEDULER`` governs every environment uniformly.
    """
    env = Environment(scheduler=scheduler)
    # Optional disk-stage admission control (spec.disk_bandwidth_mb_s):
    # at most `disk_streams` drives may stream to the staging disks at once.
    streams = system.spec.disk_streams
    disk = Resource(env, streams) if streams is not None else None
    execution = RequestExecution(
        env,
        system,
        index,
        request,
        tape_priority,
        trace,
        replacement_policy,
        failures,
        disk,
        seek_planner=seek_planner,
    )
    env.run()
    return execution.finalize()


class _LibraryRuntime:
    """Per-library execution state for one request simulation.

    Owns the offline-tape queue and the set of currently running drive
    processes, so a failing drive can immediately recruit idle surviving
    drives for its re-queued work (inside the event loop, not after it).
    """

    def __init__(
        self,
        env: Environment,
        library: TapeLibrary,
        queue: Deque[TapeJob],
        records: Dict[str, DriveServiceRecord],
        trace: Trace,
        disk: Optional[Resource],
        failures: Mapping[str, float],
        request_id: Optional[int] = None,
        parent_id: Optional[int] = None,
        planner: Optional[SeekPlanner] = None,
    ) -> None:
        self.env = env
        self.library = library
        self.queue = queue
        self.records = records
        self.trace = trace
        self.disk = disk
        self.failures = failures
        self.request_id = request_id
        self.parent_id = parent_id
        self.planner = resolve_seek_planner(planner)
        self.active: set = set()
        #: Every drive process spawned for this request (watchdogs excluded),
        #: so a shared-environment caller can wait for their completion.
        self.processes: list = []

    def spawn(self, drive: TapeDrive, first_job: Optional[TapeJob], switchable: bool) -> None:
        """Start a drive process, arming its failure watchdog if scheduled."""
        if drive.failed or drive.id.index in self.active:
            return
        self.active.add(drive.id.index)
        process = self.env.process(self._drive_process(drive, first_job, switchable))
        self.processes.append(process)
        fail_at = self.failures.get(str(drive.id))
        if fail_at is not None and fail_at >= self.env.now:

            def watchdog(delay=fail_at - self.env.now, proc=process):
                yield self.env.timeout(delay)
                if proc.is_alive:
                    proc.interrupt("drive-failure")

            self.env.process(watchdog())

    def rescue(self) -> None:
        """Recruit every idle, surviving switchable drive onto the queue.

        Pinned drives join only when no unpinned drive survives (degraded
        operation): pinning is policy, not physics.
        """
        if not self.queue:
            return
        survivors = [d for d in self.library.drives if not d.failed and not d.pinned]
        if not survivors:
            survivors = [d for d in self.library.drives if not d.failed]
        for drive in survivors:
            self.spawn(drive, None, switchable=True)

    def _drive_process(self, drive: TapeDrive, first_job: Optional[TapeJob], switchable: bool):
        """One drive's behaviour for one request: serve, then drain the queue.

        An injected drive failure arrives as an :class:`Interrupt`: the
        drive is marked failed, its cartridge is pulled (so a rescuer can
        remount it), every unfinished extent — including the one in flight,
        which restarts from scratch — re-queues, and idle surviving drives
        are recruited immediately.
        """
        env, library, queue = self.env, self.library, self.queue
        records, trace, disk = self.records, self.trace, self.disk
        request_id, parent_id = self.request_id, self.parent_id
        planner = self.planner
        record = None
        current: Optional[TapeJob] = first_job
        try:
            if first_job is not None:
                record = records.setdefault(str(drive.id), DriveServiceRecord(str(drive.id)))
                with trace.span(
                    env, "tape_job", parent=parent_id, request=request_id,
                    drive=str(drive.id), tape=str(first_job.tape_id), mounted=True,
                ) as job_ctx:
                    yield from _serve_job(
                        env, drive, first_job, record, trace, disk,
                        parent=job_ctx.id, request=request_id, planner=planner,
                    )
                record.completion_s = env.now
            current = None
            if not switchable:
                return
            while queue:
                job = queue.popleft()
                current = job
                if record is None:
                    record = records.setdefault(str(drive.id), DriveServiceRecord(str(drive.id)))
                with trace.span(
                    env, "tape_job", parent=parent_id, request=request_id,
                    drive=str(drive.id), tape=str(job.tape_id),
                ) as job_ctx:
                    yield from _switch_to(
                        env, library, drive, job.tape_id, record, trace,
                        parent=job_ctx.id, request=request_id,
                    )
                    yield from _serve_job(
                        env, drive, job, record, trace, disk,
                        parent=job_ctx.id, request=request_id, planner=planner,
                    )
                current = None
                record.completion_s = env.now
        except Interrupt:
            drive.failed = True
            trace.record(
                "drive_failure", env.now, env.now,
                parent=parent_id, request=request_id, drive=str(drive.id),
            )
            if drive.mounted is not None:
                drive.unmount()  # cartridge pulled for the rescuer
            if record is not None:
                record.completion_s = env.now
            if current is not None and not current.is_done:
                queue.append(current.split_remaining())
            self.active.discard(drive.id.index)
            self.rescue()
        else:
            self.active.discard(drive.id.index)


def _serve_job(
    env,
    drive: TapeDrive,
    job: TapeJob,
    record: DriveServiceRecord,
    trace: Trace,
    disk: Optional[Resource] = None,
    parent: Optional[int] = None,
    request: Optional[int] = None,
    planner: Optional[SeekPlanner] = None,
):
    """Read all of a job's extents in the planner's chosen order.

    The job's completion index advances as extents finish, so an
    interrupting failure knows exactly what is left to re-queue without
    scanning (the former per-extent ``list.remove`` was O(n²) per job).

    A failure interrupt arriving mid-stage unwinds through the span
    context managers, closing the in-flight span with ``aborted=True`` —
    the stage's time is *not* folded into ``record`` (the extent restarts
    from scratch elsewhere), and attribution skips aborted spans.
    """
    tape = drive.mounted
    assert tape is not None and tape.id == job.tape_id, "job routed to wrong drive"
    if planner is None:
        planner = resolve_seek_planner(None)
    ordered, _ = planner.plan(job.remaining_extents, tape.head_mb, drive.tape_spec)
    job.begin(ordered)
    drive_name = str(drive.id)
    # The per-extent loop is the engine's hot path: with tracing off, even a
    # null-context call per seek/transfer is measurable, so hoist the check.
    # With tracing on, the seek/transfer spans (the majority of all spans in
    # any run) bypass the SpanContext machinery entirely: the span id is
    # claimed and the raw span tuple appended inline (the storage format
    # ``Trace._all`` materializes lazily), reproducing the context manager's
    # id-allocation order, timestamps and aborted-on-interrupt tagging.
    tracing = trace.enabled
    if tracing:
        span_append = trace._spans.append
    for extent in ordered:
        seek, transfer = drive.read_extent(extent)
        if seek > 0:
            if tracing:
                sid = trace._next_id
                trace._next_id = sid + 1
                started = env._now
                try:
                    yield env.timeout(seek)
                except BaseException:
                    span_append((
                        "seek", started, env._now,
                        {"drive": drive_name, "object": extent.object_id, "aborted": True},
                        sid, parent, request,
                    ))
                    raise
                span_append((
                    "seek", started, env._now,
                    ("drive", drive_name, "object", extent.object_id),
                    sid, parent, request,
                ))
            else:
                yield env.timeout(seek)
        record.seek_s += seek
        if disk is not None:
            requested_at = env.now
            with disk.request() as slot:
                yield slot
                if env.now > requested_at:
                    trace.record(
                        "disk_wait", requested_at, env.now,
                        parent=parent, request=request, drive=drive_name,
                    )
                if tracing:
                    sid = trace._next_id
                    trace._next_id = sid + 1
                    started = env._now
                    try:
                        yield env.timeout(transfer)
                    except BaseException:
                        span_append((
                            "transfer", started, env._now,
                            {"drive": drive_name, "object": extent.object_id, "aborted": True},
                            sid, parent, request,
                        ))
                        raise
                    span_append((
                        "transfer", started, env._now,
                        ("drive", drive_name, "object", extent.object_id),
                        sid, parent, request,
                    ))
                else:
                    yield env.timeout(transfer)
        elif tracing:
            sid = trace._next_id
            trace._next_id = sid + 1
            started = env._now
            try:
                yield env.timeout(transfer)
            except BaseException:
                span_append((
                    "transfer", started, env._now,
                    {"drive": drive_name, "object": extent.object_id, "aborted": True},
                    sid, parent, request,
                ))
                raise
            span_append((
                "transfer", started, env._now,
                ("drive", drive_name, "object", extent.object_id),
                sid, parent, request,
            ))
        else:
            yield env.timeout(transfer)
        record.transfer_s += transfer
        record.bytes_mb += extent.size_mb
        job.advance()


def _switch_to(
    env,
    library: TapeLibrary,
    drive: TapeDrive,
    tape_id: TapeId,
    record: DriveServiceRecord,
    trace: Trace,
    parent: Optional[int] = None,
    request: Optional[int] = None,
):
    """Full tape switch: rewind, unload, robot exchange, load-and-thread."""
    new_tape = library.tape(tape_id)
    drive_name = str(drive.id)
    robot = library.robot

    # Same guarded fast lane as ``_serve_job``: a full switch emits one
    # parent span plus 3–4 leaf spans, all with fixed attributes, so each
    # site claims its id inline and appends the raw field tuple directly
    # (ids in the same order, timestamps and aborted-tagging identical to
    # the ``SpanContext`` path it replaces).
    tracing = trace.enabled
    if tracing:
        span_append = trace._spans.append
        swid = trace._next_id
        trace._next_id = swid + 1
        sw_started = env._now
    else:
        swid = None
    try:
        if drive.mounted is not None:
            rewind = drive.rewind_time()
            if rewind > 0:
                if tracing:
                    sid = trace._next_id
                    trace._next_id = sid + 1
                    started = env._now
                    try:
                        yield env.timeout(rewind)
                    except BaseException:
                        span_append((
                            "rewind", started, env._now,
                            {"drive": drive_name, "aborted": True},
                            sid, swid, request,
                        ))
                        raise
                    span_append((
                        "rewind", started, env._now, ("drive", drive_name),
                        sid, swid, request,
                    ))
                else:
                    yield env.timeout(rewind)

            requested_at = env.now
            with robot.resource.request() as grant:
                yield grant
                wait = env.now - requested_at
                if wait > 0:
                    trace.record(
                        "robot_wait", requested_at, env.now,
                        parent=swid, request=request, drive=drive_name,
                    )
                record.robot_wait_s += wait
                # The paper "models robotic arm mount/unmount operations as
                # constant time values": the arm is held for the whole
                # unload + return-to-cell + fetch + mount sequence.
                if tracing:
                    sid = trace._next_id
                    trace._next_id = sid + 1
                    started = env._now
                    try:
                        yield env.timeout(drive.unload_time)
                    except BaseException:
                        span_append((
                            "unload", started, env._now,
                            {"drive": drive_name, "aborted": True},
                            sid, swid, request,
                        ))
                        raise
                    span_append((
                        "unload", started, env._now, ("drive", drive_name),
                        sid, swid, request,
                    ))
                    sid = trace._next_id
                    trace._next_id = sid + 1
                    started = env._now
                    try:
                        yield env.timeout(robot.exchange_time)
                    except BaseException:
                        span_append((
                            "robot_exchange", started, env._now,
                            {"drive": drive_name, "aborted": True},
                            sid, swid, request,
                        ))
                        raise
                    span_append((
                        "robot_exchange", started, env._now, ("drive", drive_name),
                        sid, swid, request,
                    ))
                else:
                    yield env.timeout(drive.unload_time)
                    yield env.timeout(robot.exchange_time)
                drive.unmount()
                drive.mount(new_tape)
                if tracing:
                    sid = trace._next_id
                    trace._next_id = sid + 1
                    started = env._now
                    try:
                        yield env.timeout(drive.load_time)
                    except BaseException:
                        span_append((
                            "load", started, env._now,
                            {"drive": drive_name, "tape": str(tape_id), "aborted": True},
                            sid, swid, request,
                        ))
                        raise
                    span_append((
                        "load", started, env._now,
                        ("drive", drive_name, "tape", str(tape_id)),
                        sid, swid, request,
                    ))
                else:
                    yield env.timeout(drive.load_time)
        else:
            requested_at = env.now
            with robot.resource.request() as grant:
                yield grant
                wait = env.now - requested_at
                if wait > 0:
                    trace.record(
                        "robot_wait", requested_at, env.now,
                        parent=swid, request=request, drive=drive_name,
                    )
                record.robot_wait_s += wait
                if tracing:
                    sid = trace._next_id
                    trace._next_id = sid + 1
                    started = env._now
                    try:
                        yield env.timeout(robot.move_time)  # fetch only: drive was empty
                    except BaseException:
                        span_append((
                            "robot_fetch", started, env._now,
                            {"drive": drive_name, "aborted": True},
                            sid, swid, request,
                        ))
                        raise
                    span_append((
                        "robot_fetch", started, env._now, ("drive", drive_name),
                        sid, swid, request,
                    ))
                else:
                    yield env.timeout(robot.move_time)
                drive.mount(new_tape)
                if tracing:
                    sid = trace._next_id
                    trace._next_id = sid + 1
                    started = env._now
                    try:
                        yield env.timeout(drive.load_time)
                    except BaseException:
                        span_append((
                            "load", started, env._now,
                            {"drive": drive_name, "tape": str(tape_id), "aborted": True},
                            sid, swid, request,
                        ))
                        raise
                    span_append((
                        "load", started, env._now,
                        ("drive", drive_name, "tape", str(tape_id)),
                        sid, swid, request,
                    ))
                else:
                    yield env.timeout(drive.load_time)
    except BaseException:
        if tracing:
            span_append((
                "switch", sw_started, env._now,
                {"drive": drive_name, "tape": str(tape_id), "aborted": True},
                swid, parent, request,
            ))
        raise
    if tracing:
        span_append((
            "switch", sw_started, env._now,
            ("drive", drive_name, "tape", str(tape_id)),
            swid, parent, request,
        ))

    record.num_switches += 1
