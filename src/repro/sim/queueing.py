"""Offered-load extension: restore requests that *queue*.

The paper assumes requests arrive "one by one … with long time interval
between two requests", so queueing time is zero (Sec. 6).  Real restore
traffic is bursty; this module drops that assumption while keeping the
paper's service model: requests arrive in a Poisson stream and are served
FCFS, one at a time, by the whole tape system (whose per-request service
time comes from the full placement-aware simulator and depends on the
evolving mount/head state).

This quantifies something the paper's metric hides: a placement scheme's
*bandwidth* advantage compounds under load, because shorter services drain
the queue — near saturation the sojourn-time gap between schemes is much
larger than the bare response-time gap (``benchmarks/bench_queueing.py``).

For *overlapping* in-flight requests on one shared clock — the open-system
model — see :mod:`repro.sim.opensystem`, whose ``serial-fcfs`` policy
reproduces this module's closed-loop results seed-for-seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from .session import SimulationSession

__all__ = ["QueuedRequestRecord", "QueueingResult", "simulate_fcfs_queue"]


@dataclass(frozen=True)
class QueuedRequestRecord:
    """One served arrival."""

    request_id: int
    arrival_s: float
    start_s: float
    finish_s: float
    size_mb: float
    #: True when the request was failed rather than served (every candidate
    #: drive down with no repair pending — open-system fault injection).
    aborted: bool = False

    @property
    def wait_s(self) -> float:
        return self.start_s - self.arrival_s

    @property
    def service_s(self) -> float:
        return self.finish_s - self.start_s

    @property
    def sojourn_s(self) -> float:
        """Arrival to completion — what the requester experiences."""
        return self.finish_s - self.arrival_s


@dataclass
class QueueingResult:
    """Aggregates over one arrival stream."""

    scheme: str
    arrival_rate_per_hour: float
    records: List[QueuedRequestRecord] = field(default_factory=list)

    def _array(self, attr: str) -> np.ndarray:
        return np.array([getattr(r, attr) for r in self.records])

    def _mean(self, attr: str) -> float:
        """Mean of a per-record attribute; NaN when no records exist."""
        if not self.records:
            return float("nan")
        return float(self._array(attr).mean())

    @property
    def mean_wait_s(self) -> float:
        return self._mean("wait_s")

    @property
    def mean_service_s(self) -> float:
        return self._mean("service_s")

    @property
    def mean_sojourn_s(self) -> float:
        return self._mean("sojourn_s")

    def sojourn_percentile(self, q: float) -> float:
        if not self.records:
            return float("nan")
        return float(np.percentile(self._array("sojourn_s"), q))

    @property
    def utilization(self) -> float:
        """Fraction of the horizon at least one service was in progress.

        Overlapping or out-of-order services (the open-system policies) are
        handled by taking the *union* of the busy intervals against the
        latest finish time — summed service over last-record finish would
        overcount overlap and undercount the horizon.
        """
        if not self.records:
            return 0.0
        horizon = float(self._array("finish_s").max())
        if horizon <= 0:
            return 0.0
        intervals = sorted((r.start_s, r.finish_s) for r in self.records)
        busy = 0.0
        cur_start, cur_end = intervals[0]
        for start, end in intervals[1:]:
            if start <= cur_end:
                cur_end = max(cur_end, end)
            else:
                busy += cur_end - cur_start
                cur_start, cur_end = start, end
        busy += cur_end - cur_start
        return busy / horizon

    @property
    def offered_load(self) -> float:
        """λ·E[S]: >1 means the stream exceeds the system's capacity."""
        return self.arrival_rate_per_hour / 3600.0 * self.mean_service_s

    def __len__(self) -> int:
        return len(self.records)



def simulate_fcfs_queue(
    session: SimulationSession,
    arrival_rate_per_hour: float,
    num_arrivals: int = 100,
    seed: int = 0,
    reset: bool = True,
) -> QueueingResult:
    """Serve a Poisson stream of Zipf-sampled requests FCFS.

    Service times come from :meth:`SimulationSession.serve`, so they reflect
    placement quality *and* the mount/head state left by the previous
    request (a busy period keeps hot tapes mounted — the cache effect is
    captured).
    """
    if arrival_rate_per_hour <= 0:
        raise ValueError(f"arrival rate must be positive, got {arrival_rate_per_hour}")
    if num_arrivals <= 0:
        raise ValueError(f"num_arrivals must be positive, got {num_arrivals}")
    if reset:
        session.reset()

    rng = np.random.default_rng(seed)
    inter = rng.exponential(3600.0 / arrival_rate_per_hour, size=num_arrivals)
    arrivals = np.cumsum(inter)
    sampled = session.workload.requests.sample(rng, num_arrivals)

    result = QueueingResult(session.scheme_name, arrival_rate_per_hour)
    clock = 0.0
    for arrival, request in zip(arrivals, sampled):
        start = max(float(arrival), clock)
        metrics = session.serve(request)
        finish = start + metrics.response_s
        clock = finish
        result.records.append(
            QueuedRequestRecord(
                request_id=request.id,
                arrival_s=float(arrival),
                start_s=start,
                finish_s=finish,
                size_mb=metrics.size_mb,
            )
        )
    return result
