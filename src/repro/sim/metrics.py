"""Metric definitions (Sec. 6 "Metrics").

Per request the paper reports response time and its decomposition:

* **response** — from request submission to the last requested byte landing
  on disk (the last-finishing drive's completion time);
* **seek** / **transfer** — the seek and transfer time of the drive that
  finishes the request *last*;
* **switch** — ``response − (seek + transfer)``: everything else the
  critical drive spent (rewind, unload, robot waiting/moves, load);
* **effective bandwidth** — request bytes / response time.

Experiment-level numbers average these over the sampled request stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = ["DriveServiceRecord", "RequestMetrics", "EvaluationResult"]


@dataclass
class DriveServiceRecord:
    """What one drive did while serving one request."""

    drive: str
    completion_s: float = 0.0
    seek_s: float = 0.0
    transfer_s: float = 0.0
    bytes_mb: float = 0.0
    num_switches: int = 0
    robot_wait_s: float = 0.0

    @property
    def overhead_s(self) -> float:
        """Non-productive time: completion − seek − transfer."""
        return self.completion_s - self.seek_s - self.transfer_s


@dataclass(frozen=True)
class RequestMetrics:
    """The paper's per-request measurements."""

    request_id: int
    size_mb: float
    response_s: float
    seek_s: float
    transfer_s: float
    num_tapes: int
    num_switches: int
    num_drives: int

    def __post_init__(self) -> None:
        if self.response_s <= 0:
            raise ValueError(f"non-positive response time {self.response_s}")

    @property
    def switch_s(self) -> float:
        """Response minus the critical drive's seek-and-transfer time."""
        return self.response_s - self.seek_s - self.transfer_s

    @property
    def bandwidth_mb_s(self) -> float:
        """Effective data retrieval bandwidth for this request."""
        return self.size_mb / self.response_s

    @classmethod
    def from_drive_records(
        cls,
        request_id: int,
        size_mb: float,
        num_tapes: int,
        records: Sequence[DriveServiceRecord],
    ) -> "RequestMetrics":
        if not records:
            raise ValueError("request was served by no drive")
        critical = max(records, key=lambda r: r.completion_s)
        return cls(
            request_id=request_id,
            size_mb=size_mb,
            response_s=critical.completion_s,
            seek_s=critical.seek_s,
            transfer_s=critical.transfer_s,
            num_tapes=num_tapes,
            num_switches=sum(r.num_switches for r in records),
            num_drives=len(records),
        )


@dataclass
class EvaluationResult:
    """Metrics over a stream of sampled requests, with aggregate views."""

    scheme: str
    samples: List[RequestMetrics] = field(default_factory=list)
    metadata: Dict = field(default_factory=dict)

    def append(self, metrics: RequestMetrics) -> None:
        self.samples.append(metrics)

    def _array(self, attr: str) -> np.ndarray:
        return np.array([getattr(m, attr) for m in self.samples], dtype=np.float64)

    # -- the paper's five evaluation metrics --------------------------------
    @property
    def avg_bandwidth_mb_s(self) -> float:
        """Effective data retrieval bandwidth, averaged over requests."""
        return float(self._array("bandwidth_mb_s").mean())

    @property
    def avg_response_s(self) -> float:
        return float(self._array("response_s").mean())

    @property
    def avg_switch_s(self) -> float:
        return float(self._array("switch_s").mean())

    @property
    def avg_seek_s(self) -> float:
        return float(self._array("seek_s").mean())

    @property
    def avg_transfer_s(self) -> float:
        return float(self._array("transfer_s").mean())

    # -- additional views ------------------------------------------------------
    @property
    def aggregate_bandwidth_mb_s(self) -> float:
        """Total bytes / total response time (throughput-weighted view)."""
        sizes = self._array("size_mb")
        responses = self._array("response_s")
        return float(sizes.sum() / responses.sum())

    @property
    def avg_request_size_mb(self) -> float:
        return float(self._array("size_mb").mean())

    @property
    def avg_switches_per_request(self) -> float:
        return float(self._array("num_switches").mean())

    @property
    def avg_drives_per_request(self) -> float:
        return float(self._array("num_drives").mean())

    @property
    def transfer_fraction(self) -> float:
        """Share of response time spent transferring (paper's 62 % vs 19 %)."""
        return float(self._array("transfer_s").sum() / self._array("response_s").sum())

    def __len__(self) -> int:
        return len(self.samples)

    def summary(self) -> Dict[str, float]:
        return {
            "scheme": self.scheme,
            "samples": len(self.samples),
            "avg_bandwidth_mb_s": self.avg_bandwidth_mb_s,
            "avg_response_s": self.avg_response_s,
            "avg_switch_s": self.avg_switch_s,
            "avg_seek_s": self.avg_seek_s,
            "avg_transfer_s": self.avg_transfer_s,
            "avg_request_size_mb": self.avg_request_size_mb,
            "avg_switches_per_request": self.avg_switches_per_request,
            "avg_drives_per_request": self.avg_drives_per_request,
        }
