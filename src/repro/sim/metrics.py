"""Metric definitions (Sec. 6 "Metrics").

Per request the paper reports response time and its decomposition:

* **response** — from request submission to the last requested byte landing
  on disk (the last-finishing drive's completion time);
* **seek** / **transfer** — the seek and transfer time of the drive that
  finishes the request *last*;
* **switch** — ``response − (seek + transfer)``: everything else the
  critical drive spent (rewind, unload, robot waiting/moves, load);
* **effective bandwidth** — request bytes / response time.

Experiment-level numbers average these over the sampled request stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

__all__ = [
    "DriveServiceRecord",
    "RequestMetrics",
    "EvaluationResult",
    "WindowStat",
    "sliding_window_stats",
    "in_flight_profile",
]


@dataclass
class DriveServiceRecord:
    """What one drive did while serving one request."""

    drive: str
    completion_s: float = 0.0
    seek_s: float = 0.0
    transfer_s: float = 0.0
    bytes_mb: float = 0.0
    num_switches: int = 0
    robot_wait_s: float = 0.0

    @property
    def overhead_s(self) -> float:
        """Non-productive time: completion − seek − transfer."""
        return self.completion_s - self.seek_s - self.transfer_s


@dataclass(frozen=True)
class RequestMetrics:
    """The paper's per-request measurements."""

    request_id: int
    size_mb: float
    response_s: float
    seek_s: float
    transfer_s: float
    num_tapes: int
    num_switches: int
    num_drives: int
    #: True when the request was failed rather than fully served (fault
    #: injection: every candidate drive down with no repair pending).
    #: ``response_s`` then measures arrival to the abort decision.
    aborted: bool = False

    def __post_init__(self) -> None:
        if self.response_s <= 0 and not self.aborted:
            raise ValueError(f"non-positive response time {self.response_s}")

    @property
    def switch_s(self) -> float:
        """Response minus the critical drive's seek-and-transfer time."""
        return self.response_s - self.seek_s - self.transfer_s

    @property
    def bandwidth_mb_s(self) -> float:
        """Effective data retrieval bandwidth for this request."""
        if self.response_s <= 0:
            return 0.0  # aborted at the arrival instant: no bytes moved
        return self.size_mb / self.response_s

    @classmethod
    def from_drive_records(
        cls,
        request_id: int,
        size_mb: float,
        num_tapes: int,
        records: Sequence[DriveServiceRecord],
        start_s: float = 0.0,
        aborted: bool = False,
    ) -> "RequestMetrics":
        """Aggregate one request's drive records.

        ``start_s`` is the request's admission time on the environment's
        clock: records carry absolute completion times, so response time is
        measured relative to it (0 on a fresh closed-loop environment).
        """
        if not records:
            raise ValueError("request was served by no drive")
        critical = max(records, key=lambda r: r.completion_s)
        return cls(
            request_id=request_id,
            size_mb=size_mb,
            response_s=critical.completion_s - start_s,
            seek_s=critical.seek_s,
            transfer_s=critical.transfer_s,
            num_tapes=num_tapes,
            num_switches=sum(r.num_switches for r in records),
            num_drives=len(records),
            aborted=aborted,
        )


@dataclass
class EvaluationResult:
    """Metrics over a stream of sampled requests, with aggregate views."""

    scheme: str
    samples: List[RequestMetrics] = field(default_factory=list)
    metadata: Dict = field(default_factory=dict)

    def append(self, metrics: RequestMetrics) -> None:
        self.samples.append(metrics)

    def _array(self, attr: str) -> np.ndarray:
        return np.array([getattr(m, attr) for m in self.samples], dtype=np.float64)

    # -- the paper's five evaluation metrics --------------------------------
    @property
    def avg_bandwidth_mb_s(self) -> float:
        """Effective data retrieval bandwidth, averaged over requests."""
        return float(self._array("bandwidth_mb_s").mean())

    @property
    def avg_response_s(self) -> float:
        return float(self._array("response_s").mean())

    @property
    def avg_switch_s(self) -> float:
        return float(self._array("switch_s").mean())

    @property
    def avg_seek_s(self) -> float:
        return float(self._array("seek_s").mean())

    @property
    def avg_transfer_s(self) -> float:
        return float(self._array("transfer_s").mean())

    # -- additional views ------------------------------------------------------
    @property
    def aggregate_bandwidth_mb_s(self) -> float:
        """Total bytes / total response time (throughput-weighted view)."""
        sizes = self._array("size_mb")
        responses = self._array("response_s")
        return float(sizes.sum() / responses.sum())

    @property
    def avg_request_size_mb(self) -> float:
        return float(self._array("size_mb").mean())

    @property
    def avg_switches_per_request(self) -> float:
        return float(self._array("num_switches").mean())

    @property
    def avg_drives_per_request(self) -> float:
        return float(self._array("num_drives").mean())

    @property
    def transfer_fraction(self) -> float:
        """Share of response time spent transferring (paper's 62 % vs 19 %)."""
        return float(self._array("transfer_s").sum() / self._array("response_s").sum())

    def __len__(self) -> int:
        return len(self.samples)

    def summary(self) -> Dict[str, float]:
        return {
            "scheme": self.scheme,
            "samples": len(self.samples),
            "avg_bandwidth_mb_s": self.avg_bandwidth_mb_s,
            "avg_response_s": self.avg_response_s,
            "avg_switch_s": self.avg_switch_s,
            "avg_seek_s": self.avg_seek_s,
            "avg_transfer_s": self.avg_transfer_s,
            "avg_request_size_mb": self.avg_request_size_mb,
            "avg_switches_per_request": self.avg_switches_per_request,
            "avg_drives_per_request": self.avg_drives_per_request,
        }


# -- time-windowed open-system metrics ------------------------------------
#
# The closed-loop metrics above average over a request *stream*; an
# open-system run (repro.sim.opensystem) additionally needs load-over-time
# views: how many requests are in flight, and how sojourn percentiles move
# through a busy period.  These helpers operate on any sequence of objects
# exposing ``arrival_s`` and ``finish_s`` (``repro.sim.queueing``'s
# QueuedRequestRecord and the open-system records both qualify).


@dataclass(frozen=True)
class WindowStat:
    """Aggregates over one time window of an open-system run."""

    start_s: float
    end_s: float
    #: Requests that arrived inside the window.
    arrivals: int
    #: Requests that completed inside the window.
    completions: int
    #: Time-average number of in-flight requests over the window.
    mean_in_flight: float
    #: Sojourn percentiles of the requests completing in the window
    #: (NaN when the window saw no completions).
    p50_sojourn_s: float
    p95_sojourn_s: float


def in_flight_profile(records: Sequence) -> "tuple[np.ndarray, np.ndarray]":
    """Step function of the in-flight request count.

    Returns ``(times, counts)`` where ``counts[i]`` is the number of
    requests in flight during ``[times[i], times[i+1])``.  Empty input
    yields two empty arrays.
    """
    if not records:
        return np.array([]), np.array([], dtype=np.int64)
    events = []
    for r in records:
        events.append((float(r.arrival_s), 1))
        events.append((float(r.finish_s), -1))
    events.sort()
    times = np.array([t for t, _ in events])
    counts = np.cumsum([d for _, d in events])
    return times, counts


def sliding_window_stats(
    records: Sequence,
    window_s: float,
    step_s: "float | None" = None,
) -> List[WindowStat]:
    """Sliding-window load/latency stats over an open-system run.

    Windows of width ``window_s`` advance by ``step_s`` (default: the full
    width, i.e. tumbling windows) from time 0 until the last completion.
    The final window is clamped to the horizon, and ``mean_in_flight``
    divides by the clamped width — a window wider than the whole run thus
    reports the true time-average load over ``[0, horizon]`` instead of
    diluting it across simulated time that never happened.  Empty record
    sets yield an empty list.
    """
    if window_s <= 0:
        raise ValueError(f"window_s must be positive, got {window_s}")
    step = window_s if step_s is None else step_s
    if step <= 0:
        raise ValueError(f"step_s must be positive, got {step}")
    if not records:
        return []

    arrivals = np.array([float(r.arrival_s) for r in records])
    finishes = np.array([float(r.finish_s) for r in records])
    sojourns = finishes - arrivals
    horizon = float(finishes.max())

    times, counts = in_flight_profile(records)
    # Integral of the in-flight step function up to each event time.
    deltas = np.diff(times, append=times[-1])
    cum_area = np.concatenate([[0.0], np.cumsum(counts * deltas)])

    def area_until(t: float) -> float:
        """∫ in_flight(u) du for u in [0, t]."""
        i = int(np.searchsorted(times, t, side="right"))
        area = cum_area[i]
        if 0 < i <= len(counts):
            area -= counts[i - 1] * max(0.0, float(times[i - 1] + deltas[i - 1]) - t)
        return float(area)

    out: List[WindowStat] = []
    start = 0.0
    while start < horizon:
        end = min(start + window_s, horizon)
        done = (finishes > start) & (finishes <= end)
        done_sojourns = sojourns[done]
        out.append(
            WindowStat(
                start_s=start,
                end_s=end,
                arrivals=int(((arrivals >= start) & (arrivals < end)).sum()),
                completions=int(done.sum()),
                mean_in_flight=(area_until(end) - area_until(start)) / (end - start),
                p50_sojourn_s=(
                    float(np.percentile(done_sojourns, 50)) if done.any() else float("nan")
                ),
                p95_sojourn_s=(
                    float(np.percentile(done_sojourns, 95)) if done.any() else float("nan")
                ),
            )
        )
        start += step
    return out
