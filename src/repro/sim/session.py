"""High-level simulation sessions: place a workload, then serve requests.

This is the main user-facing entry point::

    from repro import SimulationSession, ParallelBatchPlacement, generate_workload
    from repro.hardware import SystemSpec

    workload = generate_workload()
    session = SimulationSession(workload, SystemSpec.table1(), ParallelBatchPlacement())
    result = session.evaluate(num_samples=200, seed=1)
    print(result.avg_bandwidth_mb_s)
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..catalog import Request
from ..des import Trace
from ..hardware import SystemSpec, TapeSystem
from ..placement.base import PlacementResult, PlacementScheme
from ..workload import Workload
from .engine import simulate_request
from .metrics import EvaluationResult, RequestMetrics
from .seekplanner import resolve_seek_planner

__all__ = ["SimulationSession", "evaluate_scheme"]

#: The paper samples 200 requests per configuration.
DEFAULT_NUM_SAMPLES = 200


class SimulationSession:
    """A placed tape system ready to serve requests.

    Parameters
    ----------
    workload:
        Objects + requests to place and serve.
    spec:
        System configuration (defaults in :meth:`SystemSpec.table1`).
    scheme:
        A placement scheme; mutually exclusive with ``placement``.
    placement:
        A precomputed :class:`PlacementResult` (skips running the scheme).
    trace:
        Enable span-level telemetry (slower, but exposes every rewind /
        robot wait / seek / transfer for analysis).
    replacement_policy:
        Which mounted tape gets displaced first; see
        :mod:`repro.sim.replacement`.  Default: the paper's least-popular.
    seek_planner:
        Within-tape retrieval-order strategy (a registered name or a
        :class:`~repro.sim.seekplanner.SeekPlanner` instance); ``None``
        resolves to the default ``greedy-sweep``, the paper's two-sweep
        heuristic.  See :mod:`repro.sim.seekplanner`.
    """

    def __init__(
        self,
        workload: Workload,
        spec: SystemSpec,
        scheme: Optional[PlacementScheme] = None,
        placement: Optional[PlacementResult] = None,
        trace: bool = False,
        replacement_policy: str = "least_popular",
        seek_planner=None,
    ) -> None:
        if (scheme is None) == (placement is None):
            raise ValueError("provide exactly one of `scheme` or `placement`")
        self.workload = workload
        self.spec = spec
        self.placement = placement if placement is not None else scheme.place(workload, spec)
        self.placement.validate(workload.catalog, spec)
        self.system = TapeSystem(spec)
        self.index = self.placement.apply_to(self.system)
        self.trace = Trace(enabled=trace)
        self.replacement_policy = replacement_policy
        self.seek_planner = resolve_seek_planner(seek_planner)

    @property
    def scheme_name(self) -> str:
        return self.placement.scheme

    def open(
        self,
        policy: str = "concurrent",
        failures: Optional[dict] = None,
        faults: Optional[tuple] = None,
        fault_seed: int = 0,
        seek_planner=None,
        repair_policy: Optional[str] = None,
        read_selection: str = "least-loaded",
        scheduler=None,
        shard_workers: int = 1,
    ):
        """Open-system serving: concurrent in-flight requests on one clock.

        Returns an :class:`~repro.sim.opensystem.OpenSystem` owning a
        long-lived environment; its ``run(arrival_rate_per_hour, ...)``
        injects a Poisson stream of Zipf-sampled requests scheduled by
        ``policy`` (``"serial-fcfs"`` reproduces
        :func:`~repro.sim.queueing.simulate_fcfs_queue` seed-for-seed;
        ``"concurrent"`` overlaps requests across libraries and drives).

        ``faults`` arms declarative :class:`~repro.sim.faults.FaultSpec`s
        (stochastic drive fail/repair, robot outages, transient errors);
        ``failures`` is the legacy one-shot map (drive name -> failure
        time).  Both validate here, before any simulation starts.
        ``seek_planner`` overrides the session's planner for this open
        system only.  ``repair_policy`` selects how media-loss repair
        traffic competes with user restores (see
        :data:`~repro.sim.repair.REPAIR_POLICIES`); ``read_selection``
        switches redundant reads between ``"least-loaded"`` (default)
        and ``"cheapest"`` member ordering.

        ``scheduler`` picks the kernel's event scheduler (``"heapq"`` /
        ``"calendar"`` — a pure throughput knob, results bit-identical);
        ``shard_workers > 1`` runs one environment per library shard in
        forked workers when the configuration permits (see
        :mod:`repro.sim.sharding`), falling back — with a warning — to
        the single-environment path when it doesn't.
        """
        from .opensystem import OpenSystem

        return OpenSystem(
            self, policy=policy, failures=failures, faults=faults,
            fault_seed=fault_seed, seek_planner=seek_planner,
            repair_policy=repair_policy, read_selection=read_selection,
            scheduler=scheduler, shard_workers=shard_workers,
        )

    def serve(self, request: Request, failures: Optional[dict] = None) -> RequestMetrics:
        """Serve one request to completion on an exclusive environment.

        This is the paper's closed-loop model (requests arrive "one by one
        with long time interval"): mounted tapes / head positions persist
        between calls, but no two requests are ever in flight together —
        use :meth:`open` for that.

        ``failures`` optionally injects drive failures during *this*
        request (drive name -> failure time); see
        :func:`~repro.sim.engine.simulate_request`.
        """
        return simulate_request(
            self.system,
            self.index,
            request,
            self.placement.tape_priority,
            self.trace,
            self.replacement_policy,
            failures=failures,
            seek_planner=self.seek_planner,
        )

    def fail_drives(self, drive_names: "list[str]") -> None:
        """Permanently mark drives as failed (degraded-operation studies).

        A failed drive's mounted cartridge is pulled back to its cell; the
        scheduler will serve its content through the surviving drives.
        ``reset()`` restores the healthy state.
        """
        wanted = set(drive_names)
        found = set()
        for library in self.system.libraries:
            for drive in library.drives:
                if str(drive.id) in wanted:
                    drive.failed = True
                    drive.pinned = False
                    if drive.mounted is not None:
                        drive.unmount()
                    found.add(str(drive.id))
        missing = wanted - found
        if missing:
            raise ValueError(f"unknown drive names: {sorted(missing)}")

    def reset(self) -> None:
        """Restore the freshly-placed state (initial mounts, heads at BOT)."""
        self.index = self.placement.apply_to(self.system)

    def evaluate(
        self,
        num_samples: int = DEFAULT_NUM_SAMPLES,
        seed: int = 0,
        warmup: int = 0,
        reset: bool = True,
    ) -> EvaluationResult:
        """Serve ``num_samples`` Zipf-sampled requests; average the metrics.

        ``warmup`` extra requests are served first and discarded (they bring
        mounted switching tapes / head positions to steady state).
        """
        if reset:
            self.reset()
        rng = np.random.default_rng(seed)
        sampled = self.workload.requests.sample(rng, warmup + num_samples)
        result = EvaluationResult(
            scheme=self.scheme_name,
            metadata={
                "num_samples": num_samples,
                "warmup": warmup,
                "seed": seed,
                "num_libraries": self.spec.num_libraries,
            },
        )
        for i, request in enumerate(sampled):
            metrics = self.serve(request)
            if i >= warmup:
                result.append(metrics)
        return result


def evaluate_scheme(
    workload: Workload,
    spec: SystemSpec,
    scheme: PlacementScheme,
    num_samples: int = DEFAULT_NUM_SAMPLES,
    seed: int = 0,
    warmup: int = 0,
) -> EvaluationResult:
    """One-shot convenience: place, serve, aggregate."""
    session = SimulationSession(workload, spec, scheme=scheme)
    return session.evaluate(num_samples=num_samples, seed=seed, warmup=warmup, reset=False)
