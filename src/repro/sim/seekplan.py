"""Within-tape retrieval-order optimization.

"The objects retrieving order within a tape is optimized to reduce the data
seek time based on object location information retrieved from the indexing
database" (Sec. 6).  The paper's schedule is a single sweep: read the
requested extents in ascending or descending position order, whichever
costs less from the current head position.  That is a strong heuristic but
not always optimal — reading an extent carries the head forward for free,
so a schedule that turns around at the right points can ride those free
advances (and, under an *affine* locate model with
``TapeSpec.locate_startup_s > 0``, save whole startup latencies by chaining
adjacent extents).  The retrieval order is therefore pluggable: see
:mod:`repro.sim.seekplanner` for the planner registry (this module's
two-sweep heuristic is its ``greedy-sweep`` default).

:func:`locate_cost` is the single shared accumulation of locate time along
a fixed order; every planner and every cost oracle in this package prices
schedules through it, so alternative planners cannot drift from the
simulator's cost model.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..hardware import ObjectExtent, TapeSpec

__all__ = ["locate_cost", "sweep_cost", "plan_retrieval"]


def locate_cost(
    ordered: Sequence[ObjectExtent], head_mb: float, spec: TapeSpec
) -> float:
    """Total locate time of reading ``ordered`` in exactly that order.

    This is *the* cost model: the engine's per-extent ``drive.read_extent``
    charges the same ``spec.locate_time`` hop-by-hop, so a planner whose
    plan costs X under this function takes X seconds of seek in the DES.
    The spec lookups are hoisted and zero-distance moves skipped, keeping
    the float expression (and therefore the result bits) identical to the
    pre-refactor hand-inlined loops and to a ``spec.locate_time`` sum.
    """
    startup = spec.locate_startup_s
    rate = spec.locate_rate_mb_s
    cost = 0.0
    position = head_mb
    for extent in ordered:
        distance = abs(extent.start_mb - position)
        if distance != 0:
            cost += startup + distance / rate
        position = extent.end_mb
    return cost


def sweep_cost(
    extents: Sequence[ObjectExtent], head_mb: float, spec: TapeSpec, ascending: bool
) -> float:
    """Total locate time of reading ``extents`` in one sweep direction."""
    if not extents:
        return 0.0
    ordered = sorted(extents, key=lambda e: e.start_mb, reverse=not ascending)
    return locate_cost(ordered, head_mb, spec)


def plan_retrieval(
    extents: Sequence[ObjectExtent], head_mb: float, spec: TapeSpec
) -> Tuple[List[ObjectExtent], float]:
    """Choose the cheaper sweep; returns (ordered extents, total seek time).

    Planning runs once per tape visit inside the simulation hot loop, so the
    two candidate sweeps are sorted exactly once each and priced through the
    shared :func:`locate_cost` accumulation.
    """
    if not extents:
        return [], 0.0
    asc = sorted(extents, key=lambda e: e.start_mb)
    up = locate_cost(asc, head_mb, spec)
    desc = sorted(extents, key=lambda e: e.start_mb, reverse=True)
    down = locate_cost(desc, head_mb, spec)
    if up <= down:
        return asc, up
    return desc, down
