"""Within-tape retrieval-order optimization.

"The objects retrieving order within a tape is optimized to reduce the data
seek time based on object location information retrieved from the indexing
database" (Sec. 6).  With the linear positioning model and non-overlapping
extents, the optimal schedule is a single sweep: read the requested extents
in ascending or descending position order, whichever costs less from the
current head position.  (Any order that changes direction mid-stream crosses
some region twice and cannot beat the better sweep.)
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..hardware import ObjectExtent, TapeSpec

__all__ = ["sweep_cost", "plan_retrieval"]


def sweep_cost(
    extents: Sequence[ObjectExtent], head_mb: float, spec: TapeSpec, ascending: bool
) -> float:
    """Total locate time of reading ``extents`` in one sweep direction."""
    if not extents:
        return 0.0
    ordered = sorted(extents, key=lambda e: e.start_mb, reverse=not ascending)
    cost = 0.0
    position = head_mb
    for extent in ordered:
        cost += spec.locate_time(position, extent.start_mb)
        position = extent.end_mb
    return cost


def plan_retrieval(
    extents: Sequence[ObjectExtent], head_mb: float, spec: TapeSpec
) -> Tuple[List[ObjectExtent], float]:
    """Choose the cheaper sweep; returns (ordered extents, total seek time).

    Planning runs once per tape visit inside the simulation hot loop, so the
    two candidate sweeps are sorted exactly once each and costed inline
    (same float expression as :func:`sweep_cost`, hoisting the spec lookups).
    """
    if not extents:
        return [], 0.0
    startup = spec.locate_startup_s
    rate = spec.locate_rate_mb_s

    asc = sorted(extents, key=lambda e: e.start_mb)
    up = 0.0
    position = head_mb
    for extent in asc:
        start = extent.start_mb
        distance = abs(start - position)
        if distance != 0:
            up += startup + distance / rate
        position = extent.end_mb

    desc = sorted(extents, key=lambda e: e.start_mb, reverse=True)
    down = 0.0
    position = head_mb
    for extent in desc:
        start = extent.start_mb
        distance = abs(start - position)
        if distance != 0:
            down += startup + distance / rate
        position = extent.end_mb

    if up <= down:
        return asc, up
    return desc, down
