"""The multiple-tape-library simulator (Sec. 6) and its metrics."""

from .analytic import mounted_response, uncontended_switch_time
from .engine import RequestExecution, simulate_request
from .faults import (
    DriveFailure,
    DriveFaultProcess,
    FaultEscalation,
    FaultInjector,
    FaultSpec,
    RetryPolicy,
    RobotOutage,
    TransientFaults,
    failures_to_specs,
)
from .queueing import QueuedRequestRecord, QueueingResult, simulate_fcfs_queue
from .metrics import (
    DriveServiceRecord,
    EvaluationResult,
    RequestMetrics,
    WindowStat,
    in_flight_profile,
    sliding_window_stats,
)
from .opensystem import (
    SCHEDULING_POLICIES,
    OpenSystem,
    OpenSystemResult,
    available_scheduling_policies,
    simulate_open_system,
)
from .replacement import REPLACEMENT_POLICIES, available_policies, replacement_key
from .scheduling import LibraryPlan, TapeJob, build_library_plan, estimate_job_time
from .seekplan import locate_cost, plan_retrieval, sweep_cost
from .seekplanner import (
    DEFAULT_SEEK_PLANNER,
    ApproxPlanner,
    ExactPlanner,
    GreedySweepPlanner,
    KLookaheadPlanner,
    SeekPlanner,
    available_seek_planners,
    make_seek_planner,
    register_seek_planner,
    resolve_seek_planner,
)
from .session import SimulationSession, evaluate_scheme

__all__ = [
    "simulate_request",
    "RequestExecution",
    "QueuedRequestRecord",
    "QueueingResult",
    "simulate_fcfs_queue",
    "OpenSystem",
    "OpenSystemResult",
    "simulate_open_system",
    "SCHEDULING_POLICIES",
    "available_scheduling_policies",
    "FaultSpec",
    "DriveFailure",
    "DriveFaultProcess",
    "RobotOutage",
    "TransientFaults",
    "RetryPolicy",
    "FaultEscalation",
    "FaultInjector",
    "failures_to_specs",
    "SimulationSession",
    "evaluate_scheme",
    "RequestMetrics",
    "DriveServiceRecord",
    "EvaluationResult",
    "WindowStat",
    "sliding_window_stats",
    "in_flight_profile",
    "TapeJob",
    "LibraryPlan",
    "build_library_plan",
    "estimate_job_time",
    "plan_retrieval",
    "sweep_cost",
    "locate_cost",
    "SeekPlanner",
    "GreedySweepPlanner",
    "ExactPlanner",
    "ApproxPlanner",
    "KLookaheadPlanner",
    "DEFAULT_SEEK_PLANNER",
    "register_seek_planner",
    "make_seek_planner",
    "available_seek_planners",
    "resolve_seek_planner",
    "mounted_response",
    "REPLACEMENT_POLICIES",
    "available_policies",
    "replacement_key",
    "uncontended_switch_time",
]
