"""The multiple-tape-library simulator (Sec. 6) and its metrics."""

from .analytic import mounted_response, uncontended_switch_time
from .engine import simulate_request
from .queueing import QueuedRequestRecord, QueueingResult, simulate_fcfs_queue
from .metrics import DriveServiceRecord, EvaluationResult, RequestMetrics
from .replacement import REPLACEMENT_POLICIES, available_policies, replacement_key
from .scheduling import LibraryPlan, TapeJob, build_library_plan, estimate_job_time
from .seekplan import plan_retrieval, sweep_cost
from .session import SimulationSession, evaluate_scheme

__all__ = [
    "simulate_request",
    "QueuedRequestRecord",
    "QueueingResult",
    "simulate_fcfs_queue",
    "SimulationSession",
    "evaluate_scheme",
    "RequestMetrics",
    "DriveServiceRecord",
    "EvaluationResult",
    "TapeJob",
    "LibraryPlan",
    "build_library_plan",
    "estimate_job_time",
    "plan_retrieval",
    "sweep_cost",
    "mounted_response",
    "REPLACEMENT_POLICIES",
    "available_policies",
    "replacement_key",
    "uncontended_switch_time",
]
