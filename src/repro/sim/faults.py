"""Declarative fault injection & recovery for the open-system simulator.

The paper's model assumes every drive and robot arm is healthy for the
whole run; PR 1's open system only supported one-shot, permanent,
absolute-time drive deaths (``failures={"L0.D3": 1800.0}``).  This module
replaces that ad-hoc map with composable, declarative fault *specs*:

:class:`DriveFailure`
    A one-shot drive death at an absolute time, optionally repaired a
    fixed delay later.  The legacy ``failures=`` mapping is kept as sugar
    for a list of these (see :func:`failures_to_specs`).

:class:`DriveFaultProcess`
    A stochastic alternating fail/repair renewal process per targeted
    drive: times to failure are drawn with the given MTBF, times to
    repair with the given MTTR, from an exponential or Weibull
    distribution.  Draws come from per-``(spec, drive)`` substreams
    derived with :class:`numpy.random.SeedSequence` (the same
    content-derived spawn-key construction as the sweep engine's
    :func:`~repro.experiments.parallel.spawn_seed`), so chaos runs are
    bit-reproducible for a fixed ``fault_seed`` — independent of sweep
    worker count, point order, or how many other specs are armed.

:class:`RobotOutage`
    A one-shot robot-arm jam: the arm is seized exclusively for the
    outage duration, stalling every exchange in the library behind it
    (capacity-1 robots make this library-wide by construction).

:class:`TransientFaults`
    Transient mount/read errors: before each gated drive operation, each
    armed stream flips a coin per attempt; errors are retried after a
    capped exponential backoff (:class:`RetryPolicy`) and *escalate to a
    hard drive failure* (:class:`FaultEscalation`) once the retry budget
    is exhausted.

A :class:`FaultInjector` owns the armed specs for one
:class:`~repro.sim.opensystem.OpenSystem`: it runs the fail/repair
processes on the shared environment, drives the dispatcher's
``fail_drive``/``repair_drive`` recovery hooks, keeps the availability /
degraded-time books, publishes ``faults.*`` counters and gauges on the
metrics registry, and records ``fault_*`` spans on the trace.

Lifecycle: recurring processes are (re)armed at each ``run()`` and stood
down when the last planned arrival completes, so the environment drains
instead of ticking MTBF clocks forever.  One-shot specs intentionally run
to completion even past the last arrival (matching the legacy watchdog
semantics, whose horizon extended to the failure instant).  A process
that is mid-repair at stand-down finishes the repair first — chaos runs
therefore never leak an injector-failed drive across runs; only transient
*escalations* are permanent (operator intervention required).

See ``docs/robustness.md`` for the full semantics, including degraded
parallel-batch failover and pinned-drive restore-on-repair.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..des import Interrupt

__all__ = [
    "FaultSpec",
    "DriveFailure",
    "DriveFaultProcess",
    "RobotOutage",
    "TransientFaults",
    "TapeFailure",
    "TapeWearProcess",
    "RetryPolicy",
    "FaultEscalation",
    "FaultInjector",
    "failures_to_specs",
    "known_drive_names",
    "known_tape_names",
]

#: Supported time-to-failure / time-to-repair distributions.
DISTRIBUTIONS = ("exponential", "weibull")

#: Drive operations a :class:`TransientFaults` stream can gate.
OPERATIONS = ("mount", "read")


class FaultEscalation(Exception):
    """Transient-error retries exhausted: escalate to a hard drive failure.

    Raised out of :meth:`FaultInjector.transient_gate` into the drive
    worker, which runs the same cleanup path as a failure interrupt: the
    cartridge is pulled, unserved extents re-queue, and the drive leaves
    the worker pool.  Escalated drives are *not* auto-repaired.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff for transient errors.

    Retry ``i`` (1-based) waits ``min(base_delay_s * multiplier**(i-1),
    max_delay_s)``; after ``max_retries`` failed attempts the error
    escalates to a hard failure.
    """

    max_retries: int = 4
    base_delay_s: float = 2.0
    multiplier: float = 2.0
    max_delay_s: float = 60.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.base_delay_s < 0:
            raise ValueError(f"base_delay_s must be >= 0, got {self.base_delay_s}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError(
                f"max_delay_s {self.max_delay_s} < base_delay_s {self.base_delay_s}"
            )

    def delay_s(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        return min(self.base_delay_s * self.multiplier ** (attempt - 1), self.max_delay_s)

    def schedule(self) -> Tuple[float, ...]:
        """The full backoff schedule, one delay per allowed retry."""
        return tuple(self.delay_s(i + 1) for i in range(self.max_retries))


def _check_distribution(distribution: str, shape: float) -> None:
    if distribution not in DISTRIBUTIONS:
        raise ValueError(
            f"unknown distribution {distribution!r}; known: {', '.join(DISTRIBUTIONS)}"
        )
    if shape <= 0:
        raise ValueError(f"weibull shape must be positive, got {shape}")


def _known_drives(system) -> Dict[str, Tuple[int, object]]:
    """Drive name -> (library id, drive) over the whole system."""
    return {
        str(drive.id): (library.id, drive)
        for library in system.libraries
        for drive in library.drives
    }


def _check_drive_names(system, names: Iterable[str]) -> None:
    known = _known_drives(system)
    for name in names:
        if name not in known:
            raise ValueError(
                f"unknown drive name {name!r}; known: {', '.join(sorted(known))}"
            )


def known_drive_names(system) -> List[str]:
    """Sorted drive names of the system (for CLI-side id validation)."""
    return sorted(_known_drives(system))


def _known_tapes(system) -> Dict[str, object]:
    """Tape name (``L0.T3``) -> :class:`~repro.hardware.tape.Tape`."""
    return {str(tape.id): tape for tape in system.all_tapes()}


def known_tape_names(system) -> List[str]:
    """Sorted tape names of the system (for CLI-side id validation)."""
    return sorted(_known_tapes(system))


def _check_tape_names(system, names: Iterable[str]) -> None:
    known = _known_tapes(system)
    for name in names:
        if name not in known:
            raise ValueError(
                f"unknown tape name {name!r}; known: {', '.join(sorted(known))}"
            )


@dataclass(frozen=True)
class FaultSpec:
    """Base class for declarative fault models.

    Subclasses are frozen pure-data dataclasses: picklable (they ride
    inside sweep points) and canonically hashable (they participate in
    the sweep engine's content-addressed cache keys).  ``validate`` runs
    at :class:`~repro.sim.opensystem.OpenSystem` construction time, so a
    bad spec errors before any simulation starts.
    """

    def validate(self, system) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


@dataclass(frozen=True)
class DriveFailure(FaultSpec):
    """One-shot drive death at ``at_s``; optionally repaired later.

    With ``repair_after_s=None`` this reproduces the legacy
    ``failures={drive: at_s}`` semantics exactly (permanent death, armed
    even if the failure instant lands after the last arrival completes).
    """

    drive: str
    at_s: float
    repair_after_s: Optional[float] = None

    def validate(self, system) -> None:
        if self.at_s < 0:
            raise ValueError(f"failure time must be >= 0, got {self.at_s}")
        if self.repair_after_s is not None and self.repair_after_s <= 0:
            raise ValueError(f"repair_after_s must be positive, got {self.repair_after_s}")
        _check_drive_names(system, [self.drive])


@dataclass(frozen=True)
class DriveFaultProcess(FaultSpec):
    """Stochastic alternating fail/repair process on the targeted drives.

    ``drives=None`` targets every drive in the system.  Each targeted
    drive runs an independent renewal process: up for a drawn
    time-to-failure (mean ``mtbf_s``), down for a drawn time-to-repair
    (mean ``mttr_s``).  ``distribution="weibull"`` rescales so the drawn
    mean still equals the configured MTBF/MTTR for any ``shape``.
    """

    mtbf_s: float
    mttr_s: float
    drives: Optional[Tuple[str, ...]] = None
    distribution: str = "exponential"
    shape: float = 1.0

    def validate(self, system) -> None:
        if self.mtbf_s <= 0:
            raise ValueError(f"mtbf_s must be positive, got {self.mtbf_s}")
        if self.mttr_s <= 0:
            raise ValueError(f"mttr_s must be positive, got {self.mttr_s}")
        _check_distribution(self.distribution, self.shape)
        if self.drives is not None:
            _check_drive_names(system, self.drives)


@dataclass(frozen=True)
class RobotOutage(FaultSpec):
    """One-shot robot-arm jam: exchanges stall library-wide for the duration.

    The outage seizes the (capacity-1) arm through its normal resource
    queue, so an exchange already in progress completes first — the jam
    begins at the next grant, exactly like a real arm seizing between
    moves.  ``library=None`` jams every library's arm.
    """

    at_s: float
    duration_s: float
    library: Optional[int] = None

    def validate(self, system) -> None:
        if self.at_s < 0:
            raise ValueError(f"outage time must be >= 0, got {self.at_s}")
        if self.duration_s <= 0:
            raise ValueError(f"outage duration must be positive, got {self.duration_s}")
        if self.library is not None:
            known = [library.id for library in system.libraries]
            if self.library not in known:
                raise ValueError(
                    f"unknown library {self.library!r}; known: {known}"
                )


@dataclass(frozen=True)
class TransientFaults(FaultSpec):
    """Transient mount/read errors, retried with capped exponential backoff.

    Before each gated operation on a targeted drive, the stream draws one
    coin per attempt: with probability ``probability`` the attempt errors
    and the worker backs off per ``retry`` before trying again.  Once the
    retry budget is exhausted the error escalates to a hard drive failure
    (:class:`FaultEscalation`), which is permanent.
    """

    probability: float
    retry: RetryPolicy = RetryPolicy()
    drives: Optional[Tuple[str, ...]] = None
    #: Which drive operations the stream gates.
    operations: Tuple[str, ...] = ("mount", "read")

    def validate(self, system) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}"
            )
        if not self.operations:
            raise ValueError("operations must not be empty")
        for operation in self.operations:
            if operation not in OPERATIONS:
                raise ValueError(
                    f"unknown operation {operation!r}; known: "
                    + ", ".join(OPERATIONS)
                )
        if self.drives is not None:
            _check_drive_names(system, self.drives)


@dataclass(frozen=True)
class TapeFailure(FaultSpec):
    """One-shot whole-tape media loss at ``at_s``.

    Every extent on the cartridge becomes permanently unreadable: queued
    and future jobs targeting it abort, redundant reads fail over to the
    surviving members, and the repair manager (when redundancy allows)
    re-replicates the lost members onto fresh tapes.  Unlike drives, lost
    media is never auto-repaired — data comes back only through rebuild.
    """

    tape: str
    at_s: float

    def validate(self, system) -> None:
        if self.at_s < 0:
            raise ValueError(f"failure time must be >= 0, got {self.at_s}")
        _check_tape_names(system, [self.tape])


@dataclass(frozen=True)
class TapeWearProcess(FaultSpec):
    """Recurring media wear-out: Weibull threshold on mount/seek cycles.

    Each targeted tape draws a lifetime threshold (in *cycles*: one per
    mount, one per extent seek) from a Weibull with the configured mean
    and shape, using the same per-``(spec, tape)`` ``SeedSequence``
    substream construction as :class:`DriveFaultProcess` — wear deaths
    are bit-reproducible for a fixed ``fault_seed`` regardless of which
    other specs are armed.  The process is recurring in the fleet sense:
    any number of tapes can wear out over one run, whenever their
    accumulated cycles cross their drawn threshold.  ``tapes=None``
    targets every tape in the system.
    """

    mean_cycles: float
    shape: float = 2.0
    tapes: Optional[Tuple[str, ...]] = None

    def validate(self, system) -> None:
        if self.mean_cycles <= 0:
            raise ValueError(
                f"mean_cycles must be positive, got {self.mean_cycles}"
            )
        if self.shape <= 0:
            raise ValueError(f"weibull shape must be positive, got {self.shape}")
        if self.tapes is not None:
            _check_tape_names(system, self.tapes)


def failures_to_specs(failures: Dict[str, float]) -> Tuple[DriveFailure, ...]:
    """The legacy ``failures=`` mapping as one-shot permanent specs."""
    return tuple(
        DriveFailure(drive=name, at_s=float(at_s))
        for name, at_s in sorted(failures.items())
    )


def _draw(rng: np.random.Generator, distribution: str, mean_s: float, shape: float) -> float:
    """One time-to-event draw with the requested mean."""
    if distribution == "weibull":
        scale = mean_s / math.gamma(1.0 + 1.0 / shape)
        return float(scale * rng.weibull(shape))
    return float(rng.exponential(mean_s))


class _TransientStream:
    """One armed :class:`TransientFaults` spec bound to its substream."""

    __slots__ = ("spec", "rng")

    def __init__(self, spec: TransientFaults, rng: np.random.Generator) -> None:
        self.spec = spec
        self.rng = rng


class _WearState:
    """One targeted tape's media-wear odometer.

    ``threshold`` is drawn once per tape at injector bind time (the first
    draw of the tape's content-derived substream), so the serve-path hook
    ``note_tape_cycles`` is just an add-and-compare.
    """

    __slots__ = ("spec_index", "spec", "threshold", "cycles", "dead")

    def __init__(self, spec_index: int, spec: TapeWearProcess) -> None:
        self.spec_index = spec_index
        self.spec = spec
        self.threshold: Optional[float] = None
        self.cycles = 0.0
        self.dead = False


class _RecurringHandle:
    """A live recurring fail/repair process plus its stand-down phase."""

    __slots__ = ("process", "interruptible")

    def __init__(self, process) -> None:
        self.process = process
        #: True while the process is in its time-to-failure wait (safe to
        #: interrupt); False while a failure/repair cycle is in flight
        #: (stand-down lets the repair finish so no drive leaks as dead).
        self.interruptible = True


class FaultInjector:
    """Arms fault specs on one open system and keeps the availability books.

    Construct with the spec list and a ``seed``, then :meth:`bind` to the
    owning :class:`~repro.sim.opensystem.OpenSystem` (which registers the
    ``faults.*`` instruments).  The open system calls :meth:`arm` at each
    ``run()``, :meth:`stand_down` when the last planned arrival completes,
    and :meth:`finalize`/:meth:`summary` after the environment drains.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0) -> None:
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.seed = int(seed)
        self._rngs: Dict[Tuple[int, str], np.random.Generator] = {}
        self._bound = False

    # -- binding ---------------------------------------------------------
    def bind(self, opensys) -> "FaultInjector":
        """Attach to the open system's env/trace/registry/dispatchers."""
        self.os = opensys
        self.env = opensys.env
        self.trace = opensys.trace
        registry = opensys.registry
        self._drive_failures = registry.counter("faults.drive_failures", unit="failures")
        self._drive_repairs = registry.counter("faults.drive_repairs", unit="repairs")
        self._robot_outage_count = registry.counter("faults.robot_outages", unit="outages")
        self._transient_errors = registry.counter("faults.transient_errors", unit="errors")
        self._retries = registry.counter("faults.retries", unit="retries")
        self._escalations = registry.counter("faults.escalations", unit="failures")
        self._drives_down = registry.gauge("faults.drives_down", unit="drives")

        #: drive name -> time it went down (open downtime intervals).
        self._down_since: Dict[str, float] = {}
        self._downtime_s: Dict[str, float] = {}
        self._degraded_since: Optional[float] = None
        self._degraded_s = 0.0
        #: Drives whose repair the injector has already committed to.
        self._pending_repairs: set = set()
        self._recurring: List[_RecurringHandle] = []
        self._stopped = False
        self._one_shots_armed = False

        #: (drive name, operation) -> streams that can actually fire there.
        #: Zero-probability streams are left out so the dispatchers never
        #: arm gates that cannot fire (the gate's hot path is one dict
        #: lookup plus one RNG draw per armed stream).
        self._gates: Dict[Tuple[str, str], List[_TransientStream]] = {}
        for spec_index, spec in enumerate(self.specs):
            if not isinstance(spec, TransientFaults):
                continue
            if spec.probability <= 0.0:
                continue
            for name in self._target_drive_names(spec.drives):
                stream = _TransientStream(spec, self._rng(spec_index, name))
                for operation in spec.operations:
                    self._gates.setdefault((name, operation), []).append(stream)

        #: tape id -> wear odometer, first targeting spec wins.  Media
        #: instruments are created only when a media spec is armed, so
        #: drive-only chaos runs keep their registry (and fleet snapshots)
        #: bit-identical to PR 8.
        self._wear: Dict[object, _WearState] = {}
        if self.has_media_faults:
            self._tape_losses = registry.counter("faults.tape_losses", unit="tapes")
            known_tapes = _known_tapes(opensys.system)
            for spec_index, spec in enumerate(self.specs):
                if not isinstance(spec, TapeWearProcess):
                    continue
                names = spec.tapes if spec.tapes is not None else sorted(known_tapes)
                for name in names:
                    tape_id = known_tapes[name].id
                    if tape_id not in self._wear:
                        state = _WearState(spec_index, spec)
                        # Draw the wear-out threshold now, at bind time: it
                        # is the first (and only) draw of this tape's
                        # substream either way, and paying ~fleet x rng
                        # setup here keeps it off the serve path that
                        # ``note_tape_cycles`` sits on.
                        state.threshold = _draw(
                            self._rng(spec_index, str(tape_id)),
                            "weibull",
                            spec.mean_cycles,
                            spec.shape,
                        )
                        self._wear[tape_id] = state
        self._bound = True
        return self

    @property
    def has_media_faults(self) -> bool:
        """True when any spec can destroy tape media (loss or wear)."""
        return any(
            isinstance(spec, (TapeFailure, TapeWearProcess)) for spec in self.specs
        )

    def _target_drive_names(self, names: Optional[Tuple[str, ...]]) -> List[str]:
        known = _known_drives(self.os.system)
        if names is None:
            return sorted(known)
        return list(names)

    def _rng(self, spec_index: int, label: str) -> np.random.Generator:
        """Persistent per-(spec, target) substream, content-derived.

        Mirrors :func:`~repro.experiments.parallel.spawn_seed`: the spawn
        key hashes the target's identity rather than a sequential child
        index, so adding or removing specs never reseeds the others, and
        re-arming across ``run()`` calls continues the same stream.
        """
        key = (spec_index, label)
        rng = self._rngs.get(key)
        if rng is None:
            digest = hashlib.sha256(f"{spec_index}:{label}".encode("utf-8")).digest()
            spawn_key = tuple(
                int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)
            )
            rng = np.random.default_rng(
                np.random.SeedSequence(entropy=self.seed, spawn_key=spawn_key)
            )
            self._rngs[key] = rng
        return rng

    def _dispatcher_for(self, drive_name: str):
        library_id, drive = _known_drives(self.os.system)[drive_name]
        return self.os.policy.dispatchers[library_id], drive

    # -- arming / stand-down --------------------------------------------
    def arm(self) -> None:
        """(Re)start fault processes for one ``run()`` on the shared env."""
        env = self.env
        self._stopped = False
        for spec_index, spec in enumerate(self.specs):
            if isinstance(spec, DriveFaultProcess):
                for name in self._target_drive_names(spec.drives):
                    handle = _RecurringHandle(None)
                    handle.process = env.process(
                        self._recurring_process(spec_index, spec, name, handle)
                    )
                    self._recurring.append(handle)
            elif isinstance(spec, DriveFailure) and not self._one_shots_armed:
                env.process(self._one_shot_process(spec))
            elif isinstance(spec, RobotOutage) and not self._one_shots_armed:
                for library in self.os.system.libraries:
                    if spec.library is None or spec.library == library.id:
                        env.process(self._robot_outage_process(spec, library))
            elif isinstance(spec, TapeFailure) and not self._one_shots_armed:
                env.process(self._tape_failure_process(spec))
        self._one_shots_armed = True
        media = self.has_media_faults
        for dispatcher in self.os.policy.dispatchers.values():
            dispatcher.transients_armed = any(
                (str(drive.id), operation) in self._gates
                for drive in dispatcher.library.drives
                for operation in OPERATIONS
            )
            dispatcher.media_armed = media
            dispatcher.wear_armed = any(
                tape_id.library == dispatcher.library.id for tape_id in self._wear
            )

    def stand_down(self) -> None:
        """Stop recurring processes so the environment can drain.

        Processes waiting out a time-to-failure are interrupted; a process
        mid-repair finishes that repair first (the drive comes back up)
        and then exits — chaos runs never leak an injector-failed drive.
        One-shot specs are left to run to completion, matching the legacy
        watchdog semantics.
        """
        self._stopped = True
        recurring, self._recurring = self._recurring, []
        for handle in recurring:
            if handle.process.is_alive and handle.interruptible:
                handle.process.interrupt("stand-down")
            elif handle.process.is_alive:
                self._recurring.append(handle)  # exits after its repair

    def finalize(self) -> None:
        """Fold still-open downtime/degraded intervals into the totals.

        Called after the environment drains; drives left dead (permanent
        one-shots, escalations) get their open interval recorded as a
        ``fault_drive_down`` span and accounted up to the horizon.  The
        interval re-opens at the horizon so a continuation ``run()`` keeps
        counting.
        """
        now = self.env.now
        for name, since in list(self._down_since.items()):
            if now > since:
                self._downtime_s[name] = self._downtime_s.get(name, 0.0) + now - since
                self.trace.record("fault_drive_down", since, now, drive=name, open=True)
                self._down_since[name] = now
        if self._degraded_since is not None and now > self._degraded_since:
            self._degraded_s += now - self._degraded_since
            self._degraded_since = now

    # -- queries used by the scheduler ----------------------------------
    def will_recover(self, library) -> bool:
        """True if any of the library's drives has a committed repair.

        This is the dispatcher's deadlock-vs-wait decision when its last
        drive dies: queued jobs wait for a committed repair, and abort
        otherwise.  Only repairs the injector has already scheduled count —
        a *future* stochastic failure/repair cycle cannot resurrect a
        drive that died for another reason.
        """
        return any(str(d.id) in self._pending_repairs for d in library.drives)

    # -- accounting hooks (called by the dispatcher) ---------------------
    def note_drive_down(self, drive_name: str) -> None:
        """A drive left the worker pool (any cause: fault, legacy, escalation)."""
        now = self.env.now
        self._drive_failures.inc()
        self._drives_down.add(1, now)
        self._down_since[drive_name] = now
        if self._degraded_since is None:
            self._degraded_since = now

    def note_drive_up(self, drive_name: str) -> None:
        """A repaired drive rejoined the worker pool."""
        now = self.env.now
        since = self._down_since.pop(drive_name, None)
        if since is not None:
            self._downtime_s[drive_name] = (
                self._downtime_s.get(drive_name, 0.0) + now - since
            )
            self.trace.record("fault_drive_down", since, now, drive=drive_name)
        self._drive_repairs.inc()
        self._drives_down.add(-1, now)
        if not self._down_since and self._degraded_since is not None:
            self._degraded_s += now - self._degraded_since
            self._degraded_since = None

    # -- media loss --------------------------------------------------------
    def lose_tape(self, tape_id, cause: str = "media-loss") -> bool:
        """Destroy a cartridge: mark lost, purge its jobs, trigger repair.

        Idempotent (the first loss wins).  Queued and in-flight-but-not-
        started jobs targeting the tape abort immediately; a transfer
        already streaming finishes (the loss manifests at the next mount).
        The repair manager — when the open system has one — is notified
        last, so its rebuild reads never race the purge.
        """
        tape = self.os.system.tape(tape_id)
        if tape.lost:
            return False
        now = self.env.now
        tape.lost = True
        self._tape_losses.inc()
        self.trace.record(
            "fault_tape_loss", now, now, tape=str(tape_id), cause=cause
        )
        self.os.policy.dispatchers[tape_id.library].purge_lost_tape(tape_id)
        repair = getattr(self.os, "repair", None)
        if repair is not None:
            repair.on_tape_lost(tape_id)
        return True

    def note_tape_cycles(self, tape_id, cycles: float) -> None:
        """Advance a tape's wear odometer (called at job boundaries).

        Only invoked by dispatchers with ``wear_armed`` set, so the
        no-media-fault hot path never reaches this.
        """
        state = self._wear.get(tape_id)
        if state is None or state.dead:
            return
        state.cycles += cycles
        if state.cycles >= state.threshold:
            state.dead = True
            self.lose_tape(tape_id, cause="wear")

    # -- the transient-error gate ----------------------------------------
    def transient_gate(self, name: str, operation: str, parent=None, request=None):
        """Generator gating one drive operation behind its transient streams.

        Yields backoff timeouts for each drawn error; raises
        :class:`FaultEscalation` once a stream's retry budget is spent.
        Records one ``fault_transient`` span per completed backoff.  Only
        streams that can fire are indexed (see ``_gates``), so the common
        no-error path is one lookup and one draw per stream.
        """
        env = self.env
        for stream in self._gates.get((name, operation), ()):
            spec = stream.spec
            attempt = 0
            while stream.rng.random() < spec.probability:
                attempt += 1
                self._transient_errors.inc()
                if attempt > spec.retry.max_retries:
                    self._escalations.inc()
                    raise FaultEscalation(
                        f"transient {operation} errors on {name}: "
                        f"{spec.retry.max_retries} retries exhausted"
                    )
                self._retries.inc()
                start = env.now
                yield env.timeout(spec.retry.delay_s(attempt))
                self.trace.record(
                    "fault_transient", start, env.now, parent=parent, request=request,
                    drive=name, operation=operation, attempt=attempt,
                )

    # -- fault processes --------------------------------------------------
    def _recurring_process(
        self, spec_index: int, spec: DriveFaultProcess, name: str, handle: _RecurringHandle
    ):
        env = self.env
        rng = self._rng(spec_index, name)
        try:
            while not self._stopped:
                handle.interruptible = True
                yield env.timeout(_draw(rng, spec.distribution, spec.mtbf_s, spec.shape))
                handle.interruptible = False
                if self._stopped:
                    return
                dispatcher, drive = self._dispatcher_for(name)
                ttr = _draw(rng, spec.distribution, spec.mttr_s, spec.shape)
                self._pending_repairs.add(name)
                if not dispatcher.fail_drive(drive, cause=f"fault-process:{name}"):
                    # Already down (escalated / another spec's cycle): not
                    # ours to repair.  The TTR was still drawn, so stream
                    # consumption stays independent of other specs' timing.
                    self._pending_repairs.discard(name)
                    continue
                yield env.timeout(ttr)
                self._pending_repairs.discard(name)
                dispatcher.repair_drive(drive)
        except Interrupt:
            self._pending_repairs.discard(name)

    def _one_shot_process(self, spec: DriveFailure):
        env = self.env
        delay = spec.at_s - env.now
        if delay > 0:
            yield env.timeout(delay)
        dispatcher, drive = self._dispatcher_for(spec.drive)
        if spec.repair_after_s is not None:
            # Commit to the repair *before* the failure interrupt lands, so
            # the dispatcher's unservable check sees it and queued jobs wait
            # out the outage instead of aborting.
            self._pending_repairs.add(spec.drive)
        dispatcher.fail_drive(drive, cause=f"one-shot:{spec.drive}")
        if spec.repair_after_s is not None:
            yield env.timeout(spec.repair_after_s)
            self._pending_repairs.discard(spec.drive)
            dispatcher.repair_drive(drive)

    def _tape_failure_process(self, spec: TapeFailure):
        env = self.env
        delay = spec.at_s - env.now
        if delay > 0:
            yield env.timeout(delay)
        tape = _known_tapes(self.os.system)[spec.tape]
        self.lose_tape(tape.id, cause=f"one-shot:{spec.tape}")

    def _robot_outage_process(self, spec: RobotOutage, library):
        env = self.env
        delay = spec.at_s - env.now
        if delay > 0:
            yield env.timeout(delay)
        with library.robot.resource.request() as req:
            yield req
            start = env.now
            self._robot_outage_count.inc()
            yield env.timeout(spec.duration_s)
            self.trace.record(
                "fault_robot_outage", start, env.now, library=library.id
            )

    # -- reporting --------------------------------------------------------
    def summary(self, horizon_s: float, num_drives: int) -> Dict[str, float]:
        """Availability/degraded-time/fault counters for one finished run.

        Availability is the time-weighted mean fraction of drives up:
        ``1 - total_downtime / (num_drives * horizon)``.  Call
        :meth:`finalize` first so open intervals are folded in.
        """
        total_down = sum(self._downtime_s.values())
        denominator = horizon_s * num_drives
        availability = 1.0 - total_down / denominator if denominator > 0 else 1.0
        summary = {
            "availability": availability,
            "degraded_time_s": self._degraded_s,
            "downtime_s": total_down,
            "drive_failures": self._drive_failures.value,
            "drive_repairs": self._drive_repairs.value,
            "robot_outages": self._robot_outage_count.value,
            "transient_errors": self._transient_errors.value,
            "retries": self._retries.value,
            "escalations": self._escalations.value,
        }
        if self.has_media_faults:
            summary["tape_losses"] = self._tape_losses.value
        return summary
