"""Media-loss repair: re-replication that competes with user traffic.

When a cartridge dies (:class:`~repro.sim.faults.TapeFailure`, or a
:class:`~repro.sim.faults.TapeWearProcess` crossing a wear threshold),
the data on it is gone; durability then hinges on how fast the surviving
redundancy-group members can be re-replicated onto fresh media — with
the *same* drives that serve user restores.  TALICS³ (arXiv:2405.00003)
shows this repair loop, not the code rate, governs cloud-scale tape
durability; this module makes it a first-class simulated subsystem.

:class:`RepairManager` is catalog-driven: on a loss it walks the dead
cartridge's layout, confirms membership through
:meth:`~repro.catalog.LocationIndex.tapes_of`, classifies each affected
group *degraded* (``needed`` survivors remain — rebuildable) or *lost*
(below ``needed`` — the object is unrecoverable and counted), and
enqueues one rebuild per lost member.  A rebuild:

1. reads ``needed`` surviving members through the normal per-library
   dispatchers and drive workers (repair-flagged jobs, negative trace
   tokens so user span trees are untouched);
2. re-encodes via :mod:`repro.redundancy.coding` (verified end-to-end on
   a deterministic witness payload for erasure-coded groups);
3. writes the rebuilt member to a fresh least-used tape honoring the
   placement layer's anti-affinity (never a tape holding a sibling
   member; libraries are spread back up to the group's span), modeled
   read-symmetrically (position seek + transfer on the new extent);
4. re-indexes the member, closing the group's at-risk window.

Repair traffic is admitted under a pluggable priority policy
(:data:`REPAIR_POLICIES`):

``user-first``
    Repair jobs queue behind every waiting user job (lowest MTTDL
    impact on restores, longest at-risk windows).
``repair-first``
    Repair jobs preempt the queue order (shortest at-risk windows,
    restores eat the inflation).
``fair-share``
    A token bucket on drive-seconds: repair accrues ``share`` x live
    drives tokens per second and pays each job's estimated drive time,
    with a work-conserving override when no user job is waiting (idle
    drives always repair, and the environment can always drain).

All ``repair.*`` instruments (counters, the ``repair.groups_at_risk``
gauge, the backlog digest) are registered only when media faults are
actually configured, so fault-free and drive-fault-only runs keep their
registries — and the PR 8 parity goldens — bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..catalog.index import RedundancyGroup
from ..hardware.tape import ObjectExtent, Tape, TapeId
from ..redundancy.coding import decode_stripes, encode_stripes
from ..redundancy.dispatch import select_members

__all__ = ["RepairManager", "REPAIR_POLICIES"]

#: How rebuild traffic competes with user restores for drives.
REPAIR_POLICIES = ("user-first", "repair-first", "fair-share")

#: Fair-share token accrual: fraction of each live drive's time repair
#: may claim while user work is waiting.
FAIR_SHARE = 0.5

#: Fair-share bucket cap (drive-seconds): bounds the repair burst after
#: a long user-only stretch.
FAIR_BURST_S = 1800.0


@dataclass
class _RepairTask:
    """One lost member to rebuild (identified by its group coordinates)."""

    object_id: int
    part: int
    parts: int
    replica: int
    replicas: int
    needed: int
    size_mb: float
    detected_at: float

    @property
    def key(self) -> Tuple[int, int, int]:
        return (self.object_id, self.part, self.replica)


class RepairManager:
    """Detects media losses and re-replicates through the dispatchers.

    Constructed by :class:`~repro.sim.opensystem.OpenSystem` when (and
    only when) the armed fault specs include media faults; the fault
    injector calls :meth:`on_tape_lost` after purging the dead tape's
    queued jobs.
    """

    def __init__(self, opensys, policy: str = "user-first",
                 fair_share: float = FAIR_SHARE,
                 fair_burst_s: float = FAIR_BURST_S) -> None:
        if policy not in REPAIR_POLICIES:
            raise ValueError(
                f"unknown repair policy {policy!r}; known: "
                + ", ".join(REPAIR_POLICIES)
            )
        self.os = opensys
        self.env = opensys.env
        self.trace = opensys.trace
        self.policy = policy
        registry = opensys.registry
        self._jobs = registry.counter("repair.jobs", unit="jobs")
        self._rebuilt = registry.counter("repair.members_rebuilt", unit="members")
        self._degraded = registry.counter("repair.groups_degraded", unit="groups")
        self._lost_c = registry.counter("repair.groups_lost", unit="groups")
        self._objects_lost_c = registry.counter("repair.objects_lost", unit="objects")
        self._failed = registry.counter("repair.failed", unit="jobs")
        self._at_risk_gauge = registry.gauge("repair.groups_at_risk", unit="groups")
        self._backlog_digest = registry.digest("repair.backlog_s", unit="s")

        #: Degraded groups with a rebuild outstanding.
        self._at_risk = 0
        #: (object, part) groups below ``needed`` survivors — unrecoverable.
        self._lost_groups: Set[Tuple[int, int]] = set()
        self._lost_objects: Set[int] = set()
        #: Rebuild key -> detection time of still-open repairs (open
        #: backlog is charged up to the horizon in :meth:`summary`).
        self._open: Dict[Tuple[int, int, int], float] = {}
        self._closed_backlog_s = 0.0
        #: object id -> write targets of in-flight rebuilds (anti-affinity
        #: against concurrent repairs of the same object's other members).
        self._inflight_targets: Dict[int, Set[TapeId]] = {}
        #: Negative trace tokens: repair span trees never collide with the
        #: user arrival sequence.
        self._seq = 0

        for dispatcher in opensys.policy.dispatchers.values():
            dispatcher.configure_repair(policy, fair_share, fair_burst_s)

    # -- loss detection ---------------------------------------------------
    def on_tape_lost(self, tape_id: TapeId) -> None:
        """Classify every group on the dead cartridge; enqueue rebuilds.

        Catalog-driven: only members the location index still maps to the
        tape (via :meth:`~repro.catalog.LocationIndex.tapes_of`) count —
        a member already rebuilt elsewhere is not a loss.
        """
        index = self.os.index
        system = self.os.system
        tape = system.tape(tape_id)
        now = self.env.now
        for extent in tape.extents:
            object_id = extent.object_id
            if object_id not in index or tape_id not in index.tapes_of(object_id):
                continue
            entries = index.locate_all(object_id)
            member = next(
                (e for t, e in entries if t == tape_id), None
            )
            if member is None:
                continue
            survivors = [
                (t, e)
                for t, e in entries
                if e.part == member.part
                and not (t == tape_id and e.replica == member.replica)
                and not system.tape(t).lost
            ]
            if len(survivors) < member.needed:
                self._mark_group_lost(object_id, member.part)
                continue
            # Degraded but rebuildable: drop the dead member from the
            # catalog (degraded reads stop routing to it) and rebuild.
            index.remove_member(object_id, tape_id, member.part, member.replica)
            self._degraded.inc()
            self._at_risk += 1
            self._at_risk_gauge.set(self._at_risk, now)
            task = _RepairTask(
                object_id=object_id,
                part=member.part,
                parts=member.parts,
                replica=member.replica,
                replicas=member.replicas,
                needed=member.needed,
                size_mb=member.size_mb,
                detected_at=now,
            )
            self._jobs.inc()
            self._open[task.key] = now
            self.env.process(self._rebuild(task))

    def _mark_group_lost(self, object_id: int, part: int) -> None:
        key = (object_id, part)
        if key in self._lost_groups:
            return
        self._lost_groups.add(key)
        self._lost_c.inc()
        if object_id not in self._lost_objects:
            self._lost_objects.add(object_id)
            self._objects_lost_c.inc()

    # -- the rebuild process ----------------------------------------------
    def _rebuild(self, task: _RepairTask):
        os = self.os
        env = self.env
        policy = os.policy
        self._seq += 1
        token = -self._seq
        with self.trace.span(
            env, "repair_rebuild", request=token, object=task.object_id,
            part=task.part, replica=task.replica, policy=self.policy,
        ) as ctx:
            records: Dict[str, object] = {}
            excluded: Set[TapeId] = set()
            read_replicas: Optional[List[int]] = None

            # Phase 1: read ``needed`` surviving members through the
            # normal dispatchers; aborted tapes are excluded and the read
            # re-dispatches, exactly like a user degraded read.
            while True:
                survivors = self._surviving_members(task, excluded)
                if len(survivors) < task.needed:
                    if len(self._surviving_members(task, set())) < task.needed:
                        # Another loss beat us to it: the group is gone.
                        self._mark_group_lost(task.object_id, task.part)
                        self._finish(task, rebuilt=False)
                    else:
                        # Survivors exist but none are reachable (every
                        # holding library dead with no committed repair).
                        self._failed.inc()
                        # The group stays degraded and at risk; its open
                        # backlog keeps accruing to the horizon.
                    return
                group = RedundancyGroup(
                    object_id=task.object_id,
                    part=task.part,
                    needed=task.needed,
                    members=tuple(
                        sorted(survivors, key=lambda te: te[1].replica)
                    ),
                )
                cost_of = (
                    policy._member_cost
                    if os.read_selection == "cheapest"
                    else None
                )
                chosen = select_members(
                    group, set(), policy._dispatcher_live,
                    policy._dispatcher_load, cost_of=cost_of,
                )
                if chosen is None:
                    self._failed.inc()
                    return
                tape_extents: Dict[TapeId, List[ObjectExtent]] = {}
                for tape_id, extent in chosen:
                    tape_extents.setdefault(tape_id, []).append(extent)
                djobs = policy._submit_tape_jobs(
                    tape_extents, token, ctx.id, records, repair=True
                )
                yield env.all_of([dj.done for dj in djobs])
                aborted = [dj for dj in djobs if dj.aborted]
                if aborted:
                    excluded.update(dj.job.tape_id for dj in aborted)
                    continue
                read_replicas = [extent.replica for _, extent in chosen]
                break

            # Phase 2: re-encode.  For erasure-coded groups, prove the
            # coding layer round-trips on a deterministic witness payload
            # (the simulator carries no real bytes, so this is the
            # end-to-end integrity check of the rebuild math).
            self._verify_rebuild(task, read_replicas)

            # Phase 3: write the rebuilt member to a fresh tape.
            tried: Set[TapeId] = set()
            while True:
                target = self._choose_target(task, tried)
                if target is None:
                    self._failed.inc()
                    return
                extent = ObjectExtent(
                    object_id=task.object_id,
                    start_mb=target.used_mb,
                    size_mb=task.size_mb,
                    part=task.part,
                    parts=task.parts,
                    replica=task.replica,
                    replicas=task.replicas,
                    needed=task.needed,
                )
                target.append_extent(extent)
                inflight = self._inflight_targets.setdefault(
                    task.object_id, set()
                )
                inflight.add(target.id)
                djobs = policy._submit_tape_jobs(
                    {target.id: [extent]}, token, ctx.id, records, repair=True
                )
                yield env.all_of([dj.done for dj in djobs])
                inflight.discard(target.id)
                if not inflight:
                    self._inflight_targets.pop(task.object_id, None)
                if any(dj.aborted for dj in djobs):
                    # Torn write: the half-written region is abandoned on
                    # the tape (never indexed) and the rebuild retries on
                    # fresh media.
                    tried.add(target.id)
                    continue
                os.index.add(task.object_id, target.id, extent)
                self._rebuilt.inc()
                self._finish(task, rebuilt=True)
                return

    def _finish(self, task: _RepairTask, rebuilt: bool) -> None:
        now = self.env.now
        detected = self._open.pop(task.key, task.detected_at)
        backlog = now - detected
        self._closed_backlog_s += backlog
        if rebuilt:
            self._backlog_digest.record(backlog)
        self._at_risk -= 1
        self._at_risk_gauge.set(self._at_risk, now)

    def _surviving_members(
        self, task: _RepairTask, excluded: Set[TapeId]
    ) -> List[Tuple[TapeId, ObjectExtent]]:
        index = self.os.index
        system = self.os.system
        if task.object_id not in index:
            return []
        return [
            (t, e)
            for t, e in index.locate_all(task.object_id)
            if e.part == task.part
            and t not in excluded
            and not system.tape(t).lost
        ]

    def _verify_rebuild(
        self, task: _RepairTask, read_replicas: Optional[List[int]]
    ) -> None:
        if task.needed <= 1:
            return  # replication: the surviving copy is bit-identical
        k, n = task.needed, task.replicas
        witness = task.object_id.to_bytes(8, "little", signed=True) * k
        stripes = encode_stripes(witness, k, n)
        subset = {i: stripes[i] for i in (read_replicas or [])}
        decoded = decode_stripes(subset, k, n, len(witness))
        if decoded != witness:
            raise RuntimeError(
                f"repair decode mismatch for object {task.object_id} "
                f"part {task.part} from replicas {sorted(subset)}"
            )
        if encode_stripes(decoded, k, n)[task.replica] != stripes[task.replica]:
            raise RuntimeError(
                f"repair re-encode mismatch for object {task.object_id} "
                f"part {task.part} replica {task.replica}"
            )

    def _choose_target(
        self, task: _RepairTask, tried: Set[TapeId]
    ) -> Optional[Tape]:
        """A fresh tape for the rebuilt member, honoring anti-affinity.

        Never a lost tape, a tape holding (or receiving, for concurrent
        rebuilds) any member of the object, or one we already tore a
        write on; the library spread is restored up to the group's span
        first; ties break least-used (used MB, then tape id) — the same
        order the placement layer's cursors use.
        """
        os = self.os
        index = self.os.index
        system = self.os.system
        siblings: Set[TapeId] = set()
        part_libs: Set[int] = set()
        if task.object_id in index:
            for t, e in index.locate_all(task.object_id):
                siblings.add(t)
                if e.part == task.part:
                    part_libs.add(t.library)
        siblings |= self._inflight_targets.get(task.object_id, set())
        span = min(task.replicas, len(system.libraries))
        need_spread = len(part_libs) < span
        injector = os.injector
        candidates: List[Tape] = []
        for tape in system.all_tapes():
            if tape.lost or tape.id in siblings or tape.id in tried:
                continue
            if tape.free_mb + 1e-6 < task.size_mb:
                continue
            dispatcher = os.policy.dispatchers[tape.id.library]
            if not dispatcher.workers and not (
                injector is not None
                and injector.will_recover(dispatcher.library)
            ):
                continue
            candidates.append(tape)
        if not candidates:
            return None

        def order(tape: Tape):
            down = 0 if os.policy.dispatchers[tape.id.library].workers else 1
            fresh = (
                1 if need_spread and tape.id.library in part_libs else 0
            )
            return (down, fresh, tape.used_mb, tape.id)

        return min(candidates, key=order)

    # -- reporting ---------------------------------------------------------
    def summary(self, now: float) -> Dict[str, float]:
        """Durability/backlog books for one finished run.

        ``backlog_s`` charges still-open repairs up to the horizon;
        ``objects_total`` is the catalog size, the denominator of the
        result's ``durability``.
        """
        open_backlog = sum(now - t for t in self._open.values())
        return {
            "policy": self.policy,
            "rebuild_jobs": self._jobs.value,
            "members_rebuilt": self._rebuilt.value,
            "groups_degraded": self._degraded.value,
            "groups_lost": self._lost_c.value,
            "groups_at_risk": float(self._at_risk),
            "objects_lost": self._objects_lost_c.value,
            "objects_total": float(len(self.os.index)),
            "repairs_failed": self._failed.value,
            "backlog_s": self._closed_backlog_s + open_backlog,
        }
