"""One robotic tape library: drives, tape slots, and the robot arm."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from .drive import DriveId, TapeDrive
from .robot import Robot
from .specs import LibrarySpec
from .tape import Tape, TapeId

__all__ = ["TapeLibrary"]


class TapeLibrary:
    """A library of ``num_tapes`` cartridges served by ``num_drives`` drives."""

    def __init__(self, library_id: int, spec: LibrarySpec) -> None:
        self.id = library_id
        self.spec = spec
        self.drives: List[TapeDrive] = [
            TapeDrive(DriveId(library_id, i), spec.drive, spec.tape)
            for i in range(spec.num_drives)
        ]
        self.tapes: Dict[TapeId, Tape] = {}
        for slot in range(spec.num_tapes):
            tape_id = TapeId(library_id, slot)
            self.tapes[tape_id] = Tape(tape_id, spec.tape)
        self.robot = Robot(library_id, spec)

    # -- queries ----------------------------------------------------------
    def tape(self, tape_id: TapeId) -> Tape:
        try:
            return self.tapes[tape_id]
        except KeyError:
            raise KeyError(f"tape {tape_id} is not in library {self.id}") from None

    def drive(self, index: int) -> TapeDrive:
        return self.drives[index]

    def mounted_tapes(self) -> Dict[TapeId, TapeDrive]:
        """Tape-id -> drive for every currently mounted tape."""
        return {d.mounted.id: d for d in self.drives if d.mounted is not None}

    def drive_holding(self, tape_id: TapeId) -> Optional[TapeDrive]:
        for drive in self.drives:
            if drive.mounted is not None and drive.mounted.id == tape_id:
                return drive
        return None

    def empty_drives(self) -> List[TapeDrive]:
        return [d for d in self.drives if d.is_empty]

    def switchable_drives(self) -> List[TapeDrive]:
        """Drives eligible for tape switches (not pinned, not failed)."""
        return [d for d in self.drives if not d.pinned and not d.failed]

    def unmount_all(self) -> None:
        for drive in self.drives:
            if drive.mounted is not None:
                drive.unmount()
            drive.pinned = False
            drive.failed = False

    def __iter__(self) -> Iterator[Tape]:
        return iter(self.tapes.values())

    def __repr__(self) -> str:
        mounted = sum(1 for d in self.drives if d.mounted is not None)
        return (
            f"<TapeLibrary {self.id}: {len(self.drives)} drives "
            f"({mounted} mounted), {len(self.tapes)} tapes>"
        )
