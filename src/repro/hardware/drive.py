"""Tape drive model: mount state plus the timing math of Sec. 6.

The drive performs: load/thread, head positioning (linear model), streaming
transfer, rewind, unload.  It holds no DES processes itself — the simulation
engine (:mod:`repro.sim.engine`) sequences these primitives; keeping the
timing math here lets the analytic engine and property tests reuse it.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import count
from typing import Optional

from .specs import DriveSpec, TapeSpec
from .tape import ObjectExtent, Tape

__all__ = ["DriveId", "TapeDrive"]


@dataclass(frozen=True, order=True)
class DriveId:
    """Globally unique drive address: (library index, drive index).

    The rendered form is cached at construction: drive names label every
    span and service record, so ``str(drive.id)`` runs tens of thousands of
    times per simulation.
    """

    library: int
    index: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "_str", f"L{self.library}.D{self.index}")

    def __str__(self) -> str:
        return self._str  # type: ignore[attr-defined]


#: Monotonic mount counter shared by all drives: lets replacement policies
#: order mounted tapes by mount recency without wall-clock timestamps.
_MOUNT_SERIAL = count()


class TapeDrive:
    """One tape drive: mounted-tape state + deterministic timing helpers."""

    def __init__(self, drive_id: DriveId, spec: DriveSpec, tape_spec: TapeSpec) -> None:
        self.id = drive_id
        self.spec = spec
        self.tape_spec = tape_spec
        self.mounted: Optional[Tape] = None
        #: Pinned drives hold "always-mounted" batch-0 tapes (parallel batch
        #: placement); the engine never selects them for switches.
        self.pinned: bool = False
        #: Serial number of the most recent mount (-1 = never mounted).
        self.mount_serial: int = -1
        #: Set by the engine when an injected failure kills the drive; a
        #: failed drive takes no further work until the state is reset.
        self.failed: bool = False

    # -- state transitions -------------------------------------------------
    def mount(self, tape: Tape) -> None:
        """Insert ``tape``; the head starts at the beginning of tape."""
        if self.mounted is not None:
            raise RuntimeError(f"drive {self.id} already holds {self.mounted.id}")
        self.mounted = tape
        self.mount_serial = next(_MOUNT_SERIAL)
        tape.head_mb = 0.0

    def unmount(self) -> Tape:
        """Remove the (rewound) tape."""
        if self.mounted is None:
            raise RuntimeError(f"drive {self.id} is empty")
        tape, self.mounted = self.mounted, None
        tape.head_mb = 0.0
        return tape

    @property
    def is_empty(self) -> bool:
        return self.mounted is None

    # -- timing helpers -----------------------------------------------------
    def seek_time_to(self, extent: ObjectExtent) -> float:
        """Locate time from the current head position to an extent's start."""
        tape = self._require_tape()
        return self.tape_spec.locate_time(tape.head_mb, extent.start_mb)

    def read_extent(self, extent: ObjectExtent) -> tuple[float, float]:
        """Seek to and stream one extent; advances the head.

        Returns ``(seek_seconds, transfer_seconds)``.
        """
        tape = self._require_tape()
        seek = self.tape_spec.locate_time(tape.head_mb, extent.start_mb)
        transfer = self.spec.transfer_time(extent.size_mb)
        tape.head_mb = extent.end_mb
        return seek, transfer

    def rewind_time(self) -> float:
        """Rewind from the current head position to the beginning of tape."""
        tape = self._require_tape()
        return self.tape_spec.locate_time(tape.head_mb, 0.0)

    @property
    def load_time(self) -> float:
        return self.spec.load_s

    @property
    def unload_time(self) -> float:
        return self.spec.unload_s

    def transfer_time(self, size_mb: float) -> float:
        return self.spec.transfer_time(size_mb)

    def _require_tape(self) -> Tape:
        if self.mounted is None:
            raise RuntimeError(f"drive {self.id} has no tape mounted")
        return self.mounted

    def __repr__(self) -> str:
        held = str(self.mounted.id) if self.mounted else "empty"
        flag = " pinned" if self.pinned else ""
        return f"<TapeDrive {self.id} [{held}]{flag}>"
