"""The whole parallel tape storage system (Figure 1 of the paper)."""

from __future__ import annotations

from typing import Dict, Iterator, List

from .drive import TapeDrive
from .library import TapeLibrary
from .specs import SystemSpec
from .tape import Tape, TapeId

__all__ = ["TapeSystem"]


class TapeSystem:
    """``n`` identical libraries; drives transfer in parallel, robots are
    independent across libraries but exclusive within one."""

    def __init__(self, spec: SystemSpec) -> None:
        self.spec = spec
        self.libraries: List[TapeLibrary] = [
            TapeLibrary(i, spec.library) for i in range(spec.num_libraries)
        ]

    # -- queries ----------------------------------------------------------
    def library(self, index: int) -> TapeLibrary:
        return self.libraries[index]

    def tape(self, tape_id: TapeId) -> Tape:
        return self.libraries[tape_id.library].tape(tape_id)

    def all_tapes(self) -> Iterator[Tape]:
        for library in self.libraries:
            yield from library

    def all_drives(self) -> Iterator[TapeDrive]:
        for library in self.libraries:
            yield from library.drives

    def mounted_tape_ids(self) -> Dict[TapeId, TapeDrive]:
        out: Dict[TapeId, TapeDrive] = {}
        for library in self.libraries:
            out.update(library.mounted_tapes())
        return out

    def used_mb(self) -> float:
        return sum(t.used_mb for t in self.all_tapes())

    def reset_runtime_state(self) -> None:
        """Unmount everything and rewind all heads (layouts are kept)."""
        for library in self.libraries:
            library.unmount_all()
        for tape in self.all_tapes():
            tape.head_mb = 0.0

    def clear_layouts(self) -> None:
        """Erase all object layouts (used when re-placing a workload)."""
        for tape in self.all_tapes():
            tape.write_layout([])
        self.reset_runtime_state()

    def __repr__(self) -> str:
        return f"<TapeSystem {len(self.libraries)} libraries, {self.spec.total_drives} drives>"
