"""Hardware models of the parallel tape storage system.

Specs carry the timing constants (Table 1 of the paper); :class:`Tape`,
:class:`TapeDrive`, :class:`Robot`, :class:`TapeLibrary` and
:class:`TapeSystem` carry layout/mount state and deterministic timing math.
Sequencing of operations in simulated time lives in :mod:`repro.sim`.
"""

from .drive import DriveId, TapeDrive
from .library import TapeLibrary
from .robot import Robot
from .specs import DriveSpec, LibrarySpec, SystemSpec, TapeSpec
from .system import TapeSystem
from .tape import ObjectExtent, Tape, TapeId

__all__ = [
    "TapeSpec",
    "DriveSpec",
    "LibrarySpec",
    "SystemSpec",
    "TapeId",
    "ObjectExtent",
    "Tape",
    "DriveId",
    "TapeDrive",
    "Robot",
    "TapeLibrary",
    "TapeSystem",
]
