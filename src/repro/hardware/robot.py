"""Robot arm model.

Each library has exactly one robot (paper assumption 5), so all cartridge
movements within a library serialize behind it while robots of different
libraries work independently.  The DES engine wraps :attr:`Robot.resource`
(a capacity-1 :class:`~repro.des.resources.Resource`); the timing split
follows the paper ("the simulator models robotic arm mount/unmount
operations as constant time values"):

* drive-side, no robot needed: rewind;
* robot-held: unload, carry the old cartridge to its cell, fetch the new
  cartridge, load-and-thread.

So each displacement switch occupies the robot for
``unload + 2 × cell_to_drive + load`` (19 + 15.2 + 19 = 53.2 s with Table-1
values) — the single arm is the serialization point for concurrent switches
within one library, which is exactly the contention the paper's Figure 5
trades against always-mounted capacity.
"""

from __future__ import annotations

from typing import Optional

from ..des import Environment, Resource
from .specs import LibrarySpec

__all__ = ["Robot"]


class Robot:
    """The cartridge-moving arm(s) of one library (one by default)."""

    def __init__(self, library: int, spec: LibrarySpec, env: Optional[Environment] = None) -> None:
        self.library = library
        self.spec = spec
        self._env: Optional[Environment] = None
        self._resource: Optional[Resource] = None
        if env is not None:
            self.bind(env)

    def bind(self, env: Environment) -> None:
        """Attach to a simulation environment (fresh queue/state)."""
        self._env = env
        self._resource = Resource(env, capacity=self.spec.num_robots)

    @property
    def env(self) -> Optional[Environment]:
        """The environment this robot is bound to (None before first bind)."""
        return self._env

    @property
    def resource(self) -> Resource:
        if self._resource is None:
            raise RuntimeError(f"robot of library {self.library} is not bound to an environment")
        return self._resource

    @property
    def move_time(self) -> float:
        """One cell<->drive arm movement."""
        return self.spec.cell_to_drive_s

    @property
    def exchange_time(self) -> float:
        """Robot-held portion of a tape switch: return old + fetch new."""
        return 2.0 * self.spec.cell_to_drive_s

    def __repr__(self) -> str:
        return f"<Robot L{self.library}>"
