"""Tape cartridges and their on-media object layouts."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Tuple

from .specs import TapeSpec

__all__ = ["TapeId", "ObjectExtent", "Tape"]


@dataclass(frozen=True, order=True)
class TapeId:
    """Globally unique tape address: (library index, slot index).

    Tape ids are compared and hashed constantly on the scheduler hot path
    (committed-tape maps, mounted-drive scans, displacement checks), and
    nearly all of those comparisons are against the *canonical* id objects
    that flow out of ``Library.tapes`` / ``Tape.id``.  The manual ``__eq__``
    below short-circuits on identity first, and the hash of the (immutable)
    field pair is computed once and cached.
    """

    library: int
    slot: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.library, self.slot)))
        object.__setattr__(self, "_str", f"L{self.library}.T{self.slot}")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, TapeId):
            return self.library == other.library and self.slot == other.slot
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return self._str  # type: ignore[attr-defined]


@dataclass(frozen=True)
class ObjectExtent:
    """A contiguous region of tape holding one object (or one stripe of it).

    The paper assumes whole-object sequential access (assumption 3 in
    Sec. 3) and no striping, so by default every object occupies exactly
    one extent (``part 0 of 1``) on exactly one tape.  The striping
    baseline from the related work (Golubchik et al. [15], Drapeau & Katz
    [13]) splits an object into ``parts`` fragments; a request then
    completes only when *every* fragment has been read — the
    synchronization latency the paper cites against striping emerges from
    exactly this.

    The cloud-archive redundancy layer (:mod:`repro.redundancy`) adds the
    orthogonal *any-of* dimension: each fragment may exist as ``replicas``
    redundancy-group members on distinct tapes, of which any ``needed``
    suffice to reconstruct it — ``needed == 1`` is plain replication,
    ``needed == k < replicas == n`` is a k-of-n erasure code.  Striping's
    ``parts`` remain all-required; redundancy members are interchangeable.
    """

    object_id: int
    start_mb: float
    size_mb: float
    #: Which stripe fragment this is (0-based).
    part: int = 0
    #: Total number of fragments the object was split into.
    parts: int = 1
    #: Which redundancy-group member this is (0-based; 0 = primary).
    replica: int = 0
    #: Total members in this fragment's redundancy group (r copies, or the
    #: n of a k-of-n code).
    replicas: int = 1
    #: How many members must be read to reconstruct the fragment (1 for
    #: replication, k for erasure coding).
    needed: int = 1

    def __post_init__(self) -> None:
        if self.start_mb < 0:
            raise ValueError(f"extent start must be >= 0, got {self.start_mb}")
        if self.size_mb <= 0:
            raise ValueError(f"extent size must be positive, got {self.size_mb}")
        if self.parts < 1:
            raise ValueError(f"parts must be >= 1, got {self.parts}")
        if not 0 <= self.part < self.parts:
            raise ValueError(f"part {self.part} out of range for {self.parts} parts")
        if self.replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {self.replicas}")
        if not 0 <= self.replica < self.replicas:
            raise ValueError(
                f"replica {self.replica} out of range for {self.replicas} replicas"
            )
        if not 1 <= self.needed <= self.replicas:
            raise ValueError(
                f"needed must be in [1, {self.replicas}], got {self.needed}"
            )
        # The extent end is read on every seek/transfer (head advance, sweep
        # planning, layout validation); computing it once here keeps the
        # property a plain attribute read.
        object.__setattr__(self, "_end_mb", self.start_mb + self.size_mb)

    @property
    def is_fragment(self) -> bool:
        return self.parts > 1

    @property
    def is_redundant(self) -> bool:
        return self.replicas > 1

    @property
    def end_mb(self) -> float:
        return self._end_mb  # type: ignore[attr-defined]

    def overlaps(self, other: "ObjectExtent") -> bool:
        return self.start_mb < other.end_mb and other.start_mb < self.end_mb


class Tape:
    """A cartridge: an ordered, non-overlapping object layout plus head state.

    The head position is runtime state maintained by the simulator; it
    persists across requests while the tape stays mounted and resets to 0
    (beginning of tape) whenever the tape is rewound for unmounting or
    freshly loaded.
    """

    def __init__(self, tape_id: TapeId, spec: TapeSpec) -> None:
        self.id = tape_id
        self.spec = spec
        self._extents: List[ObjectExtent] = []
        self._by_object: Dict[int, ObjectExtent] = {}
        #: Current head position in MB (meaningful while mounted).
        self.head_mb: float = 0.0
        #: Whole-cartridge media loss: every extent is unreadable.  Set by
        #: the fault layer (``TapeFailure`` / ``TapeWearProcess``); the
        #: layout is kept as-is so the repair manager can enumerate what
        #: was on the dead cartridge.
        self.lost: bool = False

    # -- layout -----------------------------------------------------------
    def write_layout(self, extents: Iterable[ObjectExtent]) -> None:
        """Replace the layout with ``extents`` (validated, sorted by start)."""
        extents = sorted(extents, key=lambda e: e.start_mb)
        by_object: Dict[int, ObjectExtent] = {}
        prev_end = 0.0
        for extent in extents:
            if extent.object_id in by_object:
                raise ValueError(f"object {extent.object_id} placed twice on {self.id}")
            if extent.start_mb < prev_end - 1e-9:
                raise ValueError(
                    f"overlapping extents on {self.id} at {extent.start_mb} MB"
                )
            if extent.end_mb > self.spec.capacity_mb + 1e-6:
                raise ValueError(
                    f"extent for object {extent.object_id} ends at {extent.end_mb} MB, "
                    f"beyond tape capacity {self.spec.capacity_mb} MB"
                )
            by_object[extent.object_id] = extent
            prev_end = extent.end_mb
        self._extents = extents
        self._by_object = by_object

    def append_object(self, object_id: int, size_mb: float) -> ObjectExtent:
        """Append an object after the current end of data."""
        start = self.used_mb
        extent = ObjectExtent(object_id, start, size_mb)
        if extent.end_mb > self.spec.capacity_mb + 1e-6:
            raise ValueError(
                f"object {object_id} ({size_mb} MB) does not fit on {self.id} "
                f"({self.free_mb} MB free)"
            )
        self._extents.append(extent)
        self._by_object[object_id] = extent
        return extent

    def append_extent(self, extent: ObjectExtent) -> ObjectExtent:
        """Append a fully-specified extent (a rebuilt redundancy member).

        Unlike :meth:`append_object` the extent keeps its part/replica
        coordinates; it must start at the current end of data.
        """
        if self.lost:
            raise ValueError(f"cannot write to lost tape {self.id}")
        if extent.object_id in self._by_object:
            raise ValueError(f"object {extent.object_id} placed twice on {self.id}")
        if abs(extent.start_mb - self.used_mb) > 1e-6:
            raise ValueError(
                f"extent must append at {self.used_mb} MB on {self.id}, "
                f"got {extent.start_mb} MB"
            )
        if extent.end_mb > self.spec.capacity_mb + 1e-6:
            raise ValueError(
                f"object {extent.object_id} ({extent.size_mb} MB) does not fit "
                f"on {self.id} ({self.free_mb} MB free)"
            )
        self._extents.append(extent)
        self._by_object[extent.object_id] = extent
        return extent

    def remove_object(self, object_id: int) -> ObjectExtent:
        """Remove an object's extent (rollback of an aborted repair write).

        Only the *last* extent can be removed, keeping the layout a dense
        append-only log — which is all the rollback path needs.
        """
        extent = self.extent_of(object_id)
        if not self._extents or self._extents[-1] is not extent:
            raise ValueError(
                f"object {object_id} is not the last extent on {self.id}"
            )
        self._extents.pop()
        del self._by_object[object_id]
        return extent

    # -- queries ----------------------------------------------------------
    @property
    def extents(self) -> Tuple[ObjectExtent, ...]:
        return tuple(self._extents)

    @property
    def object_ids(self) -> Tuple[int, ...]:
        return tuple(e.object_id for e in self._extents)

    def extent_of(self, object_id: int) -> ObjectExtent:
        try:
            return self._by_object[object_id]
        except KeyError:
            raise KeyError(f"object {object_id} is not on tape {self.id}") from None

    def holds(self, object_id: int) -> bool:
        return object_id in self._by_object

    @property
    def used_mb(self) -> float:
        return self._extents[-1].end_mb if self._extents else 0.0

    @property
    def free_mb(self) -> float:
        return self.spec.capacity_mb - self.used_mb

    def __len__(self) -> int:
        return len(self._extents)

    def __iter__(self) -> Iterator[ObjectExtent]:
        return iter(self._extents)

    def __repr__(self) -> str:
        return f"<Tape {self.id} {len(self)} objects, {self.used_mb:.0f}/{self.spec.capacity_mb:.0f} MB>"
