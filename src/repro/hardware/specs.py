"""Hardware specification dataclasses, seeded with the paper's Table 1.

The defaults follow the IBM LTO Gen-3 tape drive and StorageTek L80 tape
library figures the paper uses (Table 1):

=====================================  ========
Average cell to drive time             7.6 s
Tape load and thread to ready          19 s
Data transfer rate, native             80 MB/s
Maximum / average rewind time          98 / 49 s
Unload time                            19 s
Average file access time (first file)  72 s
Number of tapes per library            80
Tape capacity                          400 GB
Tape drives per library                8
Number of tape libraries               3
=====================================  ========

The positioning model is the *linear* model of Johnson & Miller (cited as
[18] in the paper): locate/rewind time is proportional to the distance
between head positions, so the locate rate is derived from the full-tape
rewind figure (``capacity / max_rewind``).  "Average rewind 49 s" and
"average first-file access 72 s ≈ load 19 s + mid-tape locate 49 s" are
derived quantities, asserted by tests and the Table-1 benchmark rather than
being independent inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from ..units import GB

__all__ = ["TapeSpec", "DriveSpec", "LibrarySpec", "SystemSpec"]


def _require_positive(**values: float) -> None:
    for name, value in values.items():
        if not value > 0:
            raise ValueError(f"{name} must be positive, got {value}")


@dataclass(frozen=True)
class TapeSpec:
    """Characteristics of one tape cartridge / media generation."""

    #: Native cartridge capacity in MB (400 GB for LTO-3).
    capacity_mb: float = 400 * GB
    #: Time for a full end-to-beginning rewind in seconds.
    max_rewind_s: float = 98.0
    #: Fixed per-positioning startup latency in seconds (affine locate
    #: model).  The paper uses the pure linear model (0.0); Johnson &
    #: Miller's measurements show drives also pay a constant start cost —
    #: ``benchmarks/bench_seek_model.py`` (A9) checks the conclusions are
    #: insensitive to it.  Applied only to non-zero head movements.
    locate_startup_s: float = 0.0

    def __post_init__(self) -> None:
        _require_positive(capacity_mb=self.capacity_mb, max_rewind_s=self.max_rewind_s)
        if self.locate_startup_s < 0:
            raise ValueError(
                f"locate_startup_s must be >= 0, got {self.locate_startup_s}"
            )
        # locate_time runs once per head movement (the single hottest timing
        # helper); cache the derived rate so it is one attribute read there.
        object.__setattr__(self, "_locate_rate", self.capacity_mb / self.max_rewind_s)

    @property
    def locate_rate_mb_s(self) -> float:
        """Head repositioning speed (MB of tape passed per second).

        Linear positioning model: traversing the whole tape takes
        ``max_rewind_s``, so the rate is capacity / max rewind.
        """
        return self._locate_rate  # type: ignore[attr-defined]

    @property
    def avg_rewind_s(self) -> float:
        """Expected rewind from a uniformly random position (= max/2)."""
        return self.max_rewind_s / 2.0

    def locate_time(self, from_mb: float, to_mb: float) -> float:
        """Seconds to move the head between two positions (either direction).

        Zero-distance moves are free; any real movement pays the optional
        affine startup latency plus the linear travel time.
        """
        distance = abs(to_mb - from_mb)
        if distance == 0:
            return 0.0
        return self.locate_startup_s + distance / self._locate_rate  # type: ignore[attr-defined]


@dataclass(frozen=True)
class DriveSpec:
    """Characteristics of one tape drive."""

    #: Native streaming transfer rate in MB/s (80 for LTO-3).
    transfer_rate_mb_s: float = 80.0
    #: Tape load-and-thread-to-ready time in seconds.
    load_s: float = 19.0
    #: Tape unload (rewound cartridge eject) time in seconds.
    unload_s: float = 19.0

    def __post_init__(self) -> None:
        _require_positive(
            transfer_rate_mb_s=self.transfer_rate_mb_s,
            load_s=self.load_s,
            unload_s=self.unload_s,
        )

    def transfer_time(self, size_mb: float) -> float:
        """Seconds to stream ``size_mb`` once the head is positioned."""
        if size_mb < 0:
            raise ValueError(f"size_mb must be non-negative, got {size_mb}")
        return size_mb / self.transfer_rate_mb_s


@dataclass(frozen=True)
class LibrarySpec:
    """Characteristics of one robotic tape library."""

    #: Drives per library (8 for the paper's setting).
    num_drives: int = 8
    #: Storage cells / tapes per library (80 for STK L80).
    num_tapes: int = 80
    #: Average robot arm move between a cell and a drive, in seconds.
    cell_to_drive_s: float = 7.6
    #: Robot arms per library.  The paper's assumption 5 fixes this at one
    #: ("one robot arm for loading and unloading tapes"); higher values
    #: support the what-if study of benchmarks/bench_robots.py (A6).
    num_robots: int = 1
    drive: DriveSpec = field(default_factory=DriveSpec)
    tape: TapeSpec = field(default_factory=TapeSpec)

    def __post_init__(self) -> None:
        if self.num_drives <= 0:
            raise ValueError(f"num_drives must be positive, got {self.num_drives}")
        if self.num_robots <= 0:
            raise ValueError(f"num_robots must be positive, got {self.num_robots}")
        if self.num_tapes < self.num_drives:
            raise ValueError(
                f"num_tapes ({self.num_tapes}) must be >= num_drives ({self.num_drives}); "
                "the paper assumes d << t"
            )
        _require_positive(cell_to_drive_s=self.cell_to_drive_s)

    @property
    def capacity_mb(self) -> float:
        """Total media capacity of the library."""
        return self.num_tapes * self.tape.capacity_mb

    @property
    def first_file_access_s(self) -> float:
        """Derived average first-file access: load + locate to tape midpoint.

        Table 1 quotes 72 s; the linear model yields 19 + 49 = 68 s, within
        6 % — validated by the Table-1 benchmark.
        """
        return self.drive.load_s + self.tape.locate_time(0.0, self.tape.capacity_mb / 2.0)


@dataclass(frozen=True)
class SystemSpec:
    """The whole parallel tape storage system (n identical libraries)."""

    num_libraries: int = 3
    library: LibrarySpec = field(default_factory=LibrarySpec)
    #: Aggregate bandwidth of the disk staging area absorbing tape reads
    #: (Figure 1's disk cache).  ``None`` = unlimited, the paper's
    #: assumption 6 ("the bottleneck of data transfer path lies at tape
    #: drive").  When set, at most ``disk_bandwidth_mb_s / transfer_rate``
    #: drives can stream simultaneously; the rest wait for a disk slot.
    disk_bandwidth_mb_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.num_libraries <= 0:
            raise ValueError(f"num_libraries must be positive, got {self.num_libraries}")
        if self.disk_bandwidth_mb_s is not None and self.disk_bandwidth_mb_s <= 0:
            raise ValueError(
                f"disk_bandwidth_mb_s must be positive or None, got {self.disk_bandwidth_mb_s}"
            )

    @property
    def disk_streams(self) -> Optional[int]:
        """Concurrent native-rate streams the disk stage admits (None = ∞)."""
        if self.disk_bandwidth_mb_s is None:
            return None
        return max(1, int(self.disk_bandwidth_mb_s // self.library.drive.transfer_rate_mb_s))

    # -- totals ----------------------------------------------------------
    @property
    def total_drives(self) -> int:
        return self.num_libraries * self.library.num_drives

    @property
    def total_tapes(self) -> int:
        return self.num_libraries * self.library.num_tapes

    @property
    def total_capacity_mb(self) -> float:
        return self.num_libraries * self.library.capacity_mb

    @property
    def aggregate_transfer_rate_mb_s(self) -> float:
        """Upper bound on retrieval bandwidth: all drives streaming."""
        return self.total_drives * self.library.drive.transfer_rate_mb_s

    # -- factories --------------------------------------------------------
    @classmethod
    def table1(cls) -> "SystemSpec":
        """The paper's exact Table-1 configuration."""
        return cls()

    def with_libraries(self, n: int) -> "SystemSpec":
        """Copy with a different library count (Figure 8 sweep)."""
        return replace(self, num_libraries=n)

    def scaled_technology(
        self, rate_factor: float = 1.0, capacity_factor: float = 1.0
    ) -> "SystemSpec":
        """Copy with improved drive rate / tape capacity (tech-trend study).

        Capacity scaling keeps the full-tape rewind time constant (newer
        generations pack more data per meter), so the locate *rate* in MB/s
        scales with capacity.
        """
        _require_positive(rate_factor=rate_factor, capacity_factor=capacity_factor)
        lib = self.library
        drive = replace(lib.drive, transfer_rate_mb_s=lib.drive.transfer_rate_mb_s * rate_factor)
        tape = replace(lib.tape, capacity_mb=lib.tape.capacity_mb * capacity_factor)
        return replace(self, library=replace(lib, drive=drive, tape=tape))

    def iter_library_ids(self) -> Iterator[int]:
        return iter(range(self.num_libraries))
