"""Unit conventions used throughout the library.

All sizes are megabytes (decimal, 1 GB = 1000 MB — matching how tape vendors
quote the 80 MB/s native rate and 400 GB capacity), and all times are seconds.
These helpers exist so call sites read unambiguously.
"""

from __future__ import annotations

MB: float = 1.0
GB: float = 1000.0 * MB
TB: float = 1000.0 * GB

SECOND: float = 1.0
MINUTE: float = 60.0 * SECOND
HOUR: float = 60.0 * MINUTE


def mb(value: float) -> float:
    """Megabytes (identity; the base size unit)."""
    return value * MB


def gb(value: float) -> float:
    """Gigabytes expressed in MB."""
    return value * GB


def tb(value: float) -> float:
    """Terabytes expressed in MB."""
    return value * TB


def as_gb(size_mb: float) -> float:
    """Convert MB to GB for display."""
    return size_mb / GB


def mb_per_s(value: float) -> float:
    """Bandwidth in MB/s (identity; the base rate unit)."""
    return value
