"""Analytic performance models (no event loop).

:class:`CostModel` predicts a request's response decomposition from the
placement's static structure — the paper's objective function
``Σ P(R)·t(R)`` in closed form — and :mod:`repro.model.search` uses it as
the objective of a local-search placement optimizer.
"""

from .cost import CostModel, RequestEstimate
from .search import SearchResult, optimize_placement

__all__ = ["CostModel", "RequestEstimate", "SearchResult", "optimize_placement"]
