"""Analytic response-time model: predict performance without the event loop.

Given a placement and a request, the dominant structure of the simulated
response is deterministic: which tapes are mounted, which must be fetched,
how the single robot arm serializes those fetches, and how long each drive
streams.  This module computes a closed-form estimate of the response by
replaying that structure arithmetically:

* per library, offline tapes are served in LPT order by the ``m`` switch
  drives; each mount holds the robot for ``unload + 2·move + load`` (or
  ``move + load`` into an empty drive), so the j-th mount cannot start
  before ``j-1`` robot services finish — a deterministic single-server
  queue;
* a drive's completion is (switch pipeline position) + seek + transfer for
  every job it takes, with jobs assigned greedily to the earliest-free
  drive (the engine's list scheduling);
* mounted tapes serve immediately: seek (estimated from the extent span)
  plus transfer.

The estimate is *not* the simulator — it ignores head-position history,
partial robot overlap with rewinds, and mounted-switching-tape service
before displacement — but it tracks the simulated response closely (tests
assert agreement within ~20 % on average) at ~100× less work, which makes
it usable inside optimization loops (see :mod:`repro.model.search`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..catalog import Request
from ..hardware import ObjectExtent, SystemSpec, TapeId
from ..placement.base import PlacementResult

__all__ = ["CostModel", "RequestEstimate"]


@dataclass(frozen=True)
class RequestEstimate:
    """Predicted response decomposition for one request."""

    request_id: int
    response_s: float
    switch_s: float
    seek_s: float
    transfer_s: float
    num_offline_tapes: int
    num_mounted_tapes: int

    @property
    def bandwidth_mb_s(self) -> float:
        raise NotImplementedError("size is workload-dependent; use CostModel.bandwidth")


class CostModel:
    """Closed-form response estimates for a fixed placement.

    Parameters
    ----------
    placement:
        The placement whose layouts/mounts are modelled.  Mount state is
        taken from ``initial_mounts`` (the model has no request history).
    spec:
        System configuration (timing constants, drive/robot counts).
    """

    def __init__(self, placement: PlacementResult, spec: SystemSpec) -> None:
        self.placement = placement
        self.spec = spec
        lib = spec.library
        self._transfer_rate = lib.drive.transfer_rate_mb_s
        self._locate_rate = lib.tape.locate_rate_mb_s
        self._avg_rewind = lib.tape.avg_rewind_s
        # Robot service per displacement switch / empty-drive mount.
        self._robot_swap = lib.drive.unload_s + 2 * lib.cell_to_drive_s + lib.drive.load_s
        self._robot_mount = lib.cell_to_drive_s + lib.drive.load_s
        self._num_robots = lib.num_robots

        # Static lookup tables -----------------------------------------
        self._tape_of: Dict[int, List[TapeId]] = {}
        self._extent_of: Dict[int, List[ObjectExtent]] = {}
        for tid, extents in placement.layouts.items():
            for e in extents:
                self._tape_of.setdefault(e.object_id, []).append(tid)
                self._extent_of.setdefault(e.object_id, []).append(e)
        self._mounted = set(placement.initial_mounts.values())
        self._pinned = set(placement.pinned)
        # Switch drives per library: drives not holding pinned tapes.
        drives_per_lib = spec.library.num_drives
        pinned_per_lib: Dict[int, int] = {}
        for did, tid in placement.initial_mounts.items():
            if tid in self._pinned:
                pinned_per_lib[did.library] = pinned_per_lib.get(did.library, 0) + 1
        self._switch_drives = {
            lib_idx: max(1, drives_per_lib - pinned_per_lib.get(lib_idx, 0))
            for lib_idx in range(spec.num_libraries)
        }

    # ------------------------------------------------------------------
    def estimate(self, request: Request) -> RequestEstimate:
        """Predict the response decomposition for ``request``."""
        jobs: Dict[TapeId, List[ObjectExtent]] = {}
        for o in request.object_ids:
            for tid, extent in zip(self._tape_of[o], self._extent_of[o]):
                jobs.setdefault(tid, []).append(extent)

        per_library: Dict[int, List] = {}
        for tid, extents in jobs.items():
            per_library.setdefault(tid.library, []).append((tid, extents))

        overall = 0.0
        worst_decomp = (0.0, 0.0, 0.0)
        offline_total = mounted_total = 0
        for lib_idx, tape_jobs in per_library.items():
            completion, decomp, n_off, n_on = self._library_completion(lib_idx, tape_jobs)
            offline_total += n_off
            mounted_total += n_on
            if completion > overall:
                overall = completion
                worst_decomp = decomp
        switch, seek, transfer = worst_decomp
        return RequestEstimate(
            request_id=request.id,
            response_s=overall,
            switch_s=switch,
            seek_s=seek,
            transfer_s=transfer,
            num_offline_tapes=offline_total,
            num_mounted_tapes=mounted_total,
        )

    def _job_times(self, extents: Sequence[ObjectExtent]) -> tuple:
        """(seek, transfer) for one tape's job: one sweep over the extents."""
        starts = [e.start_mb for e in extents]
        ends = [e.end_mb for e in extents]
        span_lo, span_hi = min(starts), max(ends)
        data = sum(e.size_mb for e in extents)
        # Sweep: position to the nearest edge of the span (approximated by
        # the span midpoint distance from BOT ~ E over head positions), then
        # pass the whole span once; reading covers `data` of it.
        seek = span_lo / self._locate_rate + max(0.0, (span_hi - span_lo) - data) / self._locate_rate
        transfer = data / self._transfer_rate
        return seek, transfer

    def _library_completion(self, lib_idx: int, tape_jobs: List) -> tuple:
        """Deterministic completion time of one library's work."""
        mounted_jobs = [(tid, ex) for tid, ex in tape_jobs if tid in self._mounted]
        offline_jobs = [(tid, ex) for tid, ex in tape_jobs if tid not in self._mounted]

        best = 0.0
        decomp = (0.0, 0.0, 0.0)

        # Mounted tapes serve immediately on their own drives.
        for tid, extents in mounted_jobs:
            seek, transfer = self._job_times(extents)
            completion = seek + transfer
            if completion > best:
                best = completion
                decomp = (0.0, seek, transfer)

        if offline_jobs:
            # LPT order (the engine's queue order).
            sized = sorted(
                offline_jobs,
                key=lambda te: -(sum(e.size_mb for e in te[1])),
            )
            width = self._switch_drives[lib_idx]
            drive_free = [0.0] * width
            robot_free = [0.0] * self._num_robots
            for tid, extents in sized:
                seek, transfer = self._job_times(extents)
                d = int(np.argmin(drive_free))
                r = int(np.argmin(robot_free))
                # The drive must rewind its current tape (avg) before the
                # robot touches it; robot then does the swap.
                ready = max(drive_free[d] + self._avg_rewind, robot_free[r])
                robot_busy_until = ready + self._robot_swap
                robot_free[r] = robot_busy_until
                completion = robot_busy_until + seek + transfer
                drive_free[d] = completion
                if completion > best:
                    best = completion
                    switch = completion - seek - transfer
                    decomp = (switch, seek, transfer)
        return best, decomp, len(offline_jobs), len(mounted_jobs)

    # ------------------------------------------------------------------
    def bandwidth(self, request: Request, size_mb: float) -> float:
        """Predicted effective bandwidth for one request."""
        return size_mb / self.estimate(request).response_s

    def average_response(
        self, requests: Sequence[Request], probabilities: Optional[Sequence[float]] = None
    ) -> float:
        """Popularity-weighted mean predicted response — the paper's
        objective ``Σ P(R_i) · t(R_i)`` (Sec. 3), computable in closed form.
        """
        responses = np.array([self.estimate(r).response_s for r in requests])
        if probabilities is None:
            return float(responses.mean())
        p = np.asarray(probabilities, dtype=np.float64)
        p = p / p.sum()
        return float(np.dot(responses, p))
