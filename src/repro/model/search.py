"""Local-search placement optimization over the analytic cost model.

The paper argues the optimal placement is NP-hard and settles for a
heuristic (Sec. 3/5).  This module asks the natural follow-up: *how close
is the heuristic?*  Starting from any scheme's placement, a hill-climbing
search proposes object moves, scores each candidate with
:class:`~repro.model.cost.CostModel` (the paper's objective
``Σ P(R)·t(R)``), and keeps improvements.  Moves are popularity-biased —
hot requests' stray objects are pulled toward the tape group that already
serves most of the request — which is exactly the residual structure the
constructive heuristic leaves behind.

``benchmarks/bench_search.py`` (A7) reports how much objective the search
recovers for each scheme and verifies the model-driven improvements carry
over to the event-driven simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..hardware import ObjectExtent, SystemSpec, TapeId
from ..placement.base import PlacementResult
from ..workload import Workload
from .cost import CostModel

__all__ = ["SearchResult", "optimize_placement"]


@dataclass
class SearchResult:
    """Outcome of one optimization run."""

    placement: PlacementResult
    initial_objective_s: float
    final_objective_s: float
    moves_proposed: int = 0
    moves_accepted: int = 0
    #: Objective after each accepted move (for convergence plots).
    trajectory: List[float] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Relative objective reduction (0.07 = 7 % faster)."""
        if self.initial_objective_s == 0:
            return 0.0
        return 1.0 - self.final_objective_s / self.initial_objective_s


class _State:
    """Mutable tape contents during the search."""

    def __init__(self, placement: PlacementResult, spec: SystemSpec, workload: Workload):
        self.capacity = spec.library.tape.capacity_mb
        self.catalog = workload.catalog
        self.order: Dict[TapeId, List[int]] = {
            tid: [e.object_id for e in sorted(extents, key=lambda e: e.start_mb)]
            for tid, extents in placement.layouts.items()
        }
        self.used: Dict[TapeId, float] = {
            tid: sum(self.catalog.size_of(o) for o in objs)
            for tid, objs in self.order.items()
        }
        self.home: Dict[int, TapeId] = {
            o: tid for tid, objs in self.order.items() for o in objs
        }

    def layouts(self) -> Dict[TapeId, List[ObjectExtent]]:
        out: Dict[TapeId, List[ObjectExtent]] = {}
        for tid, objs in self.order.items():
            extents: List[ObjectExtent] = []
            position = 0.0
            for o in objs:
                size = self.catalog.size_of(o)
                extents.append(ObjectExtent(o, position, size))
                position += size
            out[tid] = extents
        return out

    def can_move(self, object_id: int, target: TapeId) -> bool:
        if target == self.home[object_id]:
            return False
        size = self.catalog.size_of(object_id)
        return self.used.get(target, 0.0) + size <= self.capacity + 1e-9

    def move(self, object_id: int, target: TapeId) -> Tuple[TapeId, int]:
        """Move to the end of ``target``; returns (source tape, old index)
        so a rejected move can be undone *exactly* (position included)."""
        source = self.home[object_id]
        size = self.catalog.size_of(object_id)
        index = self.order[source].index(object_id)
        self.order[source].pop(index)
        self.used[source] -= size
        self.order.setdefault(target, []).append(object_id)
        self.used[target] = self.used.get(target, 0.0) + size
        self.home[object_id] = target
        return source, index

    def undo(self, object_id: int, source: TapeId, index: int) -> None:
        """Exact inverse of :meth:`move`."""
        target = self.home[object_id]
        size = self.catalog.size_of(object_id)
        self.order[target].remove(object_id)
        self.used[target] -= size
        self.order[source].insert(index, object_id)
        self.used[source] += size
        self.home[object_id] = source


def optimize_placement(
    placement: PlacementResult,
    workload: Workload,
    spec: SystemSpec,
    iterations: int = 200,
    seed: int = 0,
    sample_requests: Optional[int] = None,
) -> SearchResult:
    """Hill-climb object moves to minimize the model's expected response.

    Parameters
    ----------
    iterations:
        Move proposals (each scored with a full model rebuild — keep this
        modest at 30 000-object scale).
    sample_requests:
        Evaluate the objective over only the N most popular requests
        (None = all).  The objective stays popularity-weighted either way.
    """
    rng = np.random.default_rng(seed)
    requests = list(workload.requests)
    probs = np.asarray(workload.requests.probabilities, dtype=np.float64)
    if sample_requests is not None and sample_requests < len(requests):
        top = np.argsort(-probs)[:sample_requests]
        requests = [requests[i] for i in top]
        probs = probs[top]
    probs = probs / probs.sum()

    state = _State(placement, spec, workload)

    def objective() -> float:
        model = CostModel(
            _with_layouts(placement, state.layouts()), spec
        )
        return model.average_response(requests, probs)

    best = objective()
    result = SearchResult(
        placement=placement, initial_objective_s=best, final_objective_s=best
    )

    mounted = list(placement.initial_mounts.values())
    for _ in range(iterations):
        result.moves_proposed += 1
        # Popularity-biased proposal: pick a request, find the tape serving
        # most of it, and try pulling one stray member there (or to a
        # mounted tape — switch avoidance).
        request = requests[int(rng.choice(len(requests), p=probs))]
        homes = [state.home[o] for o in request.object_ids]
        values, counts = np.unique([str(h) for h in homes], return_counts=True)
        majority_name = values[int(np.argmax(counts))]
        majority = next(h for h in homes if str(h) == majority_name)
        strays = [o for o, h in zip(request.object_ids, homes) if h != majority]
        if not strays:
            continue
        object_id = int(strays[int(rng.integers(len(strays)))])
        target = majority if rng.random() < 0.7 or not mounted else mounted[
            int(rng.integers(len(mounted)))
        ]
        if not state.can_move(object_id, target):
            continue
        source, index = state.move(object_id, target)
        candidate = objective()
        if candidate < best - 1e-9:
            best = candidate
            result.moves_accepted += 1
            result.trajectory.append(best)
        else:
            state.undo(object_id, source, index)

    result.final_objective_s = best
    result.placement = _with_layouts(placement, state.layouts())
    result.placement.metadata = dict(placement.metadata)
    result.placement.metadata["search"] = {
        "iterations": iterations,
        "accepted": result.moves_accepted,
        "improvement": result.improvement,
    }
    return result


def _with_layouts(
    placement: PlacementResult, layouts: Dict[TapeId, List[ObjectExtent]]
) -> PlacementResult:
    """A copy of ``placement`` with replaced layouts (mounts/pins kept)."""
    return PlacementResult(
        scheme=placement.scheme + "+search",
        layouts=layouts,
        initial_mounts=dict(placement.initial_mounts),
        pinned=placement.pinned,
        tape_priority=dict(placement.tape_priority),
        metadata=dict(placement.metadata),
    )
