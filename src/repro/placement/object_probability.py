"""Object probability placement — baseline from Christodoulakis et al. [11].

The scheme knows only independent per-object access probabilities (no
relationship information).  Following Figure 4 of the paper and the
principles of [11] (popular data on the media that stay mounted; organ-pipe
alignment within a tape):

* objects are ranked by decreasing access probability;
* tapes are consumed in *groups* of ``n×d`` (one tape per drive across all
  libraries), so the hottest group is exactly what sits on the drives;
* within a group, objects are dealt round-robin across the group's tapes,
  interleaving libraries — every tape of the group gets the same probability
  mass and a request's hot objects spread over all ``n×d`` drives (best
  transfer parallelism of the three schemes);
* each tape is organ-pipe aligned (the scheme's defining optimization).

Because rank order ignores relationships, a request's objects typically
scatter over *many* groups, so the scheme pays the most tape switches —
exactly the behaviour Figure 9 reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..hardware import SystemSpec, TapeId
from ..workload import Workload
from .base import PlacementError, PlacementResult, PlacementScheme
from .organ_pipe import organ_pipe_extents

__all__ = ["ObjectProbabilityPlacement"]


@dataclass
class ObjectProbabilityPlacement(PlacementScheme):
    """Baseline: rank-ordered tape groups + organ pipe, no relationships."""

    #: Tape capacity utilization coefficient (fill limit per tape).
    k: float = 0.9

    name = "object_probability"

    def __post_init__(self) -> None:
        if not 0 < self.k <= 1:
            raise ValueError(f"k must be in (0, 1], got {self.k}")

    def place(self, workload: Workload, spec: SystemSpec) -> PlacementResult:
        catalog = workload.catalog
        n, d, t = spec.num_libraries, spec.library.num_drives, spec.library.num_tapes
        fill_limit = self.k * spec.library.tape.capacity_mb

        probs = np.asarray(catalog.probabilities)
        # Rank by decreasing probability, object id breaking ties.
        rank_order = np.lexsort((np.arange(len(catalog)), -probs))

        num_groups = t // d
        if t % d:
            num_groups += 0  # leftover slots (< d per library) are unused
        if num_groups == 0:
            raise PlacementError(f"libraries with {t} tapes cannot form a group of {d}")

        # Group g, slot j within group, library lib -> tape (lib, g*d + j),
        # interleaved across libraries for cross-library parallelism.
        groups: List[List[TapeId]] = [
            [TapeId(lib, g * d + j) for j in range(d) for lib in range(n)]
            for g in range(num_groups)
        ]

        assignment: Dict[TapeId, List[int]] = {tid: [] for grp in groups for tid in grp}
        used: Dict[TapeId, float] = {tid: 0.0 for grp in groups for tid in grp}

        def try_group(group: List[TapeId], start: int, object_id: int, size: float) -> int:
            """Round-robin placement within one group; -1 if nothing fits."""
            for attempt in range(len(group)):
                tid = group[(start + attempt) % len(group)]
                if used[tid] + size <= fill_limit + 1e-9:
                    assignment[tid].append(object_id)
                    used[tid] += size
                    return (start + attempt + 1) % len(group)
            return -1

        group_idx = 0
        cursor = 0  # round-robin pointer within the current group
        for object_id in rank_order:
            object_id = int(object_id)
            size = catalog.size_of(object_id)
            nxt = try_group(groups[group_idx], cursor, object_id, size)
            if nxt >= 0:
                cursor = nxt
                continue
            if group_idx + 1 < len(groups):
                group_idx += 1
                cursor = try_group(groups[group_idx], 0, object_id, size)
                if cursor >= 0:
                    continue
            # Large object vs fragmented tail: scavenge earlier groups
            # (their stranded slack) nearest-rank-first.
            for g in range(group_idx, -1, -1):
                if try_group(groups[g], 0, object_id, size) >= 0:
                    break
            else:
                raise PlacementError(
                    f"object {object_id} ({size:.0f} MB) fits on no tape; "
                    f"capacity exhausted after {sum(len(v) for v in assignment.values())} "
                    f"of {len(catalog)} objects"
                )
            cursor = 0

        layouts = {
            tid: organ_pipe_extents(objects, catalog)
            for tid, objects in assignment.items()
            if objects
        }
        tape_priority = {
            tid: self.total_priority(extents, catalog) for tid, extents in layouts.items()
        }
        initial_mounts = self.default_initial_mounts(layouts, tape_priority, spec)

        return PlacementResult(
            scheme=self.name,
            layouts=layouts,
            initial_mounts=initial_mounts,
            pinned=frozenset(),
            tape_priority=tape_priority,
            metadata={"k": self.k, "num_groups": len(groups)},
        )
