"""Placement scheme API shared by the proposed scheme and both baselines.

A placement scheme consumes a :class:`~repro.workload.Workload` and a
:class:`~repro.hardware.SystemSpec` and produces a :class:`PlacementResult`:
the full on-tape layout of every object, which tapes are mounted at startup
(and on which drives), which drives are pinned ("always-mounted" batch), and
each tape's accumulated access probability (used by the least-popular
replacement policy).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Tuple

import numpy as np

from ..catalog import LocationIndex, ObjectCatalog
from ..hardware import DriveId, ObjectExtent, SystemSpec, TapeId, TapeSystem
from ..workload import Workload

__all__ = ["PlacementError", "PlacementResult", "PlacementScheme"]


class PlacementError(Exception):
    """Raised when a workload cannot be placed (e.g. capacity exhausted)."""


@dataclass
class PlacementResult:
    """The complete output of a placement scheme."""

    scheme: str
    #: On-tape layout: tape id -> extents in position order.
    layouts: Dict[TapeId, List[ObjectExtent]]
    #: Which tape each drive holds at startup.
    initial_mounts: Dict[DriveId, TapeId]
    #: Tapes that are never unmounted (batch 0 of parallel batch placement).
    pinned: FrozenSet[TapeId] = frozenset()
    #: Accumulated access probability per tape (replacement-policy input).
    tape_priority: Dict[TapeId, float] = field(default_factory=dict)
    #: Scheme-specific extras (batch maps, cluster stats, …) for diagnostics.
    metadata: dict = field(default_factory=dict)

    # -- derived ----------------------------------------------------------
    def objects_placed(self) -> int:
        return sum(len(extents) for extents in self.layouts.values())

    def tapes_used(self) -> int:
        return sum(1 for extents in self.layouts.values() if extents)

    def tape_of(self, object_id: int) -> TapeId:
        """The tape of a single-extent object; raises on ambiguity.

        Striped or redundant objects span several tapes — use
        :meth:`tapes_of` for the full tuple.
        """
        tapes = self.tapes_of(object_id)
        if len(tapes) > 1:
            raise ValueError(
                f"object {object_id} has {len(tapes)} extents (striped or "
                "replicated); use tapes_of()"
            )
        return tapes[0]

    def tapes_of(self, object_id: int) -> Tuple[TapeId, ...]:
        """Every tape holding an extent of the object, in (part, replica) order."""
        found: List[Tuple[Tuple[int, int], TapeId]] = []
        for tape_id, extents in self.layouts.items():
            for extent in extents:
                if extent.object_id == object_id:
                    found.append(((extent.part, extent.replica), tape_id))
        if not found:
            raise KeyError(f"object {object_id} not placed")
        found.sort(key=lambda pair: pair[0])
        return tuple(tape_id for _, tape_id in found)

    # -- validation ---------------------------------------------------------
    def validate(self, catalog: ObjectCatalog, spec: SystemSpec) -> None:
        """Check structural invariants; raise :class:`PlacementError` if broken.

        * every catalog object placed exactly once — whole, or as a complete,
          consistent set of stripe fragments whose sizes sum to the catalog
          size (:class:`~repro.redundancy.RedundantPlacementResult` replaces
          this accounting with redundancy-group rules);
        * extents within tape capacity and non-overlapping;
        * initial mounts reference existing tapes/drives, one tape per drive;
        * pinned tapes are all initially mounted.
        """
        fragments = self._check_geometry(spec)
        self._check_objects(fragments, catalog, spec)
        self._check_mounts(spec)

    def _check_geometry(self, spec: SystemSpec) -> Dict[int, List]:
        """Per-tape capacity/overlap checks; returns object -> extent entries."""
        fragments: Dict[int, List] = {}
        capacity = spec.library.tape.capacity_mb
        for tape_id, extents in self.layouts.items():
            if not (0 <= tape_id.library < spec.num_libraries):
                raise PlacementError(f"tape {tape_id} references unknown library")
            if not (0 <= tape_id.slot < spec.library.num_tapes):
                raise PlacementError(f"tape {tape_id} references unknown slot")
            prev_end = 0.0
            for extent in sorted(extents, key=lambda e: e.start_mb):
                if extent.start_mb < prev_end - 1e-9:
                    raise PlacementError(f"overlapping extents on {tape_id}")
                if extent.end_mb > capacity + 1e-6:
                    raise PlacementError(f"tape {tape_id} overflows its capacity")
                fragments.setdefault(extent.object_id, []).append((tape_id, extent))
                prev_end = extent.end_mb
        return fragments

    def _check_objects(
        self, fragments: Dict[int, List], catalog: ObjectCatalog, spec: SystemSpec
    ) -> None:
        """Exactly-once object accounting (the paper's non-redundant model)."""
        for object_id, entries in fragments.items():
            parts = entries[0][1].parts
            if any(e.parts != parts for _, e in entries):
                raise PlacementError(
                    f"object {object_id}: inconsistent fragment counts"
                )
            if len(entries) != parts:
                raise PlacementError(
                    f"object {object_id}: {len(entries)} of {parts} fragments placed"
                )
            if sorted(e.part for _, e in entries) != list(range(parts)):
                raise PlacementError(
                    f"object {object_id}: duplicate or missing fragment parts"
                )
            total = sum(e.size_mb for _, e in entries)
            if abs(total - catalog.size_of(object_id)) > 1e-6:
                raise PlacementError(
                    f"object {object_id} placed with total size {total}, "
                    f"catalog says {catalog.size_of(object_id)}"
                )
        if len(fragments) != len(catalog):
            missing = len(catalog) - len(fragments)
            raise PlacementError(f"{missing} objects were not placed")

    def _check_mounts(self, spec: SystemSpec) -> None:
        """Initial-mount / pinned-tape consistency checks."""
        mounted_tapes = set()
        for drive_id, tape_id in self.initial_mounts.items():
            if not (0 <= drive_id.library < spec.num_libraries):
                raise PlacementError(f"drive {drive_id} references unknown library")
            if not (0 <= drive_id.index < spec.library.num_drives):
                raise PlacementError(f"drive {drive_id} references unknown index")
            if drive_id.library != tape_id.library:
                raise PlacementError(
                    f"drive {drive_id} cannot mount {tape_id} from another library"
                )
            if tape_id in mounted_tapes:
                raise PlacementError(f"tape {tape_id} mounted on two drives")
            mounted_tapes.add(tape_id)
        for tape_id in self.pinned:
            if tape_id not in mounted_tapes:
                raise PlacementError(f"pinned tape {tape_id} is not initially mounted")

    # -- application ----------------------------------------------------------
    def apply_to(self, system: TapeSystem) -> LocationIndex:
        """Write layouts into ``system``, mount startup tapes, pin drives.

        Returns the location index the simulator will query.
        """
        system.clear_layouts()
        for tape_id, extents in self.layouts.items():
            system.tape(tape_id).write_layout(extents)
        for drive_id, tape_id in self.initial_mounts.items():
            drive = system.library(drive_id.library).drive(drive_id.index)
            drive.mount(system.tape(tape_id))
            drive.pinned = tape_id in self.pinned
        return LocationIndex.from_system(system)


class PlacementScheme(abc.ABC):
    """Base class for placement algorithms."""

    #: Registry / display name, e.g. ``"parallel_batch"``.
    name: str = "abstract"

    @abc.abstractmethod
    def place(self, workload: Workload, spec: SystemSpec) -> PlacementResult:
        """Compute a placement of ``workload`` onto ``spec``'s tapes."""

    # -- helpers shared by all schemes ---------------------------------------
    @staticmethod
    def total_priority(extents: List[ObjectExtent], catalog: ObjectCatalog) -> float:
        return float(sum(catalog.probability_of(e.object_id) for e in extents))

    @staticmethod
    def default_initial_mounts(
        layouts: Mapping[TapeId, List[ObjectExtent]],
        tape_priority: Mapping[TapeId, float],
        spec: SystemSpec,
    ) -> Dict[DriveId, TapeId]:
        """Baseline startup policy: per library, mount its ``d`` highest-
        priority non-empty tapes (per [11], popular tapes stay mounted)."""
        mounts: Dict[DriveId, TapeId] = {}
        for lib in range(spec.num_libraries):
            candidates = [
                tid
                for tid, extents in layouts.items()
                if tid.library == lib and extents
            ]
            candidates.sort(key=lambda tid: (-tape_priority.get(tid, 0.0), tid.slot))
            for drive_index, tape_id in enumerate(candidates[: spec.library.num_drives]):
                mounts[DriveId(lib, drive_index)] = tape_id
        return mounts

    def __repr__(self) -> str:
        return f"<{type(self).__name__} name={self.name!r}>"
