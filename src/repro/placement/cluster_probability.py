"""Cluster probability placement — baseline from Li & Prabhakar [20].

Assumes media switches and head positioning dominate access cost, so the
single goal is *minimizing tape switches*: objects with a strong access
relationship are co-located on one tape.  Our rendering:

* clusters come from the same co-access clustering substrate (Sec. 5.1),
  capped at one tape's usable capacity so a cluster never spans media;
* clusters are packed first-fit in decreasing accumulated probability onto
  tapes taken round-robin across libraries (the paper observes this
  scheme's 1→3-library gain comes from reduced robot contention, so tapes
  must alternate libraries);
* within a tape, clusters are organ-pipe arranged by cluster probability
  and each cluster's members stay contiguous (organ-pipe by member
  probability inside the segment) — related objects are read with minimal
  head movement, preserving the scheme's design intent.

The cost: a request whose objects form one cluster is served by one drive —
no transfer parallelism — which is why its data transfer time dominates
(62 % in the paper's extreme case) and why it does not scale with library
count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..hardware import ObjectExtent, SystemSpec, TapeId
from ..workload import Workload
from .base import PlacementError, PlacementResult, PlacementScheme
from .clustering import cluster_objects
from .organ_pipe import organ_pipe_order

__all__ = ["ClusterProbabilityPlacement"]


@dataclass
class ClusterProbabilityPlacement(PlacementScheme):
    """Baseline: related objects on one tape, switch-count minimizing."""

    #: Tape capacity utilization coefficient (fill limit per tape).
    k: float = 0.9
    #: Clustering similarity threshold.
    cluster_threshold: float = 0.0
    #: Clustering algorithm: "requests" (fast) or "pairs" (exact linkage).
    cluster_method: str = "requests"

    name = "cluster_probability"

    def __post_init__(self) -> None:
        if not 0 < self.k <= 1:
            raise ValueError(f"k must be in (0, 1], got {self.k}")

    def place(self, workload: Workload, spec: SystemSpec) -> PlacementResult:
        catalog = workload.catalog
        fill_limit = self.k * spec.library.tape.capacity_mb

        clustering = cluster_objects(
            workload,
            threshold=self.cluster_threshold,
            max_size_mb=fill_limit,
            method=self.cluster_method,
        )
        # Hottest clusters first; they land on the earliest tapes, which are
        # the ones kept mounted.
        clusters = sorted(clustering, key=lambda c: (-c.probability, c.objects))

        # Tape order: round-robin across libraries.
        tape_order = [
            TapeId(lib, slot)
            for slot in range(spec.library.num_tapes)
            for lib in range(spec.num_libraries)
        ]
        used = {tid: 0.0 for tid in tape_order}
        tape_clusters: Dict[TapeId, List] = {tid: [] for tid in tape_order}

        open_limit = 0  # first-fit scans only tapes opened so far (+1 new)
        for cluster in clusters:
            placed = False
            for idx in range(min(open_limit + 1, len(tape_order))):
                tid = tape_order[idx]
                if used[tid] + cluster.size_mb <= fill_limit + 1e-9:
                    tape_clusters[tid].append(cluster)
                    used[tid] += cluster.size_mb
                    open_limit = max(open_limit, idx + 1)
                    placed = True
                    break
            if not placed:
                raise PlacementError(
                    f"cluster of {cluster.size_mb:.0f} MB fits on no tape "
                    f"(system capacity exhausted)"
                )

        layouts = {
            tid: self._tape_layout(members, catalog)
            for tid, members in tape_clusters.items()
            if members
        }
        tape_priority = {
            tid: self.total_priority(extents, catalog) for tid, extents in layouts.items()
        }
        initial_mounts = self.default_initial_mounts(layouts, tape_priority, spec)

        return PlacementResult(
            scheme=self.name,
            layouts=layouts,
            initial_mounts=initial_mounts,
            pinned=frozenset(),
            tape_priority=tape_priority,
            metadata={
                "k": self.k,
                "num_clusters": len(clustering),
                "num_multi_clusters": len(clustering.multi_object_clusters()),
            },
        )

    @staticmethod
    def _tape_layout(clusters: List, catalog) -> List[ObjectExtent]:
        """Organ-pipe the clusters; keep each cluster's members contiguous."""
        cluster_probs = [c.probability for c in clusters]
        cluster_order = organ_pipe_order(cluster_probs)
        extents: List[ObjectExtent] = []
        position = 0.0
        for ci in cluster_order:
            members = list(clusters[ci].objects)
            member_probs = [catalog.probability_of(o) for o in members]
            for mi in organ_pipe_order(member_probs):
                object_id = members[mi]
                size = catalog.size_of(object_id)
                extents.append(ObjectExtent(object_id, position, size))
                position += size
        return extents
