"""Striped placement — the related-work baseline the paper argues against.

Sec. 2 of the paper reviews object striping on tape arrays (Golubchik,
Muntz & Watson [15]; Drapeau & Katz [13, 14]; Chiueh [10]) and declines to
use it: "striping on sequential-accessed tapes suffers from long
synchronization latencies not faced by random-accessed disks … the striping
system may perform worse than non-striping system."

This scheme implements classic tape striping so that claim can be
*measured* (``benchmarks/bench_striping.py``, experiment A5): every object
at least ``min_stripe_mb`` large is split into ``stripe_width`` equal
fragments placed on ``stripe_width`` distinct tapes of the same rank group;
smaller objects stay whole.  Apart from striping, the layout mirrors the
object-probability baseline (rank-ordered tape groups, round-robin within a
group), so the comparison isolates striping itself.

The simulator needs no special support: the location index expands a
request to all fragments, each fragment's tape must be mounted and read,
and the request completes when the *last* fragment lands — the
synchronization latency (and the extra tape switches striping causes)
emerge naturally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..hardware import ObjectExtent, SystemSpec, TapeId
from ..workload import Workload
from .base import PlacementError, PlacementResult, PlacementScheme

__all__ = ["StripedPlacement"]


@dataclass
class StripedPlacement(PlacementScheme):
    """Rank-grouped placement with fixed-width object striping."""

    #: Fragments per striped object (the "striping width" of [15]).
    stripe_width: int = 4
    #: Objects smaller than this stay whole (striping tiny objects only
    #: multiplies positioning overhead).
    min_stripe_mb: float = 1000.0
    #: Tape capacity utilization coefficient.
    k: float = 0.9

    name = "striped"

    def __post_init__(self) -> None:
        if self.stripe_width < 2:
            raise ValueError(f"stripe_width must be >= 2, got {self.stripe_width}")
        if not 0 < self.k <= 1:
            raise ValueError(f"k must be in (0, 1], got {self.k}")
        if self.min_stripe_mb <= 0:
            raise ValueError(f"min_stripe_mb must be positive, got {self.min_stripe_mb}")

    def place(self, workload: Workload, spec: SystemSpec) -> PlacementResult:
        catalog = workload.catalog
        n, d, t = spec.num_libraries, spec.library.num_drives, spec.library.num_tapes
        group_size = n * d
        if self.stripe_width > group_size:
            raise PlacementError(
                f"stripe_width {self.stripe_width} exceeds the {group_size} drives "
                "available to read fragments in parallel"
            )
        fill_limit = self.k * spec.library.tape.capacity_mb

        probs = np.asarray(catalog.probabilities)
        rank_order = np.lexsort((np.arange(len(catalog)), -probs))

        num_groups = t // d
        groups: List[List[TapeId]] = [
            [TapeId(lib, g * d + j) for j in range(d) for lib in range(n)]
            for g in range(num_groups)
        ]

        assignment: Dict[TapeId, List[ObjectExtent]] = {
            tid: [] for grp in groups for tid in grp
        }
        used: Dict[TapeId, float] = {tid: 0.0 for grp in groups for tid in grp}

        def place_pieces(pieces: List[tuple]) -> bool:
            """Place [(object, part, parts, size)] on distinct tapes of one
            group; all or nothing (fragments must not share a tape)."""
            for group in groups:
                order = sorted(group, key=lambda tid: used[tid])
                if len(pieces) > len(order):
                    continue
                chosen = order[: len(pieces)]
                if all(
                    used[tid] + size <= fill_limit + 1e-9
                    for tid, (_, _, _, size) in zip(chosen, pieces)
                ):
                    for tid, (obj, part, parts, size) in zip(chosen, pieces):
                        assignment[tid].append(
                            ObjectExtent(obj, used[tid], size, part=part, parts=parts)
                        )
                        used[tid] += size
                    return True
            return False

        for object_id in rank_order:
            object_id = int(object_id)
            size = catalog.size_of(object_id)
            if size >= self.min_stripe_mb:
                w = self.stripe_width
                fragment = size / w
                pieces = [(object_id, p, w, fragment) for p in range(w)]
            else:
                pieces = [(object_id, 0, 1, size)]
            if not place_pieces(pieces):
                raise PlacementError(
                    f"object {object_id} ({size:.0f} MB, {len(pieces)} pieces) fits "
                    "in no tape group; capacity exhausted"
                )

        # Fragments are laid out in arrival (rank) order; extents already
        # carry their start positions from the append cursor.
        layouts = {tid: extents for tid, extents in assignment.items() if extents}
        tape_priority = {
            tid: float(
                sum(catalog.probability_of(e.object_id) * (e.size_mb / catalog.size_of(e.object_id))
                    for e in extents)
            )
            for tid, extents in layouts.items()
        }
        initial_mounts = self.default_initial_mounts(layouts, tape_priority, spec)

        return PlacementResult(
            scheme=self.name,
            layouts=layouts,
            initial_mounts=initial_mounts,
            pinned=frozenset(),
            tape_priority=tape_priority,
            metadata={
                "stripe_width": self.stripe_width,
                "min_stripe_mb": self.min_stripe_mb,
                "num_groups": len(groups),
                "striped_objects": int(
                    np.sum(np.asarray(catalog.sizes_mb) >= self.min_stripe_mb)
                ),
            },
        )
