"""Name-based registry of placement schemes.

Lets experiments, the CLI, and user code construct schemes from strings
(``make_scheme("parallel_batch", m=4)``) and lets downstream users plug in
their own schemes (see ``examples/custom_placement_plugin.py``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable

from .base import PlacementScheme
from .cluster_probability import ClusterProbabilityPlacement
from .object_probability import ObjectProbabilityPlacement
from .parallel_batch import ParallelBatchPlacement
from .striping import StripedPlacement

__all__ = ["register_scheme", "make_scheme", "available_schemes"]

_REGISTRY: Dict[str, Callable[..., PlacementScheme]] = {}


def register_scheme(name: str, factory: Callable[..., PlacementScheme]) -> None:
    """Register ``factory`` under ``name`` (overwrites silently)."""
    if not name:
        raise ValueError("scheme name must be non-empty")
    _REGISTRY[name] = factory


def make_scheme(name: str, **kwargs) -> PlacementScheme:
    """Instantiate a registered scheme by name."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown placement scheme {name!r}; known: {known}") from None
    return factory(**kwargs)


def available_schemes() -> Iterable[str]:
    return sorted(_REGISTRY)


register_scheme(ParallelBatchPlacement.name, ParallelBatchPlacement)
register_scheme(ObjectProbabilityPlacement.name, ObjectProbabilityPlacement)
register_scheme(ClusterProbabilityPlacement.name, ClusterProbabilityPlacement)
register_scheme(StripedPlacement.name, StripedPlacement)


def _register_redundancy() -> None:
    # Deferred: repro.redundancy imports placement.base, so importing it at
    # module top would cycle through this package's __init__.
    from ..redundancy.placement import ErasureCodedPlacement, ReplicatedPlacement

    register_scheme(ReplicatedPlacement.name, ReplicatedPlacement)
    register_scheme(ErasureCodedPlacement.name, ErasureCodedPlacement)


_register_redundancy()
