"""Steps 2–4 of the placement algorithm: density sort, sublist partition,
cluster-aware refinement (Sec. 5.3).

* **Step 2** sorts objects by probability density ``P(O)/size(O)``
  (decreasing), so each MB of always-mounted capacity buys the most
  probability.
* **Step 3** cuts the sorted list into capacity-bounded sublists: the first
  fits the always-mounted batch (``k·n·(d−m)·C_t``), the rest fit one switch
  batch each (``k·n·m·C_t``).
* **Step 4** moves whole clusters between sublists so strongly related
  objects land in the same batch (at most one switch round per library per
  request) while preserving the monotone probability skew across batches.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..catalog import ObjectCatalog
from .base import PlacementError
from .clustering import Clustering

__all__ = ["density_order", "partition_sublists", "refine_sublists"]


def density_order(catalog: ObjectCatalog) -> np.ndarray:
    """Object ids sorted by decreasing probability density (Step 2).

    Ties (e.g. the many zero-probability objects) break by object id for
    determinism.
    """
    densities = catalog.densities
    return np.lexsort((np.arange(len(catalog)), -densities))


def partition_sublists(
    order: Sequence[int],
    catalog: ObjectCatalog,
    first_capacity_mb: float,
    rest_capacity_mb: float,
) -> List[List[int]]:
    """Cut the density-ordered object list into capacity-bounded sublists
    (Step 3).  Each object goes to the earliest sublist with room; an object
    larger than a whole batch is unplaceable."""
    if first_capacity_mb <= 0 or rest_capacity_mb <= 0:
        raise ValueError("sublist capacities must be positive")
    sublists: List[List[int]] = [[]]
    remaining = [first_capacity_mb]

    for object_id in order:
        size = catalog.size_of(int(object_id))
        placed = False
        # The paper appends in order; a too-large object spills to the next
        # sublist.  Scanning earlier sublists (first-fit) would break the
        # probability skew, so only the tail sublist (and new ones) are used.
        if size <= remaining[-1] + 1e-9:
            sublists[-1].append(int(object_id))
            remaining[-1] -= size
            placed = True
        else:
            if size > rest_capacity_mb + 1e-9:
                raise PlacementError(
                    f"object {object_id} ({size:.0f} MB) exceeds the switch-batch "
                    f"capacity ({rest_capacity_mb:.0f} MB)"
                )
            sublists.append([int(object_id)])
            remaining.append(rest_capacity_mb - size)
            placed = True
        assert placed
    return sublists


def refine_sublists(
    sublists: List[List[int]],
    clustering: Clustering,
    catalog: ObjectCatalog,
    first_capacity_mb: float,
    rest_capacity_mb: float,
) -> List[List[int]]:
    """Unify every cluster inside a single sublist (Step 4).

    The paper refines the Step-3 partition by moving related objects between
    adjacent sublists until "objects with a strong relationship fall into the
    same sublist … while maintaining the skewed tape probability
    distribution".  We compute the fixed point of that process directly:
    re-partition at whole-cluster granularity, visiting clusters in
    decreasing probability *density* (so each MB of always-mounted capacity
    still buys the most probability — the skew is preserved at cluster
    granularity) and packing each cluster first-fit into the earliest
    sublist with room.  Clusters are capped at batch capacity upstream, so
    every cluster fits some sublist.

    Postconditions: every object appears exactly once; no cluster spans two
    sublists; sublist capacities are respected; sublist mean density is
    (approximately) non-increasing.
    """
    order = [object_id for sublist in sublists for object_id in sublist]
    sizes = np.asarray(catalog.sizes_mb)

    # Clusters in decreasing aggregate-density order; members keep their
    # original (density) order within the cluster.
    position = {object_id: i for i, object_id in enumerate(order)}
    members_by_cluster: dict = {}
    for object_id in order:
        members_by_cluster.setdefault(clustering.cluster_of(object_id), []).append(object_id)
    cluster_order = sorted(
        members_by_cluster,
        key=lambda c: (
            -clustering.clusters[c].density,
            position[members_by_cluster[c][0]],
        ),
    )

    refined: List[List[int]] = [[]]
    remaining = [first_capacity_mb]
    for c in cluster_order:
        members = members_by_cluster[c]
        size = float(sizes[members].sum())
        placed = False
        for s in range(len(refined)):
            if size <= remaining[s] + 1e-9:
                refined[s].extend(members)
                remaining[s] -= size
                placed = True
                break
        if not placed:
            if size > rest_capacity_mb + 1e-9:
                raise PlacementError(
                    f"cluster of {size:.0f} MB exceeds the switch-batch capacity "
                    f"({rest_capacity_mb:.0f} MB); cap clusters at batch size upstream"
                )
            refined.append(list(members))
            remaining.append(rest_capacity_mb - size)
    return refined
