"""Organ-pipe alignment of objects within one tape.

Classic result (Wong [24]; applied to tapes by Christodoulakis et al. [11]):
with independent access probabilities and a head that parks where it last
read, expected seek distance is minimized by placing the most popular object
in the middle and alternating successively less popular objects left/right —
the probability profile looks like an organ's pipes.

Every scheme in the paper uses this as Step 6 / within-tape alignment.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..catalog import ObjectCatalog
from ..hardware import ObjectExtent

__all__ = ["organ_pipe_order", "organ_pipe_extents", "sequential_extents"]


def organ_pipe_order(probabilities: Sequence[float]) -> List[int]:
    """Return indices arranged organ-pipe style (hottest in the middle).

    Items are taken hottest-first and appended to alternating sides of the
    middle, so the final left-to-right probability profile rises then falls.
    Ties break by original index for determinism.
    """
    probs = np.asarray(probabilities, dtype=np.float64)
    if probs.ndim != 1:
        raise ValueError("probabilities must be one-dimensional")
    n = len(probs)
    if n == 0:
        return []
    # Hottest first; stable tie-break on original index.
    by_heat = sorted(range(n), key=lambda i: (-probs[i], i))
    left: List[int] = []
    right: List[int] = []
    for rank, idx in enumerate(by_heat):
        if rank == 0:
            right.append(idx)
        elif rank % 2 == 1:
            left.append(idx)
        else:
            right.append(idx)
    left.reverse()
    return left + right


def organ_pipe_extents(object_ids: Sequence[int], catalog: ObjectCatalog) -> List[ObjectExtent]:
    """Organ-pipe-align ``object_ids`` into contiguous extents from position 0."""
    probs = [catalog.probability_of(o) for o in object_ids]
    order = organ_pipe_order(probs)
    extents: List[ObjectExtent] = []
    position = 0.0
    for idx in order:
        object_id = object_ids[idx]
        size = catalog.size_of(object_id)
        extents.append(ObjectExtent(object_id, position, size))
        position += size
    return extents


def clustered_organ_pipe_extents(
    groups: Sequence[Sequence[int]], catalog: ObjectCatalog
) -> List[ObjectExtent]:
    """Organ-pipe whole groups; keep each group's members contiguous.

    Groups (clusters) are arranged organ-pipe by aggregate probability —
    hottest cluster in the middle of the tape — and within a group's
    segment members are organ-piped by their own probabilities.  For
    singleton groups this degenerates to plain per-object organ pipe; for
    cluster-structured tapes it additionally guarantees that co-requested
    objects are read as one contiguous run (minimal intra-request seek).
    """
    group_probs = [
        sum(catalog.probability_of(o) for o in group) for group in groups
    ]
    extents: List[ObjectExtent] = []
    position = 0.0
    for gi in organ_pipe_order(group_probs):
        members = list(groups[gi])
        member_probs = [catalog.probability_of(o) for o in members]
        for mi in organ_pipe_order(member_probs):
            object_id = members[mi]
            size = catalog.size_of(object_id)
            extents.append(ObjectExtent(object_id, position, size))
            position += size
    return extents


def sequential_extents(object_ids: Sequence[int], catalog: ObjectCatalog) -> List[ObjectExtent]:
    """FIFO alignment (no organ pipe) — the ablation baseline."""
    extents: List[ObjectExtent] = []
    position = 0.0
    for object_id in object_ids:
        size = catalog.size_of(object_id)
        extents.append(ObjectExtent(object_id, position, size))
        position += size
    return extents
