"""Parallel batch placement — the paper's proposed scheme (Sec. 5).

Drives of each library are split into ``d − m`` *always-mounted* drives and
``m`` *switch* drives.  Tapes form batches: batch 0 (``n×(d−m)`` tapes, one
set of ``d−m`` per library) is mounted at startup and never unmounted;
every later batch has ``n×m`` tapes (``m`` per library) and is swapped
through the switch drives — because related objects are kept inside one
batch, the tapes of a batch tend to be swapped together, giving parallel
switches across libraries and parallel transfers across drives.

The placement follows Steps 1–6 of Sec. 5.3 exactly:

1. object probabilities from request probabilities (already maintained by
   :class:`~repro.workload.Workload`);
2. decreasing probability-density sort;
3. capacity-bounded sublists (k·n·(d−m)·C_t, then k·n·m·C_t each);
4. cluster-aware sublist refinement;
5. per-batch allocation with the Figure-3 greedy zig-zag (clusters split
   over ``ndrv`` tapes when big enough to benefit);
6. organ-pipe alignment within every tape.

Ablation switches (``refine``, ``use_zigzag``, ``alignment``,
``pin_first_batch``, ``detach_shared``) let the A1 benchmark quantify each
ingredient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence


from ..hardware import DriveId, SystemSpec, TapeId
from ..workload import Workload
from .base import PlacementError, PlacementResult, PlacementScheme
from .clustering import Clustering, cluster_objects
from .load_balance import TapeBin, choose_ndrv, round_robin_assign, zigzag_assign
from .organ_pipe import (
    clustered_organ_pipe_extents,
    organ_pipe_extents,
    sequential_extents,
)
from .sublists import density_order, partition_sublists, refine_sublists

__all__ = ["ParallelBatchPlacement"]


def default_split_unit_mb(spec: SystemSpec) -> float:
    """Bytes a drive streams during one average uncontended tape switch.

    Splitting a cluster share below this size cannot shorten the response:
    the extra tape's switch would outlast the transfer it saves (the Step-5
    "big enough" test).
    """
    lib = spec.library
    switch_s = (
        lib.tape.avg_rewind_s
        + lib.drive.unload_s
        + 2.0 * lib.cell_to_drive_s
        + lib.drive.load_s
    )
    return switch_s * lib.drive.transfer_rate_mb_s


@dataclass
class ParallelBatchPlacement(PlacementScheme):
    """The proposed scheme.  See module docstring."""

    #: Switch drives per library (the paper settles on 4 via Figure 5).
    m: int = 4
    #: Tape capacity utilization coefficient k < 1 (Step 3).
    k: float = 0.9
    #: Cluster-split granularity; ``None`` derives it from the spec.
    split_unit_mb: Optional[float] = None
    #: Clustering similarity threshold ("preset probability value").
    cluster_threshold: float = 0.0
    #: Clustering algorithm: "requests" (fast) or "pairs" (exact linkage).
    cluster_method: str = "requests"
    #: Cluster total-size cap.  ``None`` derives ``min(batch capacity,
    #: 2 × max request size)``: big enough that one request's working set
    #: usually stays in one cluster (⇒ one switch round per library), small
    #: enough that the density-greedy knapsack of Step 3/4 packs batch 0
    #: with the hottest mass (Sec. 5.1's cluster-size-control rule).
    cluster_cap_mb: Optional[float] = None
    # -- ablation switches -------------------------------------------------
    refine: bool = True
    use_zigzag: bool = True
    #: Step-6 within-tape alignment:
    #: "clustered" (default) — organ-pipe whole clusters, members contiguous
    #:   (a strict refinement of the paper's Step 6: co-requested objects
    #:   are additionally guaranteed a single contiguous run);
    #: "object" — the paper's literal Step 6, organ pipe by individual
    #:   object probability;
    #: "fifo" — no alignment (ablation baseline).
    alignment: str = "clustered"
    pin_first_batch: bool = True
    #: Keep multi-request objects out of clusters so the density sort can
    #: pull them into the always-mounted batch (see cluster_objects).
    detach_shared: bool = True

    name = "parallel_batch"

    def __post_init__(self) -> None:
        if not 0 < self.k <= 1:
            raise ValueError(f"k must be in (0, 1], got {self.k}")
        if self.alignment not in ("clustered", "object", "fifo"):
            raise ValueError(
                f"alignment must be 'clustered', 'object' or 'fifo', got {self.alignment!r}"
            )

    # ------------------------------------------------------------------
    def place(self, workload: Workload, spec: SystemSpec) -> PlacementResult:
        n, d, m = spec.num_libraries, spec.library.num_drives, self.m
        if not 1 <= m <= d - 1:
            raise PlacementError(
                f"m must be in 1..d-1 (= {d - 1}), got {m}: at least one drive per "
                "library must stay always-mounted and at least one must switch"
            )
        catalog = workload.catalog
        tape_capacity = spec.library.tape.capacity_mb
        first_capacity = self.k * n * (d - m) * tape_capacity
        rest_capacity = self.k * n * m * tape_capacity

        # Steps 1-3 -----------------------------------------------------
        order = density_order(catalog)
        sublists = partition_sublists(order, catalog, first_capacity, rest_capacity)

        # Clusters capped at roughly request scale (see cluster_cap_mb doc).
        batch_cap = min(first_capacity, rest_capacity)
        cluster_cap = self.cluster_cap_mb
        if cluster_cap is None:
            cluster_cap = min(batch_cap, 2.0 * workload.max_request_size_mb)
        cluster_cap = min(cluster_cap, batch_cap)
        clustering = cluster_objects(
            workload,
            threshold=self.cluster_threshold,
            max_size_mb=cluster_cap,
            method=self.cluster_method,
            detach_shared=self.detach_shared,
        )

        # Step 4 ---------------------------------------------------------
        if self.refine:
            sublists = refine_sublists(
                sublists, clustering, catalog, first_capacity, rest_capacity
            )

        # Batch -> tape ids ------------------------------------------------
        all_batches = self._batch_tapes(spec)
        if len(sublists) > len(all_batches):
            raise PlacementError(
                f"workload needs {len(sublists)} batches but the system only has "
                f"{len(all_batches)} (t={spec.library.num_tapes}, d-m={d - m}, m={m})"
            )

        # Step 5: allocate each sublist onto its batch.  Objects a batch's
        # tapes cannot fit (per-tape fragmentation; Step 3 only bounds the
        # aggregate) overflow to the next batch as singleton clusters.
        split_unit = self.split_unit_mb or default_split_unit_mb(spec)
        assignment: Dict[TapeId, TapeBin] = {}
        overflow: List[int] = []
        b = 0
        while b < len(sublists) or overflow:
            if b >= len(all_batches):
                # Past the last batch: scavenge free space anywhere (the
                # skew no longer matters for these last stragglers).
                for object_id in overflow:
                    size = catalog.size_of(object_id)
                    candidates = [
                        tb for tb in assignment.values() if tb.fits(size)
                    ]
                    if not candidates:
                        raise PlacementError(
                            f"object {object_id} ({size:.0f} MB) fits nowhere; "
                            "system capacity exhausted"
                        )
                    best = max(candidates, key=lambda tb: tb.free_mb)
                    best.add(object_id, size, catalog.probability_of(object_id) * size)
                overflow = []
                break
            sublist = sublists[b] if b < len(sublists) else []
            bins = [TapeBin(tid, tape_capacity) for tid in all_batches[b]]
            pending = [[o] for o in overflow] + self._clusters_in_sublist(
                sublist, clustering
            )
            overflow = []
            for cluster_members in pending:
                size = catalog.total_size_mb(cluster_members)
                if b == 0:
                    # Sec. 5.1: always-mounted clusters spread over up to
                    # n×(d−m) tapes "for maximum parallelism" — those tapes
                    # never pay a switch, so width is free.
                    ndrv = min(len(cluster_members), len(bins))
                else:
                    # Step 5: switch-batch clusters split only when each
                    # share is worth a drive's switch ("big enough").
                    ndrv = choose_ndrv(size, len(cluster_members), len(bins), split_unit)
                if self.use_zigzag:
                    overflow += zigzag_assign(cluster_members, catalog, bins, ndrv)
                else:
                    overflow += round_robin_assign(cluster_members, catalog, bins)
            for tape_bin in bins:
                assignment[tape_bin.tape_id] = tape_bin
            b += 1
        batches = all_batches[:b]

        # Step 6: within-tape alignment (see the `alignment` field).
        layouts: Dict[TapeId, List] = {}
        for tid, tape_bin in assignment.items():
            if self.alignment == "clustered":
                groups: Dict[int, List[int]] = {}
                for object_id in tape_bin.object_ids:
                    groups.setdefault(clustering.cluster_of(object_id), []).append(object_id)
                layouts[tid] = clustered_organ_pipe_extents(list(groups.values()), catalog)
            elif self.alignment == "object":
                layouts[tid] = organ_pipe_extents(tape_bin.object_ids, catalog)
            else:
                layouts[tid] = sequential_extents(tape_bin.object_ids, catalog)
        tape_priority = {
            tid: self.total_priority(extents, catalog) for tid, extents in layouts.items()
        }

        # Startup mounts: batch 0 on the pinned drives, batch 1 (if any) on
        # the switch drives ("the second batch is mounted during startup").
        initial_mounts: Dict[DriveId, TapeId] = {}
        pinned: set = set()
        for lib in range(n):
            batch0 = [tid for tid in batches[0] if tid.library == lib]
            for j, tape_id in enumerate(batch0):
                if layouts.get(tape_id):
                    initial_mounts[DriveId(lib, j)] = tape_id
                    if self.pin_first_batch:
                        pinned.add(tape_id)
            if len(batches) > 1:
                batch1 = [tid for tid in batches[1] if tid.library == lib]
                for j, tape_id in enumerate(batch1):
                    if layouts.get(tape_id):
                        initial_mounts[DriveId(lib, (d - m) + j)] = tape_id

        return PlacementResult(
            scheme=self.name,
            layouts=layouts,
            initial_mounts=initial_mounts,
            pinned=frozenset(pinned),
            tape_priority=tape_priority,
            metadata={
                "m": m,
                "k": self.k,
                "split_unit_mb": split_unit,
                "num_sublists": len(sublists),
                "batches": [list(b) for b in batches[: len(sublists)]],
                "num_clusters": len(clustering),
                "num_multi_clusters": len(clustering.multi_object_clusters()),
            },
        )

    # ------------------------------------------------------------------
    def _batch_tapes(self, spec: SystemSpec) -> List[List[TapeId]]:
        """Tape ids of every possible batch, interleaved across libraries.

        Batch 0 takes slots ``0..d-m-1`` of every library; batch ``b >= 1``
        takes slots ``(d-m) + (b-1)·m .. (d-m) + b·m - 1``.  The interleaved
        (library-major) order makes the zig-zag spread a cluster across
        libraries first, maximizing transfer *and* robot parallelism.
        """
        n, d, m = spec.num_libraries, spec.library.num_drives, self.m
        t = spec.library.num_tapes
        max_batches = 1 + (t - (d - m)) // m
        batches: List[List[TapeId]] = []
        batch0 = [TapeId(lib, slot) for slot in range(d - m) for lib in range(n)]
        batches.append(batch0)
        for b in range(1, max_batches):
            start = (d - m) + (b - 1) * m
            batches.append(
                [TapeId(lib, start + j) for j in range(m) for lib in range(n)]
            )
        return batches

    @staticmethod
    def _clusters_in_sublist(
        sublist: Sequence[int], clustering: Clustering
    ) -> List[List[int]]:
        """Group a sublist's objects by cluster, in first-appearance
        (density) order; after refinement most clusters are whole here."""
        groups: Dict[int, List[int]] = {}
        for object_id in sublist:
            groups.setdefault(clustering.cluster_of(object_id), []).append(object_id)
        return list(groups.values())
