"""Placement schemes: the paper's contribution and both baselines.

* :class:`ParallelBatchPlacement` — the proposed scheme (Sec. 5).
* :class:`ObjectProbabilityPlacement` — baseline [11], probability-only.
* :class:`ClusterProbabilityPlacement` — baseline [20], switch-minimizing.

Shared substrates: co-access clustering (Sec. 5.1), the Figure-3 greedy
zig-zag load balancer (Sec. 5.4), organ-pipe alignment, and the
density-sort/sublist machinery of Steps 2–4.
"""

from .base import PlacementError, PlacementResult, PlacementScheme
from .cluster_probability import ClusterProbabilityPlacement
from .incremental import (
    Epoch,
    IncrementalParallelBatch,
    split_into_epochs,
    subset_workload,
)
from .clustering import Cluster, Clustering, cluster_objects, similarity_edges
from .load_balance import TapeBin, choose_ndrv, round_robin_assign, zigzag_assign
from .object_probability import ObjectProbabilityPlacement
from .organ_pipe import (
    clustered_organ_pipe_extents,
    organ_pipe_extents,
    organ_pipe_order,
    sequential_extents,
)
from .parallel_batch import ParallelBatchPlacement, default_split_unit_mb
from .registry import available_schemes, make_scheme, register_scheme
from .striping import StripedPlacement
from .sublists import density_order, partition_sublists, refine_sublists

__all__ = [
    "PlacementError",
    "PlacementResult",
    "PlacementScheme",
    "ParallelBatchPlacement",
    "ObjectProbabilityPlacement",
    "ClusterProbabilityPlacement",
    "Epoch",
    "IncrementalParallelBatch",
    "split_into_epochs",
    "subset_workload",
    "StripedPlacement",
    "Cluster",
    "Clustering",
    "cluster_objects",
    "similarity_edges",
    "TapeBin",
    "choose_ndrv",
    "zigzag_assign",
    "round_robin_assign",
    "organ_pipe_order",
    "clustered_organ_pipe_extents",
    "organ_pipe_extents",
    "sequential_extents",
    "density_order",
    "partition_sublists",
    "refine_sublists",
    "default_split_unit_mb",
    "available_schemes",
    "make_scheme",
    "register_scheme",
]
