"""Greedy tape load balancing within a batch (Sec. 5.4, Figure 3).

Object load is ``P(O) × size(O)``; tape workload is the sum of its object
loads.  For each cluster, the paper's pseudocode sorts the cluster's objects
into increasing load order, sorts tapes into decreasing workload order, and
walks a zig-zag (boustrophedon with repeated endpoints) over the first
``ndrv`` tapes, so light objects land on heavily loaded tapes and heavy
objects on lightly loaded ones.

Interpretation notes (documented in DESIGN.md §5):

* "assign ndrv a proper value based on info of C and tapes": we use
  ``ndrv = clamp(ceil(cluster_size / split_unit), 1, available tapes)`` —
  a cluster is split over just enough tapes that each share is worth a
  drive's time (Step 5's "big enough" test).  ``split_unit`` defaults to
  the bytes a drive streams during one average tape switch, below which
  splitting cannot reduce wall-clock response time.
* The zig-zag window is the ``ndrv`` *least-loaded* tapes of the batch
  (that is what makes the procedure balance load globally); within the
  window the Figure-3 ordering (decreasing workload) and walk are applied
  literally.
* If the zig-zag target tape cannot fit the object, the least-loaded tape
  in the window with room takes it; if none fits, :class:`PlacementError`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..catalog import ObjectCatalog
from ..hardware import TapeId
from .base import PlacementError

__all__ = ["TapeBin", "choose_ndrv", "zigzag_assign", "round_robin_assign"]


@dataclass
class TapeBin:
    """A tape being filled by a placement algorithm."""

    tape_id: TapeId
    capacity_mb: float
    used_mb: float = 0.0
    workload: float = 0.0
    object_ids: List[int] = field(default_factory=list)

    @property
    def free_mb(self) -> float:
        return self.capacity_mb - self.used_mb

    def fits(self, size_mb: float) -> bool:
        return size_mb <= self.free_mb + 1e-9

    def add(self, object_id: int, size_mb: float, load: float) -> None:
        if not self.fits(size_mb):
            raise PlacementError(
                f"object {object_id} ({size_mb:.1f} MB) does not fit on {self.tape_id} "
                f"({self.free_mb:.1f} MB free)"
            )
        self.object_ids.append(object_id)
        self.used_mb += size_mb
        self.workload += load


def choose_ndrv(
    cluster_size_mb: float,
    num_objects: int,
    available_tapes: int,
    split_unit_mb: float,
) -> int:
    """How many tapes a cluster should spread over (Fig. 3's ``ndrv``)."""
    if available_tapes <= 0:
        raise ValueError("no tapes available")
    if split_unit_mb <= 0:
        raise ValueError(f"split_unit_mb must be positive, got {split_unit_mb}")
    wanted = max(1, math.ceil(cluster_size_mb / split_unit_mb))
    return max(1, min(wanted, num_objects, available_tapes))


def zigzag_assign(
    object_ids: Sequence[int],
    catalog: ObjectCatalog,
    bins: List[TapeBin],
    ndrv: Optional[int] = None,
) -> List[int]:
    """Assign one cluster's objects to ``bins`` per the Figure-3 walk.

    Mutates the bins in place; ``ndrv`` defaults to all bins.  Returns the
    object ids that fit on *no* tape of the batch (the caller overflows them
    to the next batch) — empty in the common case.
    """
    if not object_ids:
        return []
    if not bins:
        raise PlacementError("zigzag_assign needs at least one tape bin")
    if ndrv is None:
        ndrv = len(bins)
    ndrv = max(1, min(ndrv, len(bins)))

    # Window: the ndrv least-loaded tapes; within it, Figure-3's decreasing
    # workload order.
    window = sorted(bins, key=lambda b: b.workload)[:ndrv]
    window.sort(key=lambda b: -b.workload)

    # "sort objects in C into increasing order based on load"
    loads = {o: catalog.probability_of(o) * catalog.size_of(o) for o in object_ids}
    ordered = sorted(object_ids, key=lambda o: (loads[o], o))

    rejected: List[int] = []
    i, flag = 0, 0
    for object_id in ordered:
        if flag == 0:
            i += 1
        else:
            i -= 1
        if i == ndrv:
            flag = 1
            i -= 1
        if i == -1:
            flag = 0
            i += 1
        target = window[i]
        size = catalog.size_of(object_id)
        if not target.fits(size):
            # Deviate minimally: roomiest tape in the window, widening to
            # the whole batch only if the window is full (Step 3 guarantees
            # aggregate batch capacity, not per-tape capacity).
            candidates = [b for b in window if b.fits(size)]
            if not candidates:
                candidates = [b for b in bins if b.fits(size)]
            if not candidates:
                rejected.append(object_id)
                continue
            target = max(candidates, key=lambda b: b.free_mb)
        target.add(object_id, size, loads[object_id])
    return rejected


def round_robin_assign(
    object_ids: Sequence[int],
    catalog: ObjectCatalog,
    bins: List[TapeBin],
) -> List[int]:
    """Naive alternative to the zig-zag (ablation A1): plain round-robin in
    the given object order, skipping full tapes.  Returns unplaceable ids."""
    if not object_ids:
        return []
    if not bins:
        raise PlacementError("round_robin_assign needs at least one tape bin")
    rejected: List[int] = []
    position = 0
    for object_id in object_ids:
        size = catalog.size_of(object_id)
        load = catalog.probability_of(object_id) * size
        for attempt in range(len(bins)):
            target = bins[(position + attempt) % len(bins)]
            if target.fits(size):
                target.add(object_id, size, load)
                position = (position + attempt + 1) % len(bins)
                break
        else:
            rejected.append(object_id)
    return rejected
