"""Object clustering from co-access similarity (Sec. 5.1).

The similarity of two objects is the summed probability of all requests that
contain both.  Following the paper, request information drives the
computation: only object pairs that actually co-occur in some request get an
edge, which keeps the similarity graph sparse (≈ Σ |R|²/2 entries instead of
N²) and is computed vectorized.

Cluster formation is single-linkage hierarchical agglomeration (Johnson
[17]): edges are processed in decreasing similarity and merged with
union-find; "traversing the tree with a preset probability value" is
equivalent to discarding edges below the threshold.  Merges can additionally
be capped by cluster object count and total size — the Sec.-5.1 rule that
cluster size be controlled for maximum parallelism and the batch-capacity
constraint of Step 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..catalog import RequestSet
from ..workload import Workload

__all__ = ["Cluster", "Clustering", "similarity_edges", "cluster_objects"]


def similarity_edges(
    requests: RequestSet, num_objects: int
) -> Tuple[np.ndarray, np.ndarray]:
    """All co-access pairs and their similarities.

    Returns ``(pairs, weights)`` where ``pairs`` is an ``(E, 2)`` int array
    with ``pairs[:, 0] < pairs[:, 1]`` and ``weights[e]`` is the summed
    probability of requests containing both objects of pair ``e``.
    """
    keys: List[np.ndarray] = []
    pair_counts: List[int] = []
    pair_probs: List[float] = []
    probs = requests.probabilities
    for request, p in zip(requests, probs):
        ids = np.sort(np.asarray(request.object_ids, dtype=np.int64))
        c = len(ids)
        if c < 2:
            continue
        a, b = np.triu_indices(c, k=1)
        keys.append(ids[a] * num_objects + ids[b])
        pair_counts.append(len(a))
        pair_probs.append(p)
    if not keys:
        return np.empty((0, 2), dtype=np.int64), np.empty(0)
    all_keys = np.concatenate(keys)
    # One repeat assembles the whole weight column (each request's
    # probability, repeated once per pair) instead of allocating and
    # concatenating a per-request ``np.full`` slice.
    all_weights = np.repeat(np.asarray(pair_probs), pair_counts)
    uniq, inverse = np.unique(all_keys, return_inverse=True)
    agg = np.bincount(inverse, weights=all_weights)
    pairs = np.stack([uniq // num_objects, uniq % num_objects], axis=1)
    return pairs, agg


@dataclass(frozen=True)
class Cluster:
    """One group of strongly related objects."""

    objects: Tuple[int, ...]
    #: Accumulated object probability Σ P(O) over members.
    probability: float
    #: Total member size in MB.
    size_mb: float

    def __len__(self) -> int:
        return len(self.objects)

    @property
    def density(self) -> float:
        return self.probability / self.size_mb if self.size_mb > 0 else 0.0


class Clustering:
    """The result of clustering: clusters plus a per-object label array."""

    def __init__(self, clusters: List[Cluster], labels: np.ndarray) -> None:
        self.clusters = clusters
        self.labels = labels

    def cluster_of(self, object_id: int) -> int:
        """Index into :attr:`clusters` for ``object_id``."""
        return int(self.labels[object_id])

    @property
    def num_objects(self) -> int:
        return len(self.labels)

    def multi_object_clusters(self) -> List[Cluster]:
        return [c for c in self.clusters if len(c) > 1]

    def __len__(self) -> int:
        return len(self.clusters)

    def __iter__(self):
        return iter(self.clusters)

    def __repr__(self) -> str:
        multi = self.multi_object_clusters()
        biggest = max((len(c) for c in self.clusters), default=0)
        return (
            f"<Clustering {len(self.clusters)} clusters over {self.num_objects} objects "
            f"({len(multi)} non-trivial, largest {biggest})>"
        )


class _UnionFind:
    """Union-find tracking member count and total size per component."""

    def __init__(self, sizes_mb: np.ndarray) -> None:
        n = len(sizes_mb)
        self.parent = np.arange(n, dtype=np.int64)
        self.count = np.ones(n, dtype=np.int64)
        self.size_mb = sizes_mb.astype(np.float64).copy()

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def try_union(
        self, a: int, b: int, max_count: Optional[int], max_size_mb: Optional[float]
    ) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if max_count is not None and self.count[ra] + self.count[rb] > max_count:
            return False
        if max_size_mb is not None and self.size_mb[ra] + self.size_mb[rb] > max_size_mb:
            return False
        # Union by member count.
        if self.count[ra] < self.count[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.count[ra] += self.count[rb]
        self.size_mb[ra] += self.size_mb[rb]
        return True


def cluster_objects(
    workload: Workload,
    threshold: float = 0.0,
    max_objects: Optional[int] = None,
    max_size_mb: Optional[float] = None,
    method: str = "requests",
    detach_shared: bool = False,
) -> Clustering:
    """Cluster a workload's objects by co-access similarity.

    Parameters
    ----------
    threshold:
        Minimum similarity for a merge ("preset probability value").
        The default 0.0 admits every co-occurrence edge.
    max_objects, max_size_mb:
        Caps on cluster member count / total size; merges that would exceed
        either are skipped (stronger-similarity merges happen first, so caps
        cut the dendrogram where it is weakest).
    method:
        ``"pairs"`` — exact single-linkage over the aggregated pair
        similarity graph (O(E) union operations; E ≈ Σ|R|²/2).
        ``"requests"`` (default) — request-linkage: requests are processed in
        decreasing probability and each request's members are merged
        directly.  For pairs that co-occur in a single request (the vast
        majority under the paper's random-membership workload) the two are
        identical; with no caps and threshold 0 they produce exactly the
        same components (union of request cliques), while request-linkage
        does O(Σ|R|) merges instead of O(Σ|R|²).
    detach_shared:
        Keep objects that appear in *two or more* requests out of all
        clusters (they stay singletons).  Such objects are the bridges of
        the co-access graph: single-linkage would chain otherwise-unrelated
        requests through them, whereas their average similarity to any one
        request cluster is low (the complete/average-linkage view of the
        hierarchical algorithm the paper cites).  Their accumulated
        probability ``Σ P(R)`` is also the highest in the workload, so as
        singletons the density sort of Step 2 naturally pulls them into the
        always-mounted batch.  Only affects ``method="requests"``.
    """
    catalog = workload.catalog
    n = len(catalog)

    shared: Optional[np.ndarray] = None
    if detach_shared and method == "requests":
        counts = np.zeros(n, dtype=np.int64)
        for request in workload.requests:
            counts[list(request.object_ids)] += 1
        shared = counts >= 2

    uf = _UnionFind(np.asarray(catalog.sizes_mb))
    if method == "pairs":
        pairs, weights = similarity_edges(workload.requests, n)
        if len(pairs):
            keep = weights >= threshold if threshold > 0 else slice(None)
            pairs, weights = pairs[keep], weights[keep]
            order = np.argsort(-weights, kind="stable")
            for e in order:
                uf.try_union(int(pairs[e, 0]), int(pairs[e, 1]), max_objects, max_size_mb)
    elif method == "requests":
        requests = workload.requests
        probs = requests.probabilities
        for ri in np.argsort(-probs, kind="stable"):
            request, p = requests[int(ri)], probs[ri]
            if p < threshold or len(request) < 2:
                continue
            members = request.object_ids
            if shared is not None:
                members = tuple(o for o in members if not shared[o])
                if len(members) < 2:
                    continue
            anchor = members[0]
            for other in members[1:]:
                if not uf.try_union(anchor, other, max_objects, max_size_mb):
                    # Anchor's cluster is full; keep growing from the member
                    # that failed so later members can still clique together.
                    anchor = other
    else:
        raise ValueError(f"unknown clustering method {method!r}")

    roots = np.array([uf.find(i) for i in range(n)], dtype=np.int64)
    uniq_roots, labels = np.unique(roots, return_inverse=True)
    members: List[List[int]] = [[] for _ in uniq_roots]
    for obj, label in enumerate(labels):
        members[label].append(obj)

    probs = np.asarray(catalog.probabilities)
    sizes = np.asarray(catalog.sizes_mb)
    clusters = [
        Cluster(
            objects=tuple(objs),
            probability=float(probs[objs].sum()),
            size_mb=float(sizes[objs].sum()),
        )
        for objs in members
    ]
    return Clustering(clusters, labels)
