"""Incremental placement — the paper's open problem, implemented.

The conclusion of the paper: "In a real system, objects are moved to tapes
periodically.  When we place objects on tapes, we only have the local
knowledge of object probability and relationship.  How to make an optimal
or near-optimal solution for the long-term backup/retrieve operations
remains to be solved."

This module models exactly that regime and provides a heuristic answer:

* a workload is revealed in *epochs* (:func:`split_into_epochs`): each epoch
  brings new objects and the requests that reference them;
* tapes already written are immutable — rewriting tape is as expensive as
  the restore problem we are optimizing — so each epoch may only *append*
  into remaining free space;
* :class:`IncrementalParallelBatch` places epoch 0 with the full parallel
  batch scheme, then appends later epochs' objects **affinity-first**: a new
  object goes to the batch already holding most of its co-requested,
  already-placed peers, keeping each request's working set inside few
  batches even though placement decisions were made with partial knowledge;
* ``affinity=False`` degrades to the naive operator behaviour (fill free
  space in tape order), the natural baseline.

``benchmarks/bench_incremental.py`` (experiment A2 in DESIGN.md) measures
the cost of local knowledge: omniscient re-placement vs affinity-append vs
naive append.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..catalog import ObjectCatalog, Request, RequestSet
from ..hardware import ObjectExtent, SystemSpec, TapeId
from ..workload import Workload
from .base import PlacementError, PlacementResult
from .load_balance import TapeBin, zigzag_assign
from .parallel_batch import ParallelBatchPlacement

__all__ = [
    "Epoch",
    "split_into_epochs",
    "subset_workload",
    "IncrementalParallelBatch",
]


@dataclass(frozen=True)
class Epoch:
    """One reveal step of the workload."""

    index: int
    #: Objects first seen in this epoch (global ids).
    new_object_ids: Tuple[int, ...]
    #: Requests first submitted in this epoch (global request ids).
    new_request_ids: Tuple[int, ...]
    #: All requests known once this epoch has arrived.
    known_request_ids: Tuple[int, ...]


def split_into_epochs(workload: Workload, num_epochs: int) -> List[Epoch]:
    """Partition a workload into reveal epochs.

    Requests are dealt round-robin to epochs (epoch = request id mod n), an
    object belongs to the epoch of its earliest request, and objects
    referenced by no request are dealt round-robin as cold filler.
    """
    if num_epochs <= 0:
        raise ValueError(f"num_epochs must be positive, got {num_epochs}")
    n_obj = workload.num_objects
    first_epoch = np.full(n_obj, -1, dtype=np.int64)
    request_epoch: Dict[int, int] = {}
    for request in workload.requests:
        e = request.id % num_epochs
        request_epoch[request.id] = e
        for o in request.object_ids:
            if first_epoch[o] == -1 or e < first_epoch[o]:
                first_epoch[o] = e
    orphans = np.flatnonzero(first_epoch == -1)
    for i, o in enumerate(orphans):
        first_epoch[o] = i % num_epochs

    epochs: List[Epoch] = []
    known: List[int] = []
    for e in range(num_epochs):
        new_requests = tuple(r for r, ep in sorted(request_epoch.items()) if ep == e)
        known.extend(new_requests)
        epochs.append(
            Epoch(
                index=e,
                new_object_ids=tuple(int(o) for o in np.flatnonzero(first_epoch == e)),
                new_request_ids=new_requests,
                known_request_ids=tuple(known),
            )
        )
    return epochs


def subset_workload(
    workload: Workload,
    object_ids: Sequence[int],
    request_ids: Sequence[int],
) -> Tuple[Workload, np.ndarray]:
    """A self-contained sub-workload over ``object_ids`` / ``request_ids``.

    Returns ``(sub_workload, to_global)`` where ``to_global[local_id]`` maps
    the sub-catalog's dense ids back to the original catalog.  Requests are
    restricted to members inside ``object_ids``; requests left empty are
    dropped.
    """
    to_global = np.asarray(sorted(object_ids), dtype=np.int64)
    to_local = {int(g): i for i, g in enumerate(to_global)}
    sizes = np.asarray(workload.catalog.sizes_mb)[to_global]
    wanted = set(request_ids)
    requests: List[Request] = []
    for request in workload.requests:
        if request.id not in wanted:
            continue
        members = tuple(to_local[o] for o in request.object_ids if o in to_local)
        if members:
            requests.append(Request(request.id, members, request.probability))
    if not requests:
        raise ValueError("subset contains no usable requests")
    return Workload(ObjectCatalog(sizes), RequestSet(requests)), to_global


@dataclass
class IncrementalParallelBatch:
    """Epoch-by-epoch parallel batch placement with append-only tapes."""

    m: int = 4
    k: float = 0.9
    #: Route new objects to the batch of their already-placed co-requested
    #: peers; ``False`` = naive free-space fill in tape order.
    affinity: bool = True
    #: Fraction of each tape's usable capacity the epoch-0 placement leaves
    #: free for future arrivals.  Without headroom the initial placement
    #: packs its batches to ``k`` and affinity appends degenerate to naive
    #: (peers' batches are always full) — an operator provisioning an
    #: append-only archive reserves growth space up front.
    headroom: float = 0.35
    #: Scheme used for the initial (epoch-0) placement.
    base_scheme: Optional[ParallelBatchPlacement] = None

    def __post_init__(self) -> None:
        if not 0 <= self.headroom < 1:
            raise ValueError(f"headroom must be in [0, 1), got {self.headroom}")

    def place_incrementally(
        self, workload: Workload, epochs: Sequence[Epoch], spec: SystemSpec
    ) -> PlacementResult:
        """Replay all epochs; returns the final placement of every object."""
        if not epochs:
            raise ValueError("need at least one epoch")
        catalog = workload.catalog
        scheme = self.base_scheme or ParallelBatchPlacement(
            m=self.m, k=self.k * (1.0 - self.headroom)
        )

        # ---- epoch 0: full scheme on the visible sub-workload ----------
        first = epochs[0]
        sub, to_global = subset_workload(
            workload, first.new_object_ids, first.known_request_ids
        )
        base = scheme.place(sub, spec)

        # Re-key the epoch-0 layouts to global object ids and set up the
        # append state (object order per tape + used capacity).
        tape_objects: Dict[TapeId, List[int]] = {}
        used: Dict[TapeId, float] = {}
        for tid, extents in base.layouts.items():
            ordered = [int(to_global[e.object_id]) for e in extents]
            tape_objects[tid] = ordered
            used[tid] = sum(catalog.size_of(o) for o in ordered)

        batches: List[List[TapeId]] = [list(b) for b in base.metadata["batches"]]
        all_batches: List[List[TapeId]] = self._all_batches(spec)
        object_tape: Dict[int, TapeId] = {
            o: tid for tid, objs in tape_objects.items() for o in objs
        }

        # ---- later epochs: append-only placement ------------------------
        for epoch in epochs[1:]:
            self._append_epoch(
                workload, epoch, spec, catalog, tape_objects, used, all_batches,
                object_tape,
            )

        layouts = {
            tid: self._sequential_extents(objs, catalog)
            for tid, objs in tape_objects.items()
            if objs
        }
        priority = {
            tid: float(sum(catalog.probability_of(e.object_id) for e in extents))
            for tid, extents in layouts.items()
        }
        initial_mounts = {
            did: tid for did, tid in base.initial_mounts.items() if layouts.get(tid)
        }
        return PlacementResult(
            scheme=f"incremental_parallel_batch[{'affinity' if self.affinity else 'naive'}]",
            layouts=layouts,
            initial_mounts=initial_mounts,
            pinned=base.pinned,
            tape_priority=priority,
            metadata={
                "epochs": len(epochs),
                "m": self.m,
                "batches": batches,
                "affinity": self.affinity,
            },
        )

    # ------------------------------------------------------------------
    def _append_epoch(
        self,
        workload: Workload,
        epoch: Epoch,
        spec: SystemSpec,
        catalog: ObjectCatalog,
        tape_objects: Dict[TapeId, List[int]],
        used: Dict[TapeId, float],
        all_batches: List[List[TapeId]],
        object_tape: Dict[int, TapeId],
    ) -> None:
        """Append one epoch's new objects into remaining free space.

        The epoch's new objects are clustered among themselves with the
        same co-access machinery as epoch 0 (future requests will ask for
        them together), then each cluster is appended *whole* into one
        batch.  With ``affinity`` on, the preferred batch is the one
        holding most of the cluster's already-placed co-requested peers —
        provided it has room — otherwise the emptiest batch takes it
        (keeping the cluster united beats chasing full batches).
        """
        from .clustering import cluster_objects  # local: avoids cycle at import

        capacity = self.k * spec.library.tape.capacity_mb
        batch_of_tape: Dict[TapeId, int] = {
            tid: b for b, batch in enumerate(all_batches) for tid in batch
        }

        def batch_free(b: int) -> float:
            return sum(capacity - used.get(tid, 0.0) for tid in all_batches[b])

        # Cluster the epoch's new objects via its own requests.
        sub, to_global = subset_workload(
            workload, epoch.new_object_ids, epoch.new_request_ids
        )
        clustering = cluster_objects(
            sub, max_size_mb=capacity * len(all_batches[0]), detach_shared=True
        )
        groups: List[List[int]] = [
            [int(to_global[o]) for o in cluster.objects]
            for cluster in sorted(clustering, key=lambda c: -c.density)
        ]

        peer_votes = self._peer_batch_votes(
            workload, epoch, object_tape, batch_of_tape
        ) if self.affinity else {}

        for members in groups:
            size = catalog.total_size_mb(members)
            preferred: Optional[int] = None
            if self.affinity:
                tally: Dict[int, int] = {}
                for o in members:
                    for b, v in peer_votes.get(o, {}).items():
                        tally[b] = tally.get(b, 0) + v
                if tally:
                    preferred = max(tally, key=lambda b: (tally[b], -b))
                    if batch_free(preferred) < size:
                        preferred = None  # full: don't split the cluster for it
            if preferred is None:
                # Emptiest batch that can hold the whole cluster, else the
                # overall emptiest (the zig-zag overflow handles the rest).
                candidates = [b for b in range(len(all_batches)) if batch_free(b) >= size]
                pool = candidates or range(len(all_batches))
                preferred = max(pool, key=batch_free)

            order = [preferred] + [b for b in range(len(all_batches)) if b != preferred]
            remaining = members
            for b in order:
                if not remaining:
                    break
                bins = [
                    TapeBin(tid, capacity, used_mb=used.get(tid, 0.0), object_ids=[])
                    for tid in all_batches[b]
                ]
                remaining = zigzag_assign(remaining, catalog, bins)
                for tape_bin in bins:
                    if tape_bin.object_ids:
                        tape_objects.setdefault(tape_bin.tape_id, []).extend(
                            tape_bin.object_ids
                        )
                        used[tape_bin.tape_id] = tape_bin.used_mb
                        for o in tape_bin.object_ids:
                            object_tape[o] = tape_bin.tape_id
            if remaining:
                raise PlacementError(
                    f"epoch {epoch.index}: {len(remaining)} objects fit nowhere"
                )

    @staticmethod
    def _peer_batch_votes(
        workload: Workload,
        epoch: Epoch,
        object_tape: Dict[int, TapeId],
        batch_of_tape: Dict[TapeId, int],
    ) -> Dict[int, Dict[int, int]]:
        """For each new object: batch -> number of already-placed peers."""
        votes: Dict[int, Dict[int, int]] = {}
        new_set = set(epoch.new_object_ids)
        new_requests = set(epoch.new_request_ids)
        for request in workload.requests:
            if request.id not in new_requests:
                continue
            placed_batches = [
                batch_of_tape[object_tape[o]]
                for o in request.object_ids
                if o in object_tape and object_tape[o] in batch_of_tape
            ]
            if not placed_batches:
                continue
            counts = np.bincount(placed_batches)
            majority = int(counts.argmax())
            weight = int(counts.max())
            for o in request.object_ids:
                if o in new_set:
                    votes.setdefault(o, {}).setdefault(majority, 0)
                    votes[o][majority] += weight
        return votes

    @staticmethod
    def _sequential_extents(object_ids: List[int], catalog: ObjectCatalog) -> List[ObjectExtent]:
        """Append-only tapes keep arrival order (no re-alignment possible)."""
        extents: List[ObjectExtent] = []
        position = 0.0
        for o in object_ids:
            size = catalog.size_of(o)
            extents.append(ObjectExtent(o, position, size))
            position += size
        return extents

    def _all_batches(self, spec: SystemSpec) -> List[List[TapeId]]:
        return ParallelBatchPlacement(m=self.m, k=self.k)._batch_tapes(spec)
