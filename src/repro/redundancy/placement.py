"""Replicated and erasure-coded placement wrappers over the scheme registry.

TALICS3 (arXiv:2405.00003) simulates a tape-backed cloud tier whose
durability comes from cross-library redundancy, and Aktas & Soljanin
(arXiv:2312.10360) show the redundancy level (replicas vs erasure codes)
is the primary knob controlling access-load balance.  This module grafts
that knob onto the paper's placement schemes:

* :class:`ReplicatedPlacement` — run any registered base scheme, keep its
  layout as the primary copy, then spread ``r - 1`` full copies of every
  fragment over distinct tapes in rotated libraries;
* :class:`ErasureCodedPlacement` — re-layout every (whole) object as n
  stripes of ``size/k`` (any k reconstruct; see
  :mod:`repro.redundancy.coding`), round-robined across libraries;
* :class:`RedundantPlacementResult` — a :class:`PlacementResult` whose
  ``validate()`` swaps the paper's exactly-once accounting for
  redundancy-group rules: complete groups, distinct-tape / distinct-
  library anti-affinity, and per-member size consistency (geometry and
  mount checks are inherited unchanged).

At the degenerate settings (``r=1`` / ``k=n=1``) both wrappers pass the
base result through untouched apart from bookkeeping metadata, so seed
behavior is bit-identical to the unwrapped scheme — the regression anchor
pinned by ``tests/sim/test_opensystem.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple, Union

from ..hardware import ObjectExtent, SystemSpec, TapeId
from ..placement.base import PlacementError, PlacementResult, PlacementScheme
from ..workload import Workload

__all__ = [
    "RedundantPlacementResult",
    "ReplicatedPlacement",
    "ErasureCodedPlacement",
    "parse_redundancy",
    "wrap_scheme",
]


@dataclass
class RedundantPlacementResult(PlacementResult):
    """A placement whose objects live in any-``needed``-of-``replicas`` groups."""

    #: Redundancy-group size n (copies for replication, stripes for erasure).
    replicas: int = 1
    #: Members required per read (1 for replication, k for erasure).
    needed: int = 1
    mode: str = "replicated"

    def _check_objects(self, fragments: Dict[int, List], catalog, spec: SystemSpec) -> None:
        """Redundancy-group accounting replacing the exactly-once rule.

        Every object must carry ``parts x replicas`` extents — one member
        per (part, replica) — with each part's group on distinct tapes
        spanning ``min(replicas, num_libraries)`` libraries, and each
        member sized ``(object_size / parts) / needed``.
        """
        for object_id, entries in fragments.items():
            first = entries[0][1]
            parts, replicas, needed = first.parts, first.replicas, first.needed
            if replicas != self.replicas or needed != self.needed:
                raise PlacementError(
                    f"object {object_id}: extent declares "
                    f"{first.needed}/{first.replicas} redundancy, result says "
                    f"{self.needed}/{self.replicas}"
                )
            if any(
                e.parts != parts or e.replicas != replicas or e.needed != needed
                for _, e in entries
            ):
                raise PlacementError(
                    f"object {object_id}: inconsistent redundancy declarations"
                )
            if len(entries) != parts * replicas:
                raise PlacementError(
                    f"object {object_id}: {len(entries)} of {parts * replicas} "
                    "redundancy members placed"
                )
            member_size = (catalog.size_of(object_id) / parts) / needed
            groups: Dict[int, List[Tuple[TapeId, ObjectExtent]]] = {}
            for tape_id, extent in entries:
                groups.setdefault(extent.part, []).append((tape_id, extent))
            if sorted(groups) != list(range(parts)):
                raise PlacementError(
                    f"object {object_id}: duplicate or missing fragment parts"
                )
            for part, members in groups.items():
                if sorted(e.replica for _, e in members) != list(range(replicas)):
                    raise PlacementError(
                        f"object {object_id} part {part}: duplicate or missing "
                        "replica indices"
                    )
                tapes = {tape_id for tape_id, _ in members}
                if len(tapes) != len(members):
                    raise PlacementError(
                        f"object {object_id} part {part}: redundancy members "
                        "share a tape (distinct-tape anti-affinity violated)"
                    )
                libraries = {tape_id.library for tape_id in tapes}
                if len(libraries) < min(replicas, spec.num_libraries):
                    raise PlacementError(
                        f"object {object_id} part {part}: members span "
                        f"{len(libraries)} libraries, anti-affinity requires "
                        f"{min(replicas, spec.num_libraries)}"
                    )
                for _, extent in members:
                    if abs(extent.size_mb - member_size) > 1e-6:
                        raise PlacementError(
                            f"object {object_id} part {part} replica "
                            f"{extent.replica}: member size {extent.size_mb}, "
                            f"expected {member_size}"
                        )
        if len(fragments) != len(catalog):
            missing = len(catalog) - len(fragments)
            raise PlacementError(f"{missing} objects were not placed")


class _TapeCursors:
    """Append cursors + anti-affinity bookkeeping for redundancy members.

    Distinct-tape is tracked per *object* (``Tape.write_layout`` rejects
    the same object twice on one tape, parts included); distinct-library
    is tracked per ``(object, part)`` redundancy group — a striped base
    object may legitimately occupy every library, yet each part's copies
    must still fan out across libraries.
    """

    def __init__(
        self,
        spec: SystemSpec,
        layouts: Dict[TapeId, List[ObjectExtent]],
        replicas: int,
    ) -> None:
        self.capacity = spec.library.tape.capacity_mb
        self.num_libraries = spec.num_libraries
        #: Libraries each redundancy group must span (the validate() rule).
        self.span = min(replicas, spec.num_libraries)
        self.used: Dict[TapeId, float] = {}
        self.object_tapes: Dict[int, set] = {}
        self.group_libraries: Dict[Tuple[int, int], set] = {}
        self.by_library: List[List[TapeId]] = [
            [TapeId(lib, slot) for slot in range(spec.library.num_tapes)]
            for lib in range(spec.num_libraries)
        ]
        for tape_id, extents in layouts.items():
            self.used[tape_id] = max((e.end_mb for e in extents), default=0.0)
            for extent in extents:
                self.note(extent.object_id, extent.part, tape_id)

    def note(self, object_id: int, part: int, tape_id: TapeId) -> None:
        self.object_tapes.setdefault(object_id, set()).add(tape_id)
        self.group_libraries.setdefault((object_id, part), set()).add(tape_id.library)

    def choose(
        self, object_id: int, part: int, size_mb: float, start_library: int
    ) -> TapeId:
        """Least-used tape with room, rotating libraries from ``start_library``.

        While the (object, part) group has not yet spanned ``span``
        libraries, only libraries new to the group are admissible — a
        same-library fallback would silently void the anti-affinity that
        ``validate()`` enforces, so exhaustion raises instead.
        """
        taken_tapes = self.object_tapes.get(object_id, set())
        group_libs = self.group_libraries.get((object_id, part), set())
        rotation = [
            (start_library + i) % self.num_libraries
            for i in range(self.num_libraries)
        ]
        fresh = [lib for lib in rotation if lib not in group_libs]
        must_spread = len(group_libs) < self.span
        ordering = fresh if must_spread else fresh + [
            lib for lib in rotation if lib in group_libs
        ]
        for library in ordering:
            candidates = [
                tid
                for tid in self.by_library[library]
                if tid not in taken_tapes
                and self.used.get(tid, 0.0) + size_mb <= self.capacity + 1e-9
            ]
            if candidates:
                return min(candidates, key=lambda tid: (self.used.get(tid, 0.0), tid.slot))
        raise PlacementError(
            f"no tape can hold a {size_mb:.0f} MB redundancy member of object "
            f"{object_id} part {part} (capacity exhausted or distinct-library "
            "anti-affinity unsatisfiable)"
        )

    def append(self, object_id: int, tape_id: TapeId, extent_kwargs: dict) -> ObjectExtent:
        start = self.used.get(tape_id, 0.0)
        extent = ObjectExtent(start_mb=start, **extent_kwargs)
        self.used[tape_id] = extent.end_mb
        self.note(object_id, extent.part, tape_id)
        return extent


def _ordered_extents(layouts: Dict[TapeId, List[ObjectExtent]]) -> List[Tuple[TapeId, ObjectExtent]]:
    """Base extents largest-first (ties by tape/position) — LPT packing.

    Redundancy members are appended to least-used tapes; placing the big
    extents while empty tapes remain keeps every later, smaller member
    packable even when per-tape free space has been leveled below the
    largest extent size.
    """
    out: List[Tuple[TapeId, ObjectExtent]] = []
    for tape_id in sorted(layouts):
        for extent in sorted(layouts[tape_id], key=lambda e: e.start_mb):
            out.append((tape_id, extent))
    out.sort(key=lambda te: (-te[1].size_mb, te[0], te[1].start_mb))
    return out


class ReplicatedPlacement(PlacementScheme):
    """r full copies of every fragment, anti-affine across tapes/libraries.

    The base scheme's layout is kept verbatim as the primary copy (replica
    0) — its batch structure, pinned drives, and initial mounts carry over
    — and each further copy of a fragment is appended to the least-used
    admissible tape of a rotated library.  ``r=1`` is an exact
    pass-through of the base result.

    ``migrate_epochs > 0`` first applies popularity-driven hot/cold
    migration (see :mod:`repro.redundancy.migration`) to the base layout.
    """

    name = "replicated"

    def __init__(
        self,
        base: Union[str, PlacementScheme] = "parallel_batch",
        r: int = 2,
        migrate_epochs: int = 0,
        **base_kwargs,
    ) -> None:
        if int(r) < 1:
            raise ValueError(f"replication factor r must be >= 1, got {r}")
        if int(migrate_epochs) < 0:
            raise ValueError(f"migrate_epochs must be >= 0, got {migrate_epochs}")
        self.base = base
        self.r = int(r)
        self.migrate_epochs = int(migrate_epochs)
        self.base_kwargs = dict(base_kwargs)

    def _base_scheme(self) -> PlacementScheme:
        if isinstance(self.base, PlacementScheme):
            if self.base_kwargs:
                raise ValueError("base_kwargs only apply to a base scheme *name*")
            return self.base
        from ..placement.registry import make_scheme

        return make_scheme(self.base, **self.base_kwargs)

    def place(self, workload: Workload, spec: SystemSpec) -> PlacementResult:
        base = self._base_scheme().place(workload, spec)
        if self.migrate_epochs:
            from .migration import migrate_by_popularity

            base, _ = migrate_by_popularity(
                base, workload, spec, num_epochs=self.migrate_epochs
            )
        label = f"replicated[{base.scheme},r={self.r}]"
        if self.r == 1:
            return _passthrough(base, label, replicas=1, needed=1, mode="replicated")

        catalog = workload.catalog
        r = self.r
        layouts: Dict[TapeId, List[ObjectExtent]] = {
            tid: [
                replace(e, replica=0, replicas=r, needed=1)
                for e in sorted(extents, key=lambda ext: ext.start_mb)
            ]
            for tid, extents in base.layouts.items()
        }
        cursors = _TapeCursors(spec, layouts, replicas=r)
        for copy in range(1, r):
            for primary_tape, extent in _ordered_extents(base.layouts):
                target = cursors.choose(
                    extent.object_id,
                    extent.part,
                    extent.size_mb,
                    start_library=(primary_tape.library + copy) % spec.num_libraries,
                )
                placed = cursors.append(
                    extent.object_id,
                    target,
                    dict(
                        object_id=extent.object_id,
                        size_mb=extent.size_mb,
                        part=extent.part,
                        parts=extent.parts,
                        replica=copy,
                        replicas=r,
                        needed=1,
                    ),
                )
                layouts.setdefault(target, []).append(placed)

        tape_priority = _member_priorities(layouts, catalog)
        metadata = dict(base.metadata)
        metadata["redundancy"] = {"mode": "replicated", "r": r, "base": base.scheme}
        return RedundantPlacementResult(
            scheme=label,
            layouts=layouts,
            initial_mounts=dict(base.initial_mounts),
            pinned=base.pinned,
            tape_priority=tape_priority,
            metadata=metadata,
            replicas=r,
            needed=1,
            mode="replicated",
        )


class ErasureCodedPlacement(PlacementScheme):
    """k-of-n erasure-coded layout: n stripes of ``size/k`` per object.

    The base scheme fixes each object's *primary library* (locality
    intent); the n stripes then round-robin across libraries starting
    there, least-used admissible tape within each.  Requires a whole-object
    base layout (erasure over striped fragments is not modeled).
    ``k=n=1`` is an exact pass-through of the base result.
    """

    name = "erasure"

    def __init__(
        self,
        base: Union[str, PlacementScheme] = "parallel_batch",
        k: int = 4,
        n: int = 6,
        **base_kwargs,
    ) -> None:
        k, n = int(k), int(n)
        if not 1 <= k <= n:
            raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
        if n > 255:
            raise ValueError(f"n must be <= 255 (GF(256) code), got {n}")
        self.base = base
        self.k = k
        self.n = n
        self.base_kwargs = dict(base_kwargs)

    def _base_scheme(self) -> PlacementScheme:
        if isinstance(self.base, PlacementScheme):
            if self.base_kwargs:
                raise ValueError("base_kwargs only apply to a base scheme *name*")
            return self.base
        from ..placement.registry import make_scheme

        return make_scheme(self.base, **self.base_kwargs)

    def place(self, workload: Workload, spec: SystemSpec) -> PlacementResult:
        base = self._base_scheme().place(workload, spec)
        label = f"erasure[{base.scheme},k={self.k},n={self.n}]"
        if self.k == 1 and self.n == 1:
            return _passthrough(base, label, replicas=1, needed=1, mode="erasure")
        if any(e.parts > 1 for extents in base.layouts.values() for e in extents):
            raise PlacementError(
                "erasure coding requires a whole-object base layout "
                f"(base scheme {base.scheme!r} produced striped fragments)"
            )

        catalog = workload.catalog
        k, n = self.k, self.n
        layouts: Dict[TapeId, List[ObjectExtent]] = {}
        cursors = _TapeCursors(spec, layouts, replicas=n)
        for primary_tape, extent in _ordered_extents(base.layouts):
            stripe_mb = extent.size_mb / k
            for stripe in range(n):
                target = cursors.choose(
                    extent.object_id,
                    0,
                    stripe_mb,
                    start_library=(primary_tape.library + stripe) % spec.num_libraries,
                )
                placed = cursors.append(
                    extent.object_id,
                    target,
                    dict(
                        object_id=extent.object_id,
                        size_mb=stripe_mb,
                        replica=stripe,
                        replicas=n,
                        needed=k,
                    ),
                )
                layouts.setdefault(target, []).append(placed)

        tape_priority = _member_priorities(layouts, catalog)
        initial_mounts = PlacementScheme.default_initial_mounts(
            layouts, tape_priority, spec
        )
        metadata = dict(base.metadata)
        metadata["redundancy"] = {
            "mode": "erasure",
            "k": k,
            "n": n,
            "base": base.scheme,
        }
        return RedundantPlacementResult(
            scheme=label,
            layouts=layouts,
            initial_mounts=initial_mounts,
            pinned=frozenset(),
            tape_priority=tape_priority,
            metadata=metadata,
            replicas=n,
            needed=k,
            mode="erasure",
        )


def _passthrough(
    base: PlacementResult, label: str, replicas: int, needed: int, mode: str
) -> RedundantPlacementResult:
    """Degenerate wrap: the base layout verbatim, redundancy bookkeeping only.

    Extents are shared (``replicas == 1`` already), so the location index,
    dispatch, and every simulated timing are bit-identical to the base
    scheme — only the scheme label and metadata record the wrapper.
    """
    metadata = dict(base.metadata)
    metadata["redundancy"] = {"mode": mode, "r": replicas, "base": base.scheme}
    return RedundantPlacementResult(
        scheme=label,
        layouts=base.layouts,
        initial_mounts=base.initial_mounts,
        pinned=base.pinned,
        tape_priority=base.tape_priority,
        metadata=metadata,
        replicas=replicas,
        needed=needed,
        mode=mode,
    )


def _member_priorities(
    layouts: Dict[TapeId, List[ObjectExtent]], catalog
) -> Dict[TapeId, float]:
    """Replacement-policy weights with access mass split across members.

    Choice-of-d spreads a fragment's reads over its group, so each member
    carries ``probability x size_share / replicas`` — the fractional
    weighting striping already uses, divided again by the group size.
    """
    return {
        tid: float(
            sum(
                catalog.probability_of(e.object_id)
                * (e.size_mb / catalog.size_of(e.object_id))
                / e.replicas
                for e in extents
            )
        )
        for tid, extents in layouts.items()
        if extents
    }


def parse_redundancy(text: str) -> Dict[str, int]:
    """Parse a ``--redundancy`` spec: ``r=2`` or ``k=4,n=6``.

    Returns ``{"mode": "replicated", "r": ...}`` or
    ``{"mode": "erasure", "k": ..., "n": ...}``; raises ``ValueError`` on
    anything else.
    """
    fields: Dict[str, int] = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        key, sep, value = item.partition("=")
        key = key.strip().lower()
        if not sep or key not in ("r", "k", "n"):
            raise ValueError(
                f"bad redundancy spec {text!r}: expected 'r=<int>' or 'k=<int>,n=<int>'"
            )
        try:
            fields[key] = int(value)
        except ValueError:
            raise ValueError(
                f"bad redundancy spec {text!r}: {value!r} is not an integer"
            ) from None
    if set(fields) == {"r"}:
        if fields["r"] < 1:
            raise ValueError(f"bad redundancy spec {text!r}: r must be >= 1")
        return {"mode": "replicated", "r": fields["r"]}
    if set(fields) == {"k", "n"}:
        if not 1 <= fields["k"] <= fields["n"]:
            raise ValueError(f"bad redundancy spec {text!r}: need 1 <= k <= n")
        return {"mode": "erasure", "k": fields["k"], "n": fields["n"]}
    raise ValueError(
        f"bad redundancy spec {text!r}: expected 'r=<int>' or 'k=<int>,n=<int>'"
    )


def wrap_scheme(scheme: PlacementScheme, redundancy: str) -> PlacementScheme:
    """Wrap a constructed scheme per a ``--redundancy`` spec string."""
    parsed = parse_redundancy(redundancy)
    if parsed["mode"] == "replicated":
        return ReplicatedPlacement(base=scheme, r=parsed["r"])
    return ErasureCodedPlacement(base=scheme, k=parsed["k"], n=parsed["n"])
