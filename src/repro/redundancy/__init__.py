"""Cloud-archive redundancy: replication, erasure coding, and migration.

The paper's placement schemes store every object exactly once; this
package layers cloud-archive durability on top of them (cf. TALICS3,
arXiv:2405.00003):

* :mod:`~repro.redundancy.placement` — ``ReplicatedPlacement`` /
  ``ErasureCodedPlacement`` wrappers and the redundancy-aware
  ``RedundantPlacementResult.validate()``;
* :mod:`~repro.redundancy.coding` — the actual GF(256) systematic
  Reed-Solomon k-of-n code backing the erasure geometry;
* :mod:`~repro.redundancy.dispatch` — choice-of-d member selection used
  by the open-system engine to route around failed drives;
* :mod:`~repro.redundancy.migration` — popularity-driven hot/cold
  migration over reveal epochs.

Registered scheme names: ``replicated`` and ``erasure`` (see
:func:`repro.placement.make_scheme`); CLI spec strings like ``r=2`` or
``k=4,n=6`` parse via :func:`parse_redundancy` / :func:`wrap_scheme`.
"""

from .coding import decode_stripes, encode_stripes, stripe_size
from .dispatch import count_fallbacks, select_members
from .migration import MigrationReport, migrate_by_popularity
from .placement import (
    ErasureCodedPlacement,
    RedundantPlacementResult,
    ReplicatedPlacement,
    parse_redundancy,
    wrap_scheme,
)

__all__ = [
    "RedundantPlacementResult",
    "ReplicatedPlacement",
    "ErasureCodedPlacement",
    "parse_redundancy",
    "wrap_scheme",
    "encode_stripes",
    "decode_stripes",
    "stripe_size",
    "select_members",
    "count_fallbacks",
    "MigrationReport",
    "migrate_by_popularity",
]
