"""Popularity-driven migration between the hot (batch-0) and cold tiers.

Archive workloads drift: the objects worth keeping on always-mounted
tapes in month one are not the ones worth keeping in month six.  This
module replays that drift over the *reveal epochs* of
:mod:`repro.placement.incremental`: the workload is split into epochs,
and at each epoch boundary the hot tier (the placement's pinned batch-0
tapes) is re-targeted at the objects most requested in that epoch —
promoting newly hot objects in, demoting cooled-off ones out.

The simulator runs a single static placement, so migration is applied as
a *pre-pass*: the returned result is the layout the archive would hold
after the final epoch's reshuffle, with promotion/demotion counts
reported for diagnostics.  Only whole-object, non-redundant layouts are
migrated (the redundancy wrappers replicate *after* migration).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

from ..hardware import ObjectExtent, SystemSpec, TapeId
from ..placement.base import PlacementError, PlacementResult
from ..placement.incremental import split_into_epochs
from ..workload import Workload

__all__ = ["MigrationReport", "migrate_by_popularity"]


@dataclass(frozen=True)
class MigrationReport:
    """What the epoch replay did to the hot tier."""

    num_epochs: int
    promotions: int
    demotions: int
    hot_tapes: Tuple[TapeId, ...]

    @property
    def churn(self) -> int:
        return self.promotions + self.demotions


def migrate_by_popularity(
    result: PlacementResult,
    workload: Workload,
    spec: SystemSpec,
    num_epochs: int,
    lost_tapes: Optional[Set[TapeId]] = None,
) -> Tuple[PlacementResult, MigrationReport]:
    """Replay epoch-by-epoch hot/cold migration over ``result``.

    Returns the post-migration placement and a :class:`MigrationReport`.
    With fewer than two epochs (or a placement without a pinned hot tier)
    the input is returned unchanged.

    ``lost_tapes`` marks cartridges destroyed by media failure: they are
    never a migration target (neither for promoted hot objects nor for
    demotions/spills), their capacity is excluded from the hot tier, and
    objects whose only extent sat on one are dropped from the migrated
    layout — migrating data *onto* dead media would silently un-lose it.
    """
    lost_tapes = set(lost_tapes or ())
    hot_tapes = tuple(sorted(t for t in result.pinned if t not in lost_tapes))
    if num_epochs <= 1 or not hot_tapes:
        return result, MigrationReport(num_epochs, 0, 0, hot_tapes)
    for extents in result.layouts.values():
        for extent in extents:
            if extent.parts > 1 or extent.replicas > 1:
                raise PlacementError(
                    "popularity migration requires a whole-object, "
                    "non-redundant base layout"
                )

    catalog = workload.catalog
    tape_of: Dict[int, TapeId] = {}
    for tape_id, extents in result.layouts.items():
        if tape_id in lost_tapes:
            continue
        for extent in extents:
            tape_of[extent.object_id] = tape_id
    hot_set: Set[int] = {
        oid for oid, tid in tape_of.items() if tid in set(hot_tapes)
    }
    hot_capacity = len(hot_tapes) * spec.library.tape.capacity_mb

    requests_by_id = {request.id: request for request in workload.requests}
    epochs = split_into_epochs(workload, num_epochs)
    promotions = demotions = 0
    for epoch in epochs:
        counts: Dict[int, int] = {}
        for rid in epoch.new_request_ids:
            for oid in requests_by_id[rid].object_ids:
                if oid in tape_of:  # objects on lost media cannot migrate
                    counts[oid] = counts.get(oid, 0) + 1
        if not counts:
            continue
        # Desired hot set: this epoch's most-requested objects, greedily
        # packed into the hot tier's capacity (ties broken by global
        # popularity, then id, for determinism).
        ranked = sorted(
            counts,
            key=lambda oid: (-counts[oid], -catalog.probability_of(oid), oid),
        )
        desired: Set[int] = set()
        used = 0.0
        for oid in ranked:
            size = catalog.size_of(oid)
            if used + size <= hot_capacity + 1e-9:
                desired.add(oid)
                used += size
        # Objects already hot but unseen this epoch keep their slot while
        # space remains — migration evicts only to make room.
        for oid in sorted(hot_set - set(counts), key=lambda o: (-catalog.probability_of(o), o)):
            size = catalog.size_of(oid)
            if used + size <= hot_capacity + 1e-9:
                desired.add(oid)
                used += size
        promotions += len(desired - hot_set)
        demotions += len(hot_set - desired)
        hot_set = desired

    new_layouts, spilled = _rebuild_layouts(
        result, catalog, spec, hot_tapes, hot_set, tape_of, lost_tapes
    )
    tape_priority = {
        tid: float(sum(catalog.probability_of(e.object_id) for e in extents))
        for tid, extents in new_layouts.items()
        if extents
    }
    migrated = replace(
        result,
        layouts=new_layouts,
        tape_priority=tape_priority,
        metadata={
            **result.metadata,
            "migration": {
                "num_epochs": num_epochs,
                "promotions": promotions,
                "demotions": demotions,
                "spilled": spilled,
            },
        },
    )
    return migrated, MigrationReport(num_epochs, promotions, demotions, hot_tapes)


def _rebuild_layouts(
    result: PlacementResult,
    catalog,
    spec: SystemSpec,
    hot_tapes: Tuple[TapeId, ...],
    hot_set: Set[int],
    tape_of: Dict[int, TapeId],
    lost_tapes: Set[TapeId],
) -> Tuple[Dict[TapeId, List[ObjectExtent]], int]:
    """Re-pack every tape for the final hot set.

    Hot objects fill the pinned tapes most-popular-first (least-used tape
    each time); every other tape keeps its surviving objects in original
    order, with demoted objects appended to the cold tape with most room.
    The capacity-sum hot-set selection is not bin-aware, so hot objects
    that fit no single pinned tape spill to the cold tier (counted in the
    second return value) rather than failing the placement.
    """
    capacity = spec.library.tape.capacity_mb
    extents_of = {
        e.object_id: e for extents in result.layouts.values() for e in extents
    }
    hot_tape_set = set(hot_tapes)

    placement: Dict[TapeId, List[int]] = {tid: [] for tid in result.layouts}
    used: Dict[TapeId, float] = {tid: 0.0 for tid in result.layouts}
    # Cold tapes keep their stayers in original extent order.  Lost tapes
    # contribute nothing and receive nothing: their migrated layout is
    # empty.
    for tape_id, extents in result.layouts.items():
        if tape_id in hot_tape_set or tape_id in lost_tapes:
            continue
        for extent in sorted(extents, key=lambda e: e.start_mb):
            if extent.object_id not in hot_set:
                placement[tape_id].append(extent.object_id)
                used[tape_id] += extent.size_mb
    # Hot objects pack the pinned tapes, most popular first (largest-first
    # within equal popularity would over-complicate; spills handle misfits).
    spilled: List[int] = []
    for oid in sorted(hot_set, key=lambda o: (-catalog.probability_of(o), o)):
        size = catalog.size_of(oid)
        candidates = [
            tid for tid in hot_tapes if used[tid] + size <= capacity + 1e-9
        ]
        if not candidates:
            spilled.append(oid)
            continue
        target = min(candidates, key=lambda tid: (used[tid], tid.slot))
        placement[target].append(oid)
        used[target] += size
    # Demoted objects (were hot, now cold) and spills go to the roomiest
    # cold tape.
    demoted = [
        oid
        for oid, tid in sorted(tape_of.items())
        if tid in hot_tape_set and oid not in hot_set
    ] + spilled
    cold_tapes = [
        tid
        for tid in sorted(result.layouts)
        if tid not in hot_tape_set and tid not in lost_tapes
    ]
    for oid in demoted:
        size = catalog.size_of(oid)
        candidates = [
            tid for tid in cold_tapes if used[tid] + size <= capacity + 1e-9
        ]
        if not candidates:
            raise PlacementError(
                f"cold tier overflow migrating object {oid} ({size:.0f} MB)"
            )
        target = min(candidates, key=lambda tid: (used[tid], tid.slot))
        placement[target].append(oid)
        used[target] += size

    new_layouts: Dict[TapeId, List[ObjectExtent]] = {}
    for tape_id, object_ids in placement.items():
        cursor = 0.0
        extents: List[ObjectExtent] = []
        for oid in object_ids:
            extent = replace(extents_of[oid], start_mb=cursor)
            extents.append(extent)
            cursor = extent.end_mb
        new_layouts[tape_id] = extents
    return new_layouts, len(spilled)
