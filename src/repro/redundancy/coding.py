"""Systematic k-of-n Reed-Solomon coding over GF(256).

The placement layer only needs the *geometry* of a k-of-n code (n stripes
of ``size/k``, any k reconstruct), but the durability claims of the A12
experiment rest on the code actually being MDS — so this module implements
the real thing and the property tests decode from every k-subset.

Construction: a Vandermonde matrix over GF(2^8) (any k rows independent)
is normalized so its top k x k block is the identity, giving a systematic
code — stripes ``0..k-1`` are the data split verbatim, stripes ``k..n-1``
are parity.  Decoding from any k stripes inverts the corresponding k rows
by Gaussian elimination.  Sizes are limited to ``n <= 255`` (the field's
nonzero-element count), far beyond any realistic tape redundancy level.
"""

from __future__ import annotations

from typing import Dict, List, Mapping

import numpy as np

__all__ = ["encode_stripes", "decode_stripes", "stripe_size"]

#: GF(2^8) log/antilog tables for the AES-adjacent primitive polynomial
#: x^8 + x^4 + x^3 + x^2 + 1 (0x11d), generator 2.
_EXP = np.zeros(512, dtype=np.uint8)
_LOG = np.zeros(256, dtype=np.int32)
_x = 1
for _i in range(255):
    _EXP[_i] = _x
    _LOG[_x] = _i
    _x <<= 1
    if _x & 0x100:
        _x ^= 0x11D
_EXP[255:510] = _EXP[:255]


def _gf_mul(a: int, b: int) -> int:
    if a == 0 or b == 0:
        return 0
    return int(_EXP[_LOG[a] + _LOG[b]])


def _gf_inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("no inverse of 0 in GF(256)")
    return int(_EXP[255 - _LOG[a]])


def _gf_mul_vec(c: int, v: np.ndarray) -> np.ndarray:
    """Scalar-by-vector product over GF(256)."""
    if c == 0:
        return np.zeros_like(v)
    if c == 1:
        return v.copy()
    out = _EXP[_LOG[c] + _LOG[np.maximum(v, 1)]]
    out[v == 0] = 0
    return out


def _matmul(matrix: List[List[int]], stripes: np.ndarray) -> np.ndarray:
    """(rows x k) GF matrix applied to k byte-stripes; returns rows stripes."""
    rows = len(matrix)
    out = np.zeros((rows, stripes.shape[1]), dtype=np.uint8)
    for i, row in enumerate(matrix):
        acc = np.zeros(stripes.shape[1], dtype=np.uint8)
        for j, coeff in enumerate(row):
            if coeff:
                acc ^= _gf_mul_vec(coeff, stripes[j])
        out[i] = acc
    return out


def _invert(matrix: List[List[int]]) -> List[List[int]]:
    """Invert a k x k GF(256) matrix by Gauss-Jordan elimination."""
    k = len(matrix)
    aug = [list(row) + [1 if i == j else 0 for j in range(k)] for i, row in enumerate(matrix)]
    for col in range(k):
        pivot = next((r for r in range(col, k) if aug[r][col]), None)
        if pivot is None:
            raise ValueError("singular matrix: stripes do not span the data")
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv_p = _gf_inv(aug[col][col])
        aug[col] = [_gf_mul(v, inv_p) for v in aug[col]]
        for r in range(k):
            if r != col and aug[r][col]:
                factor = aug[r][col]
                aug[r] = [v ^ _gf_mul(factor, p) for v, p in zip(aug[r], aug[col])]
    return [row[k:] for row in aug]


def _encoding_matrix(k: int, n: int) -> List[List[int]]:
    """Systematic n x k generator: identity on top, MDS parity below."""
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if n > 255:
        raise ValueError(f"n must be <= 255 over GF(256), got {n}")
    vandermonde = [[_pow(i + 1, j) for j in range(k)] for i in range(n)]
    top_inv = _invert([row[:] for row in vandermonde[:k]])
    return [
        [_dot(row, [top_inv[t][j] for t in range(k)]) for j in range(k)]
        for row in vandermonde
    ]


def _pow(base: int, exp: int) -> int:
    result = 1
    for _ in range(exp):
        result = _gf_mul(result, base)
    return result


def _dot(a: List[int], b: List[int]) -> int:
    acc = 0
    for x, y in zip(a, b):
        acc ^= _gf_mul(x, y)
    return acc


def stripe_size(size: int, k: int) -> int:
    """Bytes per stripe when ``size`` bytes are split k ways (zero-padded)."""
    return (size + k - 1) // k if size else 0


def encode_stripes(data: bytes, k: int, n: int) -> Dict[int, bytes]:
    """Encode ``data`` into n stripes of which any k reconstruct it.

    Stripes ``0..k-1`` carry the (zero-padded) data split verbatim;
    ``k..n-1`` are Reed-Solomon parity.  Returns stripe index -> payload.
    """
    matrix = _encoding_matrix(k, n)
    width = stripe_size(len(data), k)
    padded = np.frombuffer(data.ljust(k * width, b"\0"), dtype=np.uint8)
    source = padded.reshape(k, width) if width else np.zeros((k, 0), dtype=np.uint8)
    encoded = _matmul(matrix, source)
    return {i: encoded[i].tobytes() for i in range(n)}


def decode_stripes(stripes: Mapping[int, bytes], k: int, n: int, size: int) -> bytes:
    """Reconstruct the original ``size`` bytes from any k of the n stripes.

    ``stripes`` maps stripe index -> payload; exactly k entries are used
    (extras are ignored deterministically, lowest indices first).  Raises
    ``ValueError`` when fewer than k distinct stripes are supplied.
    """
    if len(stripes) < k:
        raise ValueError(f"need {k} stripes to decode, got {len(stripes)}")
    matrix = _encoding_matrix(k, n)
    chosen = sorted(stripes)[:k]
    if any(not 0 <= i < n for i in chosen):
        raise ValueError(f"stripe indices out of range for n={n}: {chosen}")
    width = stripe_size(size, k)
    rows = np.zeros((k, width), dtype=np.uint8)
    for slot, index in enumerate(chosen):
        payload = np.frombuffer(stripes[index], dtype=np.uint8)
        if len(payload) != width:
            raise ValueError(
                f"stripe {index} holds {len(payload)} bytes, expected {width}"
            )
        rows[slot] = payload
    inverse = _invert([matrix[i] for i in chosen])
    data = _matmul(inverse, rows).reshape(-1)
    return data.tobytes()[:size]
