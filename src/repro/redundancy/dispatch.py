"""Choice-of-d member selection for redundant requests.

The open-system dispatcher resolves each request fragment to a
:class:`~repro.catalog.RedundancyGroup` and must pick ``needed`` of its
``replicas`` members to actually read.  The policy here is the classic
power-of-d-choices rule restricted to *live* libraries: among members not
yet excluded (tapes that already failed to serve this request), prefer
live ones ordered by current dispatcher load, breaking ties by replica
index for determinism.

Dead members are deliberately *not* filtered out — when fewer than
``needed`` live members remain, the selection is padded with dead ones so
the submission flows into the failed library's dispatcher and triggers the
exact abort bookkeeping a non-redundant run would produce.  The serve loop
then excludes those tapes and retries, so a request only aborts once every
member has been exhausted.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set, Tuple

from ..catalog import RedundancyGroup
from ..hardware import TapeId, ObjectExtent

__all__ = ["select_members", "count_fallbacks"]

Member = Tuple[TapeId, ObjectExtent]


def select_members(
    group: RedundancyGroup,
    excluded: Set[TapeId],
    is_live: Callable[[TapeId], bool],
    load_of: Callable[[TapeId], float],
    cost_of: Optional[Callable[[TapeId, ObjectExtent], Tuple[float, ...]]] = None,
) -> Optional[List[Member]]:
    """Pick ``group.needed`` members to read, or ``None`` if unservable.

    ``excluded`` holds tapes that already failed this request (their
    submissions aborted); ``is_live`` and ``load_of`` query the library
    dispatchers.  Live members are preferred least-loaded-first; dead
    members pad the tail only when live ones cannot cover ``needed``.

    When ``cost_of`` is given (the ``cheapest`` read-selection mode),
    live members are instead ordered by its per-member cost key —
    typically (is-the-tape-mounted, estimated drive seconds) — so
    degraded reads pick the cheapest live members rather than merely the
    least-loaded libraries.  The default ``cost_of=None`` path is
    byte-identical to the historical behavior.
    """
    candidates = [m for m in group.members if m[0] not in excluded]
    if len(candidates) < group.needed:
        return None
    live = [m for m in candidates if is_live(m[0])]
    dead = [m for m in candidates if not is_live(m[0])]
    if cost_of is None:
        live.sort(key=lambda m: (load_of(m[0]), m[1].replica))
    else:
        live.sort(key=lambda m: (cost_of(m[0], m[1]), m[1].replica))
    dead.sort(key=lambda m: m[1].replica)
    return (live + dead)[: group.needed]


def count_fallbacks(chosen: List[Member], needed: int) -> int:
    """Members read from outside the primary set (replica >= ``needed``)."""
    return sum(1 for _, extent in chosen if extent.replica >= needed)
