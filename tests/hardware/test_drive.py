"""Tests for TapeDrive mount state and timing math."""

import pytest

from repro.hardware import DriveId, DriveSpec, Tape, TapeDrive, TapeId, TapeSpec


@pytest.fixture
def tape_spec():
    # 1000 MB tape that takes 10 s to traverse -> locate rate 100 MB/s
    return TapeSpec(capacity_mb=1000, max_rewind_s=10)


@pytest.fixture
def drive(tape_spec):
    # 10 MB/s transfer so times are easy to read
    return TapeDrive(DriveId(0, 0), DriveSpec(transfer_rate_mb_s=10), tape_spec)


@pytest.fixture
def tape(tape_spec):
    t = Tape(TapeId(0, 0), tape_spec)
    t.append_object(1, 100)  # [0, 100)
    t.append_object(2, 200)  # [100, 300)
    t.append_object(3, 100)  # [300, 400)
    return t


class TestMountState:
    def test_mount_sets_head_to_bot(self, drive, tape):
        tape.head_mb = 123.0
        drive.mount(tape)
        assert drive.mounted is tape
        assert tape.head_mb == 0.0

    def test_double_mount_rejected(self, drive, tape, tape_spec):
        drive.mount(tape)
        other = Tape(TapeId(0, 1), tape_spec)
        with pytest.raises(RuntimeError):
            drive.mount(other)

    def test_unmount_returns_rewound_tape(self, drive, tape):
        drive.mount(tape)
        tape.head_mb = 300.0
        out = drive.unmount()
        assert out is tape
        assert out.head_mb == 0.0
        assert drive.is_empty

    def test_unmount_empty_rejected(self, drive):
        with pytest.raises(RuntimeError):
            drive.unmount()


class TestTiming:
    def test_read_extent_from_bot(self, drive, tape):
        drive.mount(tape)
        seek, transfer = drive.read_extent(tape.extent_of(2))
        assert seek == pytest.approx(1.0)  # 100 MB at 100 MB/s
        assert transfer == pytest.approx(20.0)  # 200 MB at 10 MB/s
        assert tape.head_mb == 300.0

    def test_consecutive_reads_have_zero_seek(self, drive, tape):
        drive.mount(tape)
        drive.read_extent(tape.extent_of(2))  # head at 300
        seek, _ = drive.read_extent(tape.extent_of(3))  # starts at 300
        assert seek == 0.0

    def test_backward_seek_costs_same_as_forward(self, drive, tape):
        drive.mount(tape)
        tape.head_mb = 400.0
        seek, _ = drive.read_extent(tape.extent_of(1))  # back to 0
        assert seek == pytest.approx(4.0)

    def test_rewind_time_proportional_to_position(self, drive, tape):
        drive.mount(tape)
        tape.head_mb = 500.0
        assert drive.rewind_time() == pytest.approx(5.0)
        tape.head_mb = 0.0
        assert drive.rewind_time() == 0.0

    def test_timing_calls_require_mounted_tape(self, drive, tape):
        with pytest.raises(RuntimeError):
            drive.rewind_time()
        with pytest.raises(RuntimeError):
            drive.read_extent(tape.extent_of(1))

    def test_load_unload_defaults(self, drive):
        assert drive.load_time == 19.0
        assert drive.unload_time == 19.0

    def test_seek_time_to_does_not_move_head(self, drive, tape):
        drive.mount(tape)
        assert drive.seek_time_to(tape.extent_of(3)) == pytest.approx(3.0)
        assert tape.head_mb == 0.0
