"""Tests for TapeLibrary, Robot, and TapeSystem composition."""

import pytest

from repro.des import Environment
from repro.hardware import (
    LibrarySpec,
    Robot,
    SystemSpec,
    TapeId,
    TapeLibrary,
    TapeSystem,
)


@pytest.fixture
def small_spec():
    return SystemSpec(
        num_libraries=2,
        library=LibrarySpec(num_drives=2, num_tapes=4),
    )


class TestLibrary:
    def test_construction_counts(self, small_spec):
        lib = TapeLibrary(0, small_spec.library)
        assert len(lib.drives) == 2
        assert len(lib.tapes) == 4

    def test_tape_ids_are_addressed_by_library(self, small_spec):
        lib = TapeLibrary(1, small_spec.library)
        assert TapeId(1, 0) in lib.tapes
        assert TapeId(0, 0) not in lib.tapes

    def test_tape_lookup_missing_raises(self, small_spec):
        lib = TapeLibrary(0, small_spec.library)
        with pytest.raises(KeyError):
            lib.tape(TapeId(0, 99))

    def test_mounted_tapes_and_drive_holding(self, small_spec):
        lib = TapeLibrary(0, small_spec.library)
        tape = lib.tape(TapeId(0, 2))
        lib.drives[1].mount(tape)
        assert lib.mounted_tapes() == {TapeId(0, 2): lib.drives[1]}
        assert lib.drive_holding(TapeId(0, 2)) is lib.drives[1]
        assert lib.drive_holding(TapeId(0, 0)) is None

    def test_empty_and_switchable_drives(self, small_spec):
        lib = TapeLibrary(0, small_spec.library)
        lib.drives[0].pinned = True
        assert len(lib.empty_drives()) == 2
        assert lib.switchable_drives() == [lib.drives[1]]

    def test_unmount_all_clears_pins(self, small_spec):
        lib = TapeLibrary(0, small_spec.library)
        lib.drives[0].mount(lib.tape(TapeId(0, 0)))
        lib.drives[0].pinned = True
        lib.unmount_all()
        assert lib.mounted_tapes() == {}
        assert not lib.drives[0].pinned


class TestRobot:
    def test_exchange_time_is_two_moves(self, small_spec):
        robot = Robot(0, small_spec.library)
        assert robot.exchange_time == pytest.approx(2 * 7.6)
        assert robot.move_time == pytest.approx(7.6)

    def test_resource_requires_binding(self, small_spec):
        robot = Robot(0, small_spec.library)
        with pytest.raises(RuntimeError):
            robot.resource

    def test_bound_robot_serializes(self, small_spec):
        env = Environment()
        robot = Robot(0, small_spec.library, env)
        log = []

        def mover(name):
            with robot.resource.request() as req:
                yield req
                yield env.timeout(robot.exchange_time)
                log.append((name, env.now))

        env.process(mover("a"))
        env.process(mover("b"))
        env.run()
        assert log == [("a", pytest.approx(15.2)), ("b", pytest.approx(30.4))]


class TestSystem:
    def test_construction(self, small_spec):
        system = TapeSystem(small_spec)
        assert len(system.libraries) == 2
        assert len(list(system.all_tapes())) == 8
        assert len(list(system.all_drives())) == 4

    def test_tape_routing_by_id(self, small_spec):
        system = TapeSystem(small_spec)
        tape = system.tape(TapeId(1, 3))
        assert tape.id == TapeId(1, 3)

    def test_used_mb_accumulates(self, small_spec):
        system = TapeSystem(small_spec)
        system.tape(TapeId(0, 0)).append_object(1, 100)
        system.tape(TapeId(1, 0)).append_object(2, 200)
        assert system.used_mb() == 300

    def test_reset_runtime_state_keeps_layouts(self, small_spec):
        system = TapeSystem(small_spec)
        tape = system.tape(TapeId(0, 0))
        tape.append_object(1, 100)
        system.library(0).drives[0].mount(tape)
        tape.head_mb = 50
        system.reset_runtime_state()
        assert system.mounted_tape_ids() == {}
        assert tape.head_mb == 0
        assert tape.holds(1)

    def test_clear_layouts(self, small_spec):
        system = TapeSystem(small_spec)
        system.tape(TapeId(0, 0)).append_object(1, 100)
        system.clear_layouts()
        assert system.used_mb() == 0
