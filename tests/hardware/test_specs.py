"""Tests for hardware specs and the derived Table-1 timing quantities."""

import pytest

from repro.hardware import DriveSpec, LibrarySpec, SystemSpec, TapeSpec
from repro.units import GB


class TestTapeSpec:
    def test_defaults_match_table1(self):
        spec = TapeSpec()
        assert spec.capacity_mb == 400 * GB
        assert spec.max_rewind_s == 98.0

    def test_locate_rate_derived_from_full_rewind(self):
        spec = TapeSpec()
        assert spec.locate_rate_mb_s == pytest.approx(400_000 / 98)

    def test_average_rewind_is_half_of_max(self):
        # Table 1: maximum/average rewind time 98/49 s.
        assert TapeSpec().avg_rewind_s == pytest.approx(49.0)

    def test_locate_time_is_symmetric_and_linear(self):
        spec = TapeSpec()
        t_half = spec.locate_time(0, spec.capacity_mb / 2)
        assert t_half == pytest.approx(49.0)
        assert spec.locate_time(spec.capacity_mb / 2, 0) == pytest.approx(t_half)
        assert spec.locate_time(0, spec.capacity_mb) == pytest.approx(98.0)

    def test_zero_distance_locate_is_free(self):
        assert TapeSpec().locate_time(1000, 1000) == 0.0

    def test_rejects_nonpositive_values(self):
        with pytest.raises(ValueError):
            TapeSpec(capacity_mb=0)
        with pytest.raises(ValueError):
            TapeSpec(max_rewind_s=-1)


class TestDriveSpec:
    def test_defaults_match_table1(self):
        spec = DriveSpec()
        assert spec.transfer_rate_mb_s == 80.0
        assert spec.load_s == 19.0
        assert spec.unload_s == 19.0

    def test_transfer_time(self):
        assert DriveSpec().transfer_time(8000) == pytest.approx(100.0)

    def test_transfer_time_zero_size(self):
        assert DriveSpec().transfer_time(0) == 0.0

    def test_transfer_time_negative_rejected(self):
        with pytest.raises(ValueError):
            DriveSpec().transfer_time(-1)


class TestLibrarySpec:
    def test_defaults_match_table1(self):
        spec = LibrarySpec()
        assert spec.num_drives == 8
        assert spec.num_tapes == 80
        assert spec.cell_to_drive_s == 7.6

    def test_capacity(self):
        assert LibrarySpec().capacity_mb == 80 * 400 * GB

    def test_first_file_access_close_to_table1(self):
        # Table 1 quotes 72 s; linear model gives load 19 + mid locate 49 = 68.
        assert LibrarySpec().first_file_access_s == pytest.approx(68.0)
        assert abs(LibrarySpec().first_file_access_s - 72.0) / 72.0 < 0.06

    def test_rejects_fewer_tapes_than_drives(self):
        with pytest.raises(ValueError):
            LibrarySpec(num_drives=8, num_tapes=4)

    def test_rejects_zero_drives(self):
        with pytest.raises(ValueError):
            LibrarySpec(num_drives=0)


class TestSystemSpec:
    def test_table1_factory(self):
        spec = SystemSpec.table1()
        assert spec.num_libraries == 3
        assert spec.total_drives == 24
        assert spec.total_tapes == 240
        assert spec.total_capacity_mb == pytest.approx(96_000 * GB)

    def test_aggregate_rate(self):
        assert SystemSpec.table1().aggregate_transfer_rate_mb_s == pytest.approx(24 * 80)

    def test_with_libraries(self):
        spec = SystemSpec.table1().with_libraries(5)
        assert spec.num_libraries == 5
        assert spec.library == SystemSpec.table1().library  # unchanged

    def test_rejects_zero_libraries(self):
        with pytest.raises(ValueError):
            SystemSpec(num_libraries=0)

    def test_scaled_technology_rate(self):
        spec = SystemSpec.table1().scaled_technology(rate_factor=2)
        assert spec.library.drive.transfer_rate_mb_s == 160.0
        assert spec.library.tape.capacity_mb == 400 * GB

    def test_scaled_technology_capacity_keeps_rewind_time(self):
        spec = SystemSpec.table1().scaled_technology(capacity_factor=2)
        assert spec.library.tape.capacity_mb == 800 * GB
        assert spec.library.tape.max_rewind_s == 98.0
        # locate rate doubles so full-tape traverse time is constant
        assert spec.library.tape.locate_rate_mb_s == pytest.approx(2 * 400_000 / 98)

    def test_iter_library_ids(self):
        assert list(SystemSpec.table1().iter_library_ids()) == [0, 1, 2]


class TestAffineLocateModel:
    def test_default_is_pure_linear(self):
        spec = TapeSpec()
        assert spec.locate_startup_s == 0.0
        assert spec.locate_time(0, spec.capacity_mb) == pytest.approx(98.0)

    def test_startup_added_to_real_moves(self):
        spec = TapeSpec(capacity_mb=1000, max_rewind_s=10, locate_startup_s=2.0)
        assert spec.locate_time(0, 500) == pytest.approx(2.0 + 5.0)

    def test_zero_distance_stays_free(self):
        spec = TapeSpec(capacity_mb=1000, max_rewind_s=10, locate_startup_s=2.0)
        assert spec.locate_time(300, 300) == 0.0

    def test_negative_startup_rejected(self):
        with pytest.raises(ValueError):
            TapeSpec(locate_startup_s=-1.0)
