"""Tests for Tape layout management."""

import pytest

from repro.hardware import ObjectExtent, Tape, TapeId, TapeSpec


@pytest.fixture
def tape():
    return Tape(TapeId(0, 0), TapeSpec(capacity_mb=1000, max_rewind_s=10))


class TestObjectExtent:
    def test_end(self):
        assert ObjectExtent(1, 10, 5).end_mb == 15

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            ObjectExtent(1, -1, 5)

    def test_rejects_zero_size(self):
        with pytest.raises(ValueError):
            ObjectExtent(1, 0, 0)

    def test_overlap_detection(self):
        a = ObjectExtent(1, 0, 10)
        b = ObjectExtent(2, 5, 10)
        c = ObjectExtent(3, 10, 10)
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)  # adjacent is not overlapping


class TestTapeLayout:
    def test_fresh_tape_is_empty(self, tape):
        assert len(tape) == 0
        assert tape.used_mb == 0
        assert tape.free_mb == 1000

    def test_append_object(self, tape):
        e1 = tape.append_object(7, 100)
        e2 = tape.append_object(8, 50)
        assert e1.start_mb == 0
        assert e2.start_mb == 100
        assert tape.used_mb == 150
        assert tape.object_ids == (7, 8)

    def test_append_beyond_capacity_rejected(self, tape):
        tape.append_object(1, 900)
        with pytest.raises(ValueError):
            tape.append_object(2, 200)

    def test_extent_lookup(self, tape):
        tape.append_object(42, 100)
        assert tape.extent_of(42).size_mb == 100
        assert tape.holds(42)
        assert not tape.holds(99)

    def test_extent_lookup_missing_raises(self, tape):
        with pytest.raises(KeyError):
            tape.extent_of(1)

    def test_write_layout_sorts_by_start(self, tape):
        tape.write_layout(
            [ObjectExtent(2, 100, 50), ObjectExtent(1, 0, 100)]
        )
        assert tape.object_ids == (1, 2)

    def test_write_layout_rejects_overlap(self, tape):
        with pytest.raises(ValueError):
            tape.write_layout([ObjectExtent(1, 0, 100), ObjectExtent(2, 50, 100)])

    def test_write_layout_rejects_duplicate_object(self, tape):
        with pytest.raises(ValueError):
            tape.write_layout([ObjectExtent(1, 0, 10), ObjectExtent(1, 10, 10)])

    def test_write_layout_rejects_capacity_overflow(self, tape):
        with pytest.raises(ValueError):
            tape.write_layout([ObjectExtent(1, 900, 200)])

    def test_write_layout_replaces_previous(self, tape):
        tape.append_object(1, 100)
        tape.write_layout([ObjectExtent(2, 0, 10)])
        assert tape.object_ids == (2,)
        assert not tape.holds(1)

    def test_layout_may_have_gaps(self, tape):
        tape.write_layout([ObjectExtent(1, 0, 10), ObjectExtent(2, 500, 10)])
        assert tape.used_mb == 510

    def test_iteration_in_position_order(self, tape):
        tape.write_layout([ObjectExtent(2, 100, 10), ObjectExtent(1, 0, 10)])
        assert [e.object_id for e in tape] == [1, 2]
