"""Repo-wide pytest configuration.

``--update-golden`` regenerates the snapshot files under
``tests/experiments/golden/`` instead of comparing against them; commit the
diff after an *intended* behavior change (see docs/experiments.md).
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite golden snapshot files with current results",
    )


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")
