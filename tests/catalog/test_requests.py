"""Tests for Request / RequestSet."""

import numpy as np
import pytest

from repro.catalog import ObjectCatalog, Request, RequestSet


@pytest.fixture
def catalog():
    return ObjectCatalog([100.0, 200.0, 300.0, 400.0])


class TestRequest:
    def test_total_size(self, catalog):
        r = Request(0, (0, 2), 1.0)
        assert r.total_size_mb(catalog) == 400.0

    def test_len(self):
        assert len(Request(0, (1, 2, 3), 1.0)) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Request(0, (), 1.0)

    def test_duplicate_objects_rejected(self):
        with pytest.raises(ValueError):
            Request(0, (1, 1), 1.0)

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            Request(0, (1,), -0.5)


class TestRequestSet:
    def test_probabilities_normalized(self):
        rs = RequestSet([Request(0, (0,), 3.0), Request(1, (1,), 1.0)])
        assert rs.probabilities == pytest.approx([0.75, 0.25])

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            RequestSet([])

    def test_zero_total_probability_rejected(self):
        with pytest.raises(ValueError):
            RequestSet([Request(0, (0,), 0.0)])

    def test_object_probabilities_step1(self):
        """P(O) = sum of probabilities of requests containing O (Step 1)."""
        rs = RequestSet(
            [Request(0, (0, 1), 0.5), Request(1, (1, 2), 0.25), Request(2, (1,), 0.25)]
        )
        probs = rs.object_probabilities(4)
        assert probs == pytest.approx([0.5, 1.0, 0.25, 0.0])

    def test_object_probabilities_out_of_range_rejected(self):
        rs = RequestSet([Request(0, (5,), 1.0)])
        with pytest.raises(ValueError):
            rs.object_probabilities(3)

    def test_sample_respects_distribution(self):
        rs = RequestSet([Request(0, (0,), 0.99), Request(1, (1,), 0.01)])
        rng = np.random.default_rng(0)
        sampled = rs.sample(rng, 500)
        hot = sum(1 for r in sampled if r.id == 0)
        assert hot > 450

    def test_sample_is_reproducible(self):
        rs = RequestSet([Request(i, (i,), 1.0) for i in range(10)])
        a = [r.id for r in rs.sample(np.random.default_rng(42), 20)]
        b = [r.id for r in rs.sample(np.random.default_rng(42), 20)]
        assert a == b

    def test_average_request_size_weighted(self, catalog):
        rs = RequestSet(
            [Request(0, (0,), 3.0), Request(1, (3,), 1.0)]  # 100 MB vs 400 MB
        )
        assert rs.average_request_size_mb(catalog) == pytest.approx(0.75 * 100 + 0.25 * 400)

    def test_indexing_and_iteration(self):
        rs = RequestSet([Request(0, (0,), 1.0), Request(1, (1,), 1.0)])
        assert rs[1].id == 1
        assert [r.id for r in rs] == [0, 1]
        assert len(rs) == 2
