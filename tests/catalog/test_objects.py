"""Tests for ObjectCatalog and StorageObject."""

import numpy as np
import pytest

from repro.catalog import ObjectCatalog, StorageObject


class TestStorageObject:
    def test_density(self):
        obj = StorageObject(0, size_mb=200.0, probability=0.5)
        assert obj.density == pytest.approx(0.0025)

    def test_load(self):
        obj = StorageObject(0, size_mb=200.0, probability=0.5)
        assert obj.load == pytest.approx(100.0)


class TestObjectCatalog:
    def test_len_and_sizes(self):
        cat = ObjectCatalog([10.0, 20.0, 30.0])
        assert len(cat) == 3
        assert cat.size_of(1) == 20.0
        assert cat.total_size_mb() == 60.0

    def test_total_size_of_subset(self):
        cat = ObjectCatalog([10.0, 20.0, 30.0])
        assert cat.total_size_mb([0, 2]) == 40.0

    def test_probabilities_default_zero(self):
        cat = ObjectCatalog([1.0, 2.0])
        assert np.all(cat.probabilities == 0)

    def test_set_probabilities(self):
        cat = ObjectCatalog([1.0, 2.0])
        cat.set_probabilities([0.3, 0.7])
        assert cat.probability_of(1) == 0.7

    def test_set_probabilities_wrong_shape_rejected(self):
        cat = ObjectCatalog([1.0, 2.0])
        with pytest.raises(ValueError):
            cat.set_probabilities([0.3])

    def test_negative_probability_rejected(self):
        cat = ObjectCatalog([1.0])
        with pytest.raises(ValueError):
            cat.set_probabilities([-0.1])

    def test_densities_and_loads(self):
        cat = ObjectCatalog([10.0, 20.0], [0.2, 0.4])
        assert cat.densities == pytest.approx([0.02, 0.02])
        assert cat.loads == pytest.approx([2.0, 8.0])

    def test_empty_catalog_rejected(self):
        with pytest.raises(ValueError):
            ObjectCatalog([])

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            ObjectCatalog([1.0, 0.0])

    def test_views_are_read_only(self):
        cat = ObjectCatalog([1.0, 2.0])
        with pytest.raises(ValueError):
            cat.sizes_mb[0] = 99.0
        with pytest.raises(ValueError):
            cat.probabilities[0] = 99.0

    def test_object_view(self):
        cat = ObjectCatalog([10.0], [0.5])
        obj = cat.object(0)
        assert obj == StorageObject(0, 10.0, 0.5)

    def test_iteration(self):
        cat = ObjectCatalog([1.0, 2.0])
        assert [o.id for o in cat] == [0, 1]
