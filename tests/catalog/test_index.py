"""Tests for the LocationIndex."""

import pytest

from repro.catalog import LocationIndex
from repro.hardware import LibrarySpec, ObjectExtent, SystemSpec, TapeId, TapeSystem


@pytest.fixture
def system():
    return TapeSystem(SystemSpec(num_libraries=2, library=LibrarySpec(num_drives=2, num_tapes=4)))


def test_from_system_scans_all_layouts(system):
    system.tape(TapeId(0, 0)).append_object(1, 100)
    system.tape(TapeId(1, 2)).append_object(2, 200)
    index = LocationIndex.from_system(system)
    assert len(index) == 2
    assert index.tapes_of(1) == (TapeId(0, 0),)
    assert index.tapes_of(2) == (TapeId(1, 2),)
    # The single-extent convenience accessor still works where unambiguous.
    assert index.tape_of(1) == TapeId(0, 0)


def test_tape_of_raises_on_redundant_object():
    index = LocationIndex()
    index.add(1, TapeId(0, 0), ObjectExtent(1, 0, 10, replica=0, replicas=2))
    index.add(1, TapeId(0, 1), ObjectExtent(1, 0, 10, replica=1, replicas=2))
    assert index.tapes_of(1) == (TapeId(0, 0), TapeId(0, 1))
    with pytest.raises(ValueError):
        index.tape_of(1)


def test_locate_returns_extent(system):
    extent = system.tape(TapeId(0, 1)).append_object(7, 150)
    index = LocationIndex.from_system(system)
    tape_id, found = index.locate(7)
    assert tape_id == TapeId(0, 1)
    assert found == extent


def test_locate_unplaced_object_raises():
    with pytest.raises(KeyError):
        LocationIndex().locate(123)


def test_duplicate_placement_rejected():
    index = LocationIndex()
    index.add(1, TapeId(0, 0), ObjectExtent(1, 0, 10))
    with pytest.raises(ValueError):
        index.add(1, TapeId(0, 1), ObjectExtent(1, 0, 10))


def test_group_by_tape(system):
    t0, t1 = system.tape(TapeId(0, 0)), system.tape(TapeId(1, 1))
    t0.append_object(1, 100)
    t0.append_object(2, 100)
    t1.append_object(3, 100)
    index = LocationIndex.from_system(system)
    groups = index.group_by_tape([1, 2, 3])
    assert set(groups) == {TapeId(0, 0), TapeId(1, 1)}
    assert sorted(e.object_id for e in groups[TapeId(0, 0)]) == [1, 2]


def test_contains(system):
    system.tape(TapeId(0, 0)).append_object(5, 10)
    index = LocationIndex.from_system(system)
    assert 5 in index
    assert 6 not in index
