"""Cross-cutting edge cases not covered by the per-module suites."""

import doctest

import pytest

import repro.des.core
from repro.catalog import LocationIndex, Request
from repro.hardware import LibrarySpec, ObjectExtent, SystemSpec, TapeId, TapeSystem
from repro.sim import simulate_request


def test_des_core_doctest_example():
    """The Environment docstring example must stay true."""
    results = doctest.testmod(repro.des.core, verbose=False)
    assert results.failed == 0
    assert results.attempted > 0


class TestEngineEdges:
    @pytest.fixture
    def system(self):
        return TapeSystem(
            SystemSpec(num_libraries=1, library=LibrarySpec(num_drives=2, num_tapes=4))
        )

    def test_request_for_unplaced_object_raises(self, system):
        index = LocationIndex.from_system(system)
        with pytest.raises(KeyError, match="has not been placed"):
            simulate_request(system, index, Request(0, (42,), 1.0))

    def test_single_object_request_minimal_metrics(self, system):
        tape = system.tape(TapeId(0, 0))
        tape.write_layout([ObjectExtent(1, 0, 80_000.0)])
        system.library(0).drives[0].mount(tape)
        index = LocationIndex.from_system(system)
        m = simulate_request(system, index, Request(0, (1,), 1.0))
        assert m.num_tapes == 1
        assert m.num_drives == 1
        assert m.response_s == pytest.approx(1000.0)  # 80 GB at 80 MB/s

    def test_duplicate_requests_benefit_from_persistence(self, system):
        tape = system.tape(TapeId(0, 2))
        tape.write_layout([ObjectExtent(1, 0, 8000.0)])
        index = LocationIndex.from_system(system)
        request = Request(0, (1,), 1.0)
        first = simulate_request(system, index, request)
        second = simulate_request(system, index, request)
        third = simulate_request(system, index, request)
        assert first.num_switches == 1
        assert second.num_switches == 0
        assert second.response_s == pytest.approx(third.response_s)

    def test_many_tiny_extents_on_one_tape(self, system):
        tape = system.tape(TapeId(0, 0))
        tape.write_layout([ObjectExtent(i, i * 10.0, 1.0) for i in range(200)])
        system.library(0).drives[0].mount(tape)
        index = LocationIndex.from_system(system)
        m = simulate_request(system, index, Request(0, tuple(range(200)), 1.0))
        # 200 MB transferred, in one ascending sweep of the 2 GB span.
        assert m.transfer_s == pytest.approx(200 / 80)
        spec = system.spec.library.tape
        assert m.seek_s == pytest.approx(spec.locate_time(0, 1990.0) - m.transfer_s * 0 - 199 * spec.locate_time(0, 1.0), rel=0.2)


class TestWorkloadEdges:
    def test_single_object_single_request(self):
        from repro.catalog import ObjectCatalog, RequestSet
        from repro.workload import Workload

        w = Workload(
            ObjectCatalog([100.0]), RequestSet([Request(0, (0,), 1.0)])
        )
        assert w.average_request_size_mb == 100.0
        assert w.max_request_size_mb == 100.0

    def test_all_schemes_handle_single_object_workload(self):
        from repro.catalog import ObjectCatalog, RequestSet
        from repro.placement import (
            ClusterProbabilityPlacement,
            ObjectProbabilityPlacement,
            ParallelBatchPlacement,
        )
        from repro.workload import Workload

        w = Workload(ObjectCatalog([100.0]), RequestSet([Request(0, (0,), 1.0)]))
        spec = SystemSpec(
            num_libraries=1, library=LibrarySpec(num_drives=2, num_tapes=4)
        )
        for scheme in (
            ParallelBatchPlacement(m=1),
            ObjectProbabilityPlacement(),
            ClusterProbabilityPlacement(),
        ):
            result = scheme.place(w, spec)
            result.validate(w.catalog, spec)
            assert result.objects_placed() == 1
