"""Smoke tests: every example script must run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted((Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, f"{script.name} failed:\n{result.stderr}"
    assert result.stdout.strip(), f"{script.name} produced no output"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3
