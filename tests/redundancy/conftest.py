"""Shared fixtures for the redundancy-layer tests.

Same scaled-down configuration as ``tests/placement/test_schemes.py``
(2 libraries x 4 drives x 10 tapes of 10 GB; ~90 GB of objects) so base
placements leave enough slack for r=2 / n=3 overhead.
"""

import pytest

from repro.hardware import LibrarySpec, SystemSpec, TapeSpec
from repro.workload import generate_workload


@pytest.fixture(scope="package")
def spec():
    return SystemSpec(
        num_libraries=2,
        library=LibrarySpec(
            num_drives=4,
            num_tapes=10,
            tape=TapeSpec(capacity_mb=10_000, max_rewind_s=10),
        ),
    )


@pytest.fixture(scope="package")
def workload():
    return generate_workload(
        num_objects=600,
        num_requests=40,
        request_size_bounds=(8, 20),
        object_size_bounds_mb=(5.0, 500.0),
        mean_object_size_mb=150.0,
        zipf_alpha=0.3,
        seed=42,
    )
