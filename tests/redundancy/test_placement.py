"""Property and integration tests for the redundancy placement wrappers.

The layer's contract, from ISSUE 8:

* every object has exactly ``r`` (or ``n``) members, on distinct tapes,
  spanning ``min(r, num_libraries)`` libraries;
* ``validate()`` enforces those invariants (a corrupted layout fails);
* ``r=1`` / ``k=n=1`` degenerate to an exact pass-through of the base
  scheme's result.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import LibrarySpec, SystemSpec, TapeSpec
from repro.placement import PlacementError, available_schemes, make_scheme
from repro.redundancy import (
    ErasureCodedPlacement,
    ReplicatedPlacement,
    parse_redundancy,
    wrap_scheme,
)
from repro.workload import generate_workload


def _small_spec(num_libraries=2):
    return SystemSpec(
        num_libraries=num_libraries,
        library=LibrarySpec(
            num_drives=4,
            num_tapes=10,
            tape=TapeSpec(capacity_mb=10_000, max_rewind_s=10),
        ),
    )


def _small_workload(seed, num_objects=120):
    return generate_workload(
        num_objects=num_objects,
        num_requests=15,
        request_size_bounds=(4, 10),
        object_size_bounds_mb=(5.0, 400.0),
        mean_object_size_mb=100.0,
        zipf_alpha=0.3,
        seed=seed,
    )


def _members_by_object(result):
    groups = {}
    for tape_id, extents in result.layouts.items():
        for e in extents:
            groups.setdefault((e.object_id, e.part), []).append((tape_id, e))
    return groups


class TestReplicatedProperties:
    @given(seed=st.integers(min_value=0, max_value=2**16), r=st.sampled_from([1, 2, 3]))
    @settings(max_examples=12, deadline=None)
    def test_exactly_r_members_on_distinct_tapes(self, seed, r):
        workload = _small_workload(seed)
        spec = _small_spec()
        result = ReplicatedPlacement(base="parallel_batch", r=r, m=2).place(
            workload, spec
        )
        result.validate(workload.catalog, spec)
        groups = _members_by_object(result)
        placed_objects = {oid for oid, _ in groups}
        assert placed_objects == set(range(len(workload.catalog)))
        for (oid, part), members in groups.items():
            assert len(members) == r
            tapes = {tid for tid, _ in members}
            assert len(tapes) == r, f"object {oid} part {part} shares a tape"
            libraries = {tid.library for tid in tapes}
            assert len(libraries) >= min(r, spec.num_libraries)
            assert sorted(e.replica for _, e in members) == list(range(r))
            for _, e in members:
                assert e.replicas == r
                assert e.needed == 1

    @pytest.mark.parametrize("base", sorted(set(available_schemes()) - {"replicated", "erasure"}))
    def test_r1_is_exact_passthrough(self, base, workload, spec):
        kwargs = {"m": 2} if base == "parallel_batch" else {}
        base_result = make_scheme(base, **kwargs).place(workload, spec)
        wrapped = ReplicatedPlacement(base=base, r=1, **kwargs).place(workload, spec)
        assert wrapped.layouts == base_result.layouts
        assert wrapped.initial_mounts == base_result.initial_mounts
        assert wrapped.pinned == base_result.pinned
        assert wrapped.tape_priority == base_result.tape_priority

    def test_capacity_violation_raises(self, workload, spec):
        # ~90 GB of objects x r=3 does not fit the 200 GB system.
        with pytest.raises(PlacementError):
            ReplicatedPlacement(base="parallel_batch", r=3, m=2).place(workload, spec)

    def test_validate_rejects_coresident_replicas(self, workload, spec):
        result = ReplicatedPlacement(base="parallel_batch", r=2, m=2).place(
            workload, spec
        )
        # Move every extent of some tape onto the tape holding its peer
        # replica: distinct-tape anti-affinity must fail validation.
        groups = _members_by_object(result)
        (first_tape, first), (second_tape, second) = next(
            members for members in groups.values() if len(members) == 2
        )
        layouts = {tid: list(extents) for tid, extents in result.layouts.items()}
        layouts[second_tape].remove(second)
        moved = dataclasses.replace(
            second, start_mb=max((e.end_mb for e in layouts[first_tape]), default=0.0)
        )
        layouts[first_tape].append(moved)
        corrupted = dataclasses.replace(result, layouts=layouts)
        with pytest.raises(PlacementError):
            corrupted.validate(workload.catalog, spec)


class TestErasureProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        kn=st.sampled_from([(2, 3), (2, 4), (4, 6)]),
    )
    @settings(max_examples=12, deadline=None)
    def test_n_stripes_of_size_over_k(self, seed, kn):
        k, n = kn
        workload = _small_workload(seed)
        spec = _small_spec()
        result = ErasureCodedPlacement(base="parallel_batch", k=k, n=n, m=2).place(
            workload, spec
        )
        result.validate(workload.catalog, spec)
        groups = _members_by_object(result)
        for (oid, part), members in groups.items():
            assert part == 0
            assert len(members) == n
            assert len({tid for tid, _ in members}) == n
            size = workload.catalog.size_of(oid)
            for _, e in members:
                assert e.size_mb == pytest.approx(size / k)
                assert e.needed == k
                assert e.replicas == n

    def test_k1_n1_is_exact_passthrough(self, workload, spec):
        base_result = make_scheme("parallel_batch", m=2).place(workload, spec)
        wrapped = ErasureCodedPlacement(base="parallel_batch", k=1, n=1, m=2).place(
            workload, spec
        )
        assert wrapped.layouts == base_result.layouts
        assert wrapped.initial_mounts == base_result.initial_mounts

    def test_striped_base_rejected(self, workload, spec):
        with pytest.raises(PlacementError):
            ErasureCodedPlacement(base="striped", k=2, n=3).place(workload, spec)


class TestSpecParsing:
    def test_replicated(self):
        assert parse_redundancy("r=2") == {"mode": "replicated", "r": 2}

    def test_erasure(self):
        assert parse_redundancy("k=4,n=6") == {"mode": "erasure", "k": 4, "n": 6}
        assert parse_redundancy(" n=6 , k=4 ") == {"mode": "erasure", "k": 4, "n": 6}

    @pytest.mark.parametrize(
        "bad", ["", "r=0", "k=3,n=2", "k=4", "n=6", "r=2,k=3", "x=1", "r=two"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_redundancy(bad)

    def test_gf256_width_limit(self):
        with pytest.raises(ValueError):
            ErasureCodedPlacement(k=1, n=300)

    def test_wrap_scheme_dispatches(self):
        base = make_scheme("parallel_batch", m=2)
        assert isinstance(wrap_scheme(base, "r=2"), ReplicatedPlacement)
        assert isinstance(wrap_scheme(base, "k=2,n=3"), ErasureCodedPlacement)

    def test_registry_exposes_wrappers(self):
        assert {"replicated", "erasure"} <= set(available_schemes())
