"""Property tests for choice-of-d member selection.

The invariant from ISSUE 8: choice-of-d never routes to a failed replica
*while a live one can cover the read* — dead members only pad the tail
when live candidates alone cannot reach ``needed``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.catalog import RedundancyGroup
from repro.hardware import ObjectExtent, TapeId
from repro.redundancy import count_fallbacks, select_members


def _group(n, needed):
    members = tuple(
        (
            TapeId(i % 2, i // 2),
            ObjectExtent(7, 0.0, 10.0, replica=i, replicas=n, needed=needed),
        )
        for i in range(n)
    )
    return RedundancyGroup(object_id=7, part=0, needed=needed, members=members)


@st.composite
def dispatch_cases(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    needed = draw(st.integers(min_value=1, max_value=n))
    dead = draw(st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n))
    excluded = draw(st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n))
    loads = draw(
        st.lists(
            st.integers(min_value=0, max_value=50), min_size=n, max_size=n
        )
    )
    return n, needed, dead, excluded, loads


@given(dispatch_cases())
@settings(max_examples=300, deadline=None)
def test_never_routes_dead_while_live_can_cover(case):
    n, needed, dead_replicas, excluded_replicas, loads = case
    group = _group(n, needed)
    tape_of = {e.replica: tid for tid, e in group.members}
    dead_tapes = {tape_of[i] for i in dead_replicas}
    excluded = {tape_of[i] for i in excluded_replicas}
    load_of = {tape_of[i]: float(loads[i]) for i in range(n)}

    chosen = select_members(
        group, excluded, lambda t: t not in dead_tapes, lambda t: load_of[t]
    )

    candidates = [m for m in group.members if m[0] not in excluded]
    if len(candidates) < needed:
        assert chosen is None
        return
    assert chosen is not None
    assert len(chosen) == needed
    # No excluded tape is ever selected, and no member repeats.
    chosen_tapes = [tid for tid, _ in chosen]
    assert len(set(chosen_tapes)) == needed
    assert not (set(chosen_tapes) & excluded)
    # Dead members appear only when live candidates cannot cover the read.
    live_candidates = [m for m in candidates if m[0] not in dead_tapes]
    n_dead_chosen = sum(1 for t in chosen_tapes if t in dead_tapes)
    assert n_dead_chosen == max(0, needed - len(live_candidates))
    # Among live members, selection is least-loaded-first: every chosen
    # live member's load is <= every skipped live member's load (with
    # replica index breaking exact ties deterministically).
    skipped_live = [
        m for m in live_candidates if m[0] not in set(chosen_tapes)
    ]
    for tid, e in chosen:
        if tid in dead_tapes:
            continue
        for s_tid, s_e in skipped_live:
            assert (load_of[tid], e.replica) <= (load_of[s_tid], s_e.replica)


@given(dispatch_cases())
@settings(max_examples=100, deadline=None)
def test_fallback_count_matches_non_primary_reads(case):
    n, needed, dead_replicas, excluded_replicas, loads = case
    group = _group(n, needed)
    tape_of = {e.replica: tid for tid, e in group.members}
    dead_tapes = {tape_of[i] for i in dead_replicas}
    excluded = {tape_of[i] for i in excluded_replicas}
    load_of = {tape_of[i]: float(loads[i]) for i in range(n)}
    chosen = select_members(
        group, excluded, lambda t: t not in dead_tapes, lambda t: load_of[t]
    )
    if chosen is None:
        return
    expected = sum(1 for _, e in chosen if e.replica >= needed)
    assert count_fallbacks(chosen, needed) == expected
    assert 0 <= count_fallbacks(chosen, needed) <= needed


def test_all_excluded_is_unservable():
    group = _group(3, 2)
    excluded = {tid for tid, _ in group.members}
    assert select_members(group, excluded, lambda t: True, lambda t: 0.0) is None


def test_prefers_least_loaded_live_member():
    group = _group(3, 1)
    tapes = [tid for tid, _ in group.members]
    loads = {tapes[0]: 5.0, tapes[1]: 1.0, tapes[2]: 3.0}
    chosen = select_members(group, set(), lambda t: True, lambda t: loads[t])
    assert [tid for tid, _ in chosen] == [tapes[1]]


def test_degenerate_single_member_group():
    group = _group(1, 1)
    chosen = select_members(group, set(), lambda t: False, lambda t: 0.0)
    # The lone (dead) member is still returned: submission into the dead
    # dispatcher reproduces the non-redundant abort path.
    assert chosen == list(group.members)


class TestCostOfOrdering:
    """The ``cheapest`` read-selection hook (ISSUE 9 satellite)."""

    def test_cost_of_overrides_load_order(self):
        group = _group(3, 1)
        tapes = [tid for tid, _ in group.members]
        loads = {tapes[0]: 1.0, tapes[1]: 5.0, tapes[2]: 9.0}
        # Load order would pick tapes[0]; cost order (mounted-first, then
        # drive seconds) must pick the mounted tapes[2] instead.
        costs = {tapes[0]: (1, 40.0), tapes[1]: (1, 30.0), tapes[2]: (0, 80.0)}
        chosen = select_members(
            group,
            set(),
            lambda t: True,
            lambda t: loads[t],
            cost_of=lambda t, e: costs[t],
        )
        assert [tid for tid, _ in chosen] == [tapes[2]]

    def test_cost_of_none_is_the_default_order(self):
        group = _group(4, 2)
        tapes = [tid for tid, _ in group.members]
        loads = {t: float(i) for i, t in enumerate(tapes)}
        default = select_members(group, set(), lambda t: True, lambda t: loads[t])
        explicit = select_members(
            group, set(), lambda t: True, lambda t: loads[t], cost_of=None
        )
        assert default == explicit

    def test_dead_members_still_pad_tail_under_cost_order(self):
        group = _group(3, 2)
        tapes = [tid for tid, _ in group.members]
        chosen = select_members(
            group,
            set(),
            lambda t: t != tapes[0],
            lambda t: 0.0,
            cost_of=lambda t, e: (0, 1.0),
        )
        # Two live members cover the read; the dead one is not chosen.
        assert tapes[0] not in [tid for tid, _ in chosen]
