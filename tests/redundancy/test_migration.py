"""Tests for popularity-driven hot/cold migration (epoch replay)."""

import dataclasses

import pytest

from repro.placement import PlacementError, make_scheme
from repro.redundancy import MigrationReport, ReplicatedPlacement, migrate_by_popularity


@pytest.fixture(scope="module")
def base_result(workload, spec):
    return make_scheme("parallel_batch", m=2).place(workload, spec)


class TestMigration:
    def test_single_epoch_is_identity(self, base_result, workload, spec):
        migrated, report = migrate_by_popularity(base_result, workload, spec, 1)
        assert migrated is base_result
        assert report.churn == 0

    def test_unpinned_layout_is_identity(self, base_result, workload, spec):
        unpinned = dataclasses.replace(base_result, pinned=frozenset())
        migrated, report = migrate_by_popularity(unpinned, workload, spec, 3)
        assert migrated is unpinned
        assert report.hot_tapes == ()

    def test_migrated_layout_still_validates(self, base_result, workload, spec):
        migrated, report = migrate_by_popularity(base_result, workload, spec, 3)
        migrated.validate(workload.catalog, spec)
        assert report.num_epochs == 3
        assert report.hot_tapes == tuple(sorted(base_result.pinned))

    def test_objects_and_sizes_preserved(self, base_result, workload, spec):
        migrated, _ = migrate_by_popularity(base_result, workload, spec, 3)

        def inventory(result):
            return {
                e.object_id: e.size_mb
                for extents in result.layouts.values()
                for e in extents
            }

        assert inventory(migrated) == inventory(base_result)
        capacity = spec.library.tape.capacity_mb
        for extents in migrated.layouts.values():
            assert sum(e.size_mb for e in extents) <= capacity + 1e-6

    def test_epoch_replay_actually_churns(self, base_result, workload, spec):
        migrated, report = migrate_by_popularity(base_result, workload, spec, 3)
        assert report.churn > 0
        assert migrated.metadata["migration"]["promotions"] == report.promotions
        assert migrated.metadata["migration"]["demotions"] == report.demotions

    def test_hot_tier_holds_the_final_epoch_hot_set(self, base_result, workload, spec):
        """Post-migration, pinned tapes hold what the *final* epoch asked
        for: measured by final-epoch request counts, the migrated hot tier
        beats (or ties) the static one."""
        from repro.placement.incremental import split_into_epochs

        migrated, _ = migrate_by_popularity(base_result, workload, spec, 3)
        final = split_into_epochs(workload, 3)[-1]
        requests_by_id = {r.id: r for r in workload.requests}
        counts = {}
        for rid in final.new_request_ids:
            for oid in requests_by_id[rid].object_ids:
                counts[oid] = counts.get(oid, 0) + 1

        def hot_mass(result):
            return sum(
                counts.get(e.object_id, 0)
                for tid in result.pinned
                for e in result.layouts[tid]
            )

        assert hot_mass(migrated) >= hot_mass(base_result)

    def test_rejects_striped_base(self, workload, spec):
        striped = make_scheme("striped").place(workload, spec)
        if not striped.pinned:
            striped = dataclasses.replace(
                striped, pinned=frozenset(list(striped.layouts)[:1])
            )
        with pytest.raises(PlacementError):
            migrate_by_popularity(striped, workload, spec, 3)

    def test_report_churn_property(self):
        report = MigrationReport(3, promotions=5, demotions=2, hot_tapes=())
        assert report.churn == 7


class TestMigrationInsideReplication:
    def test_migrate_then_replicate_validates(self, workload, spec):
        scheme = ReplicatedPlacement(
            base="parallel_batch", r=2, migrate_epochs=3, m=2
        )
        result = scheme.place(workload, spec)
        result.validate(workload.catalog, spec)
        assert result.metadata["migration"]["num_epochs"] == 3

    def test_migration_changes_the_primary_layout(self, workload, spec):
        plain = ReplicatedPlacement(base="parallel_batch", r=2, m=2).place(
            workload, spec
        )
        migrated = ReplicatedPlacement(
            base="parallel_batch", r=2, migrate_epochs=3, m=2
        ).place(workload, spec)
        assert plain.layouts != migrated.layouts
