"""Property tests for the GF(256) systematic Reed-Solomon codec.

The central property (and the one the durability model leans on): the
original data is recoverable from *any* k of the n stripes — not just
the systematic ones.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.redundancy import decode_stripes, encode_stripes, stripe_size

#: (k, n) pairs small enough to enumerate every k-subset exhaustively.
KN_PAIRS = [(1, 1), (1, 3), (2, 3), (2, 4), (3, 5), (4, 6)]


@st.composite
def data_and_code(draw):
    k, n = draw(st.sampled_from(KN_PAIRS))
    data = draw(st.binary(min_size=1, max_size=256))
    return data, k, n


@given(data_and_code())
@settings(max_examples=60, deadline=None)
def test_decode_from_any_k_of_n(case):
    data, k, n = case
    stripes = encode_stripes(data, k, n)
    assert set(stripes) == set(range(n))
    assert all(len(s) == stripe_size(len(data), k) for s in stripes.values())
    for subset in itertools.combinations(range(n), k):
        chosen = {i: stripes[i] for i in subset}
        assert decode_stripes(chosen, k, n, len(data)) == data


@given(st.binary(min_size=1, max_size=512))
@settings(max_examples=30, deadline=None)
def test_k_equals_n_equals_one_is_identity(data):
    stripes = encode_stripes(data, 1, 1)
    assert stripes == {0: data}
    assert decode_stripes(stripes, 1, 1, len(data)) == data


def test_systematic_prefix_is_the_data():
    data = bytes(range(200))
    k, n = 4, 6
    stripes = encode_stripes(data, k, n)
    width = stripe_size(len(data), k)
    padded = data + b"\0" * (k * width - len(data))
    for i in range(k):
        assert stripes[i] == padded[i * width : (i + 1) * width]


def test_decode_needs_at_least_k_stripes():
    stripes = encode_stripes(b"hello world", 3, 5)
    partial = {0: stripes[0], 4: stripes[4]}
    with pytest.raises(ValueError):
        decode_stripes(partial, 3, 5, 11)


def test_decode_rejects_bad_stripe_index():
    stripes = encode_stripes(b"hello world", 2, 3)
    with pytest.raises(ValueError):
        decode_stripes({0: stripes[0], 7: stripes[1]}, 2, 3, 11)


def test_decode_rejects_mismatched_widths():
    stripes = encode_stripes(b"hello world", 2, 3)
    bad = {0: stripes[0], 1: stripes[1] + b"\0"}
    with pytest.raises(ValueError):
        decode_stripes(bad, 2, 3, 11)
