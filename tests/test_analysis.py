"""Tests for the statistical analysis helpers."""

import numpy as np
import pytest

from repro.analysis import bootstrap_ci, compare_paired, metric_ci
from repro.experiments import ExperimentSettings, default_schemes, paper_workload, run_comparison
from repro.sim import EvaluationResult, RequestMetrics


class TestBootstrapCi:
    def test_contains_true_mean_for_tight_data(self):
        rng = np.random.default_rng(0)
        data = rng.normal(100.0, 1.0, 500)
        lo, hi = bootstrap_ci(data, seed=1)
        assert lo < 100.0 < hi
        assert hi - lo < 1.0  # narrow for n=500, sd=1

    def test_wider_for_noisier_data(self):
        rng = np.random.default_rng(0)
        tight = bootstrap_ci(rng.normal(0, 1, 200), seed=1)
        noisy = bootstrap_ci(rng.normal(0, 10, 200), seed=1)
        assert (noisy[1] - noisy[0]) > (tight[1] - tight[0])

    def test_single_value_degenerate(self):
        assert bootstrap_ci([5.0]) == (5.0, 5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_invalid_confidence_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)

    def test_reproducible(self):
        data = [1.0, 5.0, 3.0, 8.0, 2.0]
        assert bootstrap_ci(data, seed=3) == bootstrap_ci(data, seed=3)

    def test_custom_statistic(self):
        data = np.arange(100.0)
        lo, hi = bootstrap_ci(data, stat=np.median, seed=2)
        assert lo < 49.5 < hi or lo <= 49.5 <= hi


def _result(scheme, responses, request_ids=None):
    res = EvaluationResult(scheme=scheme)
    ids = request_ids or list(range(len(responses)))
    for rid, r in zip(ids, responses):
        res.append(
            RequestMetrics(rid, size_mb=1000.0, response_s=r, seek_s=1.0,
                           transfer_s=r / 2, num_tapes=1, num_switches=0, num_drives=1)
        )
    return res


class TestComparePaired:
    def test_clear_difference_is_significant(self):
        a = _result("fast", [10.0 + i * 0.1 for i in range(50)])
        b = _result("slow", [20.0 + i * 0.1 for i in range(50)])
        cmp = compare_paired(a, b)
        assert cmp.significant
        assert cmp.mean_diff == pytest.approx(-10.0)
        assert cmp.frac_a_lower == 1.0

    def test_identical_results_not_significant(self):
        a = _result("x", [10.0, 12.0, 14.0])
        b = _result("y", [10.0, 12.0, 14.0])
        cmp = compare_paired(a, b)
        assert not cmp.significant
        assert cmp.mean_diff == 0.0

    def test_mismatched_streams_rejected(self):
        a = _result("x", [1.0, 2.0], request_ids=[0, 1])
        b = _result("y", [1.0, 2.0], request_ids=[1, 0])
        with pytest.raises(ValueError, match="same sampled request stream"):
            compare_paired(a, b)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            compare_paired(_result("x", [1.0]), _result("y", [1.0, 2.0]))

    def test_str_mentions_verdict(self):
        a = _result("fast", [10.0] * 20)
        b = _result("slow", [30.0] * 20)
        assert "significant" in str(compare_paired(a, b))


class TestOnRealRuns:
    @pytest.fixture(scope="class")
    def results(self):
        settings = ExperimentSettings(scale="small", num_samples=30)
        workload = paper_workload(settings)
        return run_comparison(
            workload, settings.spec(), default_schemes(), 30, seed=11
        )

    def test_metric_ci_brackets_the_mean(self, results):
        r = results["parallel_batch"]
        lo, hi = metric_ci(r, "response_s", seed=2)
        assert lo <= r.avg_response_s <= hi

    def test_parallel_batch_beats_object_probability_significantly(self, results):
        cmp = compare_paired(
            results["parallel_batch"], results["object_probability"], "response_s"
        )
        assert cmp.mean_diff < 0  # faster
        assert cmp.significant
