"""Tests for the FCFS queueing extension."""

import pytest

from repro.hardware import DriveSpec, LibrarySpec, SystemSpec, TapeSpec
from repro.placement import ObjectProbabilityPlacement, ParallelBatchPlacement
from repro.sim import QueuedRequestRecord, SimulationSession, simulate_fcfs_queue
from repro.workload import generate_workload


@pytest.fixture(scope="module")
def session():
    workload = generate_workload(
        num_objects=400,
        num_requests=25,
        request_size_bounds=(5, 12),
        object_size_bounds_mb=(10.0, 500.0),
        mean_object_size_mb=120.0,
        seed=21,
    )
    spec = SystemSpec(
        num_libraries=2,
        library=LibrarySpec(
            num_drives=4,
            num_tapes=12,
            cell_to_drive_s=2.0,
            drive=DriveSpec(transfer_rate_mb_s=10.0, load_s=5.0, unload_s=5.0),
            tape=TapeSpec(capacity_mb=10_000.0, max_rewind_s=10.0),
        ),
    )
    return SimulationSession(workload, spec, scheme=ParallelBatchPlacement(m=2))


class TestRecord:
    def test_derived_times(self):
        r = QueuedRequestRecord(0, arrival_s=10.0, start_s=15.0, finish_s=40.0, size_mb=100)
        assert r.wait_s == 5.0
        assert r.service_s == 25.0
        assert r.sojourn_s == 30.0


class TestSimulateFcfs:
    def test_validates_args(self, session):
        with pytest.raises(ValueError):
            simulate_fcfs_queue(session, arrival_rate_per_hour=0)
        with pytest.raises(ValueError):
            simulate_fcfs_queue(session, 10.0, num_arrivals=0)

    def test_records_one_per_arrival(self, session):
        result = simulate_fcfs_queue(session, 5.0, num_arrivals=20, seed=1)
        assert len(result) == 20

    def test_fcfs_ordering_invariants(self, session):
        result = simulate_fcfs_queue(session, 20.0, num_arrivals=25, seed=2)
        prev_finish = 0.0
        for r in result.records:
            assert r.start_s >= r.arrival_s - 1e-9  # no time travel
            assert r.start_s >= prev_finish - 1e-9  # one at a time, FCFS
            assert r.finish_s > r.start_s
            prev_finish = r.finish_s

    def test_low_load_has_no_waiting(self, session):
        """Arrivals much slower than service: waits collapse to ~zero."""
        result = simulate_fcfs_queue(session, 0.5, num_arrivals=15, seed=3)
        assert result.mean_wait_s < 0.05 * result.mean_service_s
        assert result.utilization < 0.5

    def test_overload_builds_queue(self, session):
        """Arrivals much faster than service: waiting dominates."""
        result = simulate_fcfs_queue(session, 2000.0, num_arrivals=30, seed=4)
        assert result.offered_load > 1.0
        assert result.mean_wait_s > result.mean_service_s
        assert result.utilization > 0.95

    def test_wait_increases_with_load(self, session):
        slow = simulate_fcfs_queue(session, 1.0, num_arrivals=25, seed=5)
        fast = simulate_fcfs_queue(session, 100.0, num_arrivals=25, seed=5)
        assert fast.mean_sojourn_s > slow.mean_sojourn_s

    def test_reproducible(self, session):
        a = simulate_fcfs_queue(session, 10.0, num_arrivals=15, seed=6)
        b = simulate_fcfs_queue(session, 10.0, num_arrivals=15, seed=6)
        assert a.mean_sojourn_s == pytest.approx(b.mean_sojourn_s)

    def test_percentiles_monotone(self, session):
        result = simulate_fcfs_queue(session, 50.0, num_arrivals=30, seed=7)
        assert result.sojourn_percentile(50) <= result.sojourn_percentile(95)

    def test_better_placement_wins_more_under_load(self, session):
        """The queueing amplification effect: the scheme gap in sojourn time
        at high load exceeds the gap in bare service time."""
        baseline = SimulationSession(
            session.workload, session.spec, scheme=ObjectProbabilityPlacement()
        )
        rate = 40.0
        pb = simulate_fcfs_queue(session, rate, num_arrivals=40, seed=8)
        op = simulate_fcfs_queue(baseline, rate, num_arrivals=40, seed=8)
        if op.mean_service_s > pb.mean_service_s:  # pb is the better scheme here
            service_gap = op.mean_service_s / pb.mean_service_s
            sojourn_gap = op.mean_sojourn_s / pb.mean_sojourn_s
            assert sojourn_gap > 0.9 * service_gap  # at least comparable
