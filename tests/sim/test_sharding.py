"""Sharded-run parity: ``shard_workers=N`` must match ``shard_workers=1``.

The sharding layer (:mod:`repro.sim.sharding`) claims per-library event
streams are identical between a single environment and per-library
shards whenever no cross-shard coupling exists.  These tests hold it to
that: every result surface — per-request records and metrics, latency
digest state (bit for bit, including the float ``sum``), the span
multiset, per-library resource summaries, counters — must be *equal*,
not approximately equal.  Unshardable configurations must warn and fall
back to the single-environment result, also exactly.

Wall-clock speedup is deliberately not asserted here (this is a tier-1
correctness suite; the ≥4-core-gated speedup assertion lives in
``benchmarks/bench_kernel.py``'s scale gate).
"""

import warnings

import pytest

from repro.hardware import DriveSpec, LibrarySpec, SystemSpec, TapeSpec
from repro.placement import ObjectProbabilityPlacement
from repro.sim import SimulationSession
from repro.sim.faults import DriveFaultProcess
from repro.sim.scheduling import partition_libraries
from repro.sim.sharding import shard_blockers
from repro.workload import generate_workload

RATE = 240.0
ARRIVALS = 40
SEED = 11


def _session(num_libraries=4, disk_bandwidth_mb_s=None):
    """Drive-starved multi-library system: small tapes force switches and
    robot contention inside every shard."""
    workload = generate_workload(
        num_objects=600,
        num_requests=25,
        request_size_bounds=(20, 40),
        object_size_bounds_mb=(10.0, 500.0),
        mean_object_size_mb=None,
        seed=21,
    )
    spec = SystemSpec(
        num_libraries=num_libraries,
        disk_bandwidth_mb_s=disk_bandwidth_mb_s,
        library=LibrarySpec(
            num_drives=2,
            num_tapes=60,
            cell_to_drive_s=2.0,
            drive=DriveSpec(transfer_rate_mb_s=10.0, load_s=5.0, unload_s=5.0),
            tape=TapeSpec(capacity_mb=1_000.0, max_rewind_s=10.0),
        ),
    )
    return SimulationSession(workload, spec, scheme=ObjectProbabilityPlacement())


def _run(shard_workers, **open_kwargs):
    opensys = _session().open(policy="concurrent", shard_workers=shard_workers, **open_kwargs)
    return opensys.run(RATE, num_arrivals=ARRIVALS, seed=SEED)


def _record_tuples(result):
    return [
        (r.request_id, r.arrival_s, r.start_s, r.finish_s, r.size_mb, r.aborted)
        for r in result.records
    ]


def _span_multiset(result):
    """Span identity minus allocation-order ids (merge allocates its own)."""
    return sorted(
        (s.name, s.start, s.end, s.request_id, tuple(sorted(s.attrs.items())))
        for s in result.spans()
    )


class TestShardedParity:
    @pytest.fixture(scope="class")
    def single(self):
        return _run(shard_workers=1)

    @pytest.fixture(scope="class")
    def sharded(self):
        return _run(shard_workers=4)

    def test_workload_exercises_switches(self, single):
        assert sum(m.num_switches for m in single.metrics) > 0

    def test_records_identical(self, single, sharded):
        assert _record_tuples(sharded) == _record_tuples(single)

    def test_metrics_identical(self, single, sharded):
        assert sharded.metrics == single.metrics

    def test_latency_digests_identical(self, single, sharded):
        for name in ("latency.sojourn_s", "latency.seek_s",
                     "latency.switch_s", "latency.transfer_s"):
            assert (
                sharded.registry.digests[name].to_dict()
                == single.registry.digests[name].to_dict()
            ), name

    def test_span_multiset_identical(self, single, sharded):
        assert _span_multiset(sharded) == _span_multiset(single)

    def test_span_tree_is_well_formed(self, sharded):
        spans = sharded.spans()
        ids = {s.span_id for s in spans}
        assert len(ids) == len(spans)  # remapped ids never collide
        roots = [s for s in spans if s.name == "request"]
        assert len(roots) == ARRIVALS
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in ids

    def test_counters_identical(self, single, sharded):
        for name in ("requests.arrived", "requests.completed",
                     "requests.aborted", "tape.switches", "fleet.horizon_s"):
            assert (
                sharded.registry.counters[name].value
                == single.registry.counters[name].value
            ), name

    def test_resource_summaries_identical(self, single, sharded):
        assert sharded.resources == single.resources

    def test_in_flight_gauge_identical(self, single, sharded):
        g1 = single.registry.gauges["requests.in_flight"]
        g2 = sharded.registry.gauges["requests.in_flight"]
        assert (g2.min, g2.max, g2.value, g2._integral) == (
            g1.min, g1.max, g1.value, g1._integral
        )

    def test_horizon_and_availability_identical(self, single, sharded):
        assert sharded.horizon_s == single.horizon_s
        assert sharded.availability == single.availability == 1.0

    def test_shard_count_does_not_change_results(self, single):
        two = _run(shard_workers=2)
        assert _record_tuples(two) == _record_tuples(single)
        assert two.metrics == single.metrics


class TestShardFallback:
    def test_faults_fall_back_with_warning(self):
        faulted_kwargs = dict(
            faults=(DriveFaultProcess(mtbf_s=1200.0, mttr_s=300.0),),
            fault_seed=5,
        )
        baseline = _session().open(policy="concurrent", **faulted_kwargs).run(
            RATE, num_arrivals=ARRIVALS, seed=SEED
        )
        with pytest.warns(RuntimeWarning, match="falling back"):
            sharded = _session().open(
                policy="concurrent", shard_workers=4, **faulted_kwargs
            ).run(RATE, num_arrivals=ARRIVALS, seed=SEED)
        assert _record_tuples(sharded) == _record_tuples(baseline)
        assert sharded.faults == baseline.faults

    def test_disk_cap_falls_back_with_warning(self):
        session = _session(disk_bandwidth_mb_s=20.0)
        with pytest.warns(RuntimeWarning, match="disk-stream cap"):
            session.open(policy="concurrent", shard_workers=2).run(
                RATE, num_arrivals=5, seed=SEED
            )

    def test_serial_policy_falls_back_with_warning(self):
        with pytest.warns(RuntimeWarning, match="policy"):
            _session().open(policy="serial-fcfs", shard_workers=2).run(
                RATE, num_arrivals=5, seed=SEED
            )

    def test_blockers_empty_for_shardable_config(self):
        opensys = _session().open(policy="concurrent", shard_workers=2)
        assert shard_blockers(opensys, reset=True, sample_period_s=None) == []

    def test_sample_period_blocks(self):
        opensys = _session().open(policy="concurrent", shard_workers=2)
        blockers = shard_blockers(opensys, reset=True, sample_period_s=60.0)
        assert any("sampling" in b for b in blockers)

    def test_single_library_runs_unsharded_without_warning(self):
        opensys = _session(num_libraries=1).open(policy="concurrent", shard_workers=4)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            result = opensys.run(RATE, num_arrivals=5, seed=SEED)
        assert len(result.records) == 5


class TestShardValidation:
    @pytest.mark.parametrize("bad", [0, -1, 1.5])
    def test_rejects_bad_shard_workers(self, bad):
        with pytest.raises(ValueError, match="shard_workers"):
            _session().open(policy="concurrent", shard_workers=bad)

    def test_partition_round_robin(self):
        assert partition_libraries(5, 2) == [[0, 2, 4], [1, 3]]
        assert partition_libraries(4, 4) == [[0], [1], [2], [3]]
        assert partition_libraries(3, 1) == [[0, 1, 2]]

    def test_partition_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            partition_libraries(2, 3)
        with pytest.raises(ValueError):
            partition_libraries(0, 1)
        with pytest.raises(ValueError):
            partition_libraries(2, 0)
