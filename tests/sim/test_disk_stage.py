"""Tests for the optional disk-stage bandwidth cap (Figure 1's disk cache)."""

import pytest

from repro.catalog import LocationIndex, Request
from repro.hardware import (
    DriveSpec,
    LibrarySpec,
    ObjectExtent,
    SystemSpec,
    TapeId,
    TapeSpec,
    TapeSystem,
)
from repro.sim import simulate_request


def make_system(disk_bandwidth=None):
    spec = SystemSpec(
        num_libraries=1,
        library=LibrarySpec(
            num_drives=2,
            num_tapes=4,
            cell_to_drive_s=2.0,
            drive=DriveSpec(transfer_rate_mb_s=10.0, load_s=5.0, unload_s=5.0),
            tape=TapeSpec(capacity_mb=1000.0, max_rewind_s=10.0),
        ),
        disk_bandwidth_mb_s=disk_bandwidth,
    )
    system = TapeSystem(spec)
    lib = system.library(0)
    lib.tape(TapeId(0, 0)).write_layout([ObjectExtent(1, 0, 100.0)])
    lib.tape(TapeId(0, 1)).write_layout([ObjectExtent(2, 0, 100.0)])
    lib.drives[0].mount(lib.tape(TapeId(0, 0)))
    lib.drives[1].mount(lib.tape(TapeId(0, 1)))
    return system, LocationIndex.from_system(system)


class TestSpec:
    def test_default_unlimited(self):
        assert SystemSpec().disk_streams is None

    def test_streams_floor_of_ratio(self):
        spec = SystemSpec(disk_bandwidth_mb_s=250.0)  # 250 / 80 -> 3
        assert spec.disk_streams == 3

    def test_streams_at_least_one(self):
        spec = SystemSpec(disk_bandwidth_mb_s=10.0)
        assert spec.disk_streams == 1

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            SystemSpec(disk_bandwidth_mb_s=0.0)


class TestEngineWithDiskCap:
    def test_unlimited_disk_transfers_in_parallel(self):
        system, index = make_system(disk_bandwidth=None)
        m = simulate_request(system, index, Request(0, (1, 2), 1.0))
        assert m.response_s == pytest.approx(10.0)  # both stream at once

    def test_single_stream_serializes_transfers(self):
        # 10 MB/s disk admits exactly one 10 MB/s drive stream.
        system, index = make_system(disk_bandwidth=10.0)
        m = simulate_request(system, index, Request(0, (1, 2), 1.0))
        assert m.response_s == pytest.approx(20.0)

    def test_wide_disk_behaves_like_unlimited(self):
        system, index = make_system(disk_bandwidth=1000.0)
        m = simulate_request(system, index, Request(0, (1, 2), 1.0))
        assert m.response_s == pytest.approx(10.0)

    def test_disk_wait_shows_up_as_switch_time(self):
        """The paper's decomposition books non-seek/transfer time as switch;
        disk queueing lands there for the critical drive."""
        system, index = make_system(disk_bandwidth=10.0)
        m = simulate_request(system, index, Request(0, (1, 2), 1.0))
        # critical drive waited 10 s for the disk slot
        assert m.switch_s == pytest.approx(10.0)
        assert m.transfer_s == pytest.approx(10.0)
