"""Tests for the pluggable seek-planner layer (registry + LTSP solvers)."""

import dataclasses

import pytest
from hypothesis import given, settings as hyp_settings
from hypothesis import strategies as st

from repro.hardware import ObjectExtent, TapeSpec
from repro.sim import (
    DEFAULT_SEEK_PLANNER,
    GreedySweepPlanner,
    SeekPlanner,
    available_seek_planners,
    locate_cost,
    make_seek_planner,
    plan_retrieval,
    register_seek_planner,
    resolve_seek_planner,
)
from repro.sim import seekplanner as seekplanner_mod


@pytest.fixture
def spec():
    return TapeSpec(capacity_mb=1000.0, max_rewind_s=10.0)


@pytest.fixture
def startup_spec():
    return TapeSpec(capacity_mb=1000.0, max_rewind_s=10.0, locate_startup_s=2.0)


def ext(oid, start, size=10.0):
    return ObjectExtent(object_id=oid, start_mb=start, size_mb=size)


class TestRegistry:
    def test_all_four_planners_registered(self):
        assert set(available_seek_planners()) >= {
            "greedy-sweep",
            "exact",
            "approx",
            "k-lookahead",
        }

    def test_default_is_greedy_sweep(self):
        assert DEFAULT_SEEK_PLANNER == "greedy-sweep"
        assert resolve_seek_planner(None).name == "greedy-sweep"

    def test_resolve_none_returns_shared_singleton(self):
        assert resolve_seek_planner(None) is resolve_seek_planner(None)

    def test_make_round_trips_every_registered_name(self):
        for name in available_seek_planners():
            planner = make_seek_planner(name)
            assert isinstance(planner, SeekPlanner)
            assert planner.name == name

    def test_resolve_accepts_name_and_instance(self):
        by_name = resolve_seek_planner("exact")
        assert by_name.name == "exact"
        instance = GreedySweepPlanner()
        assert resolve_seek_planner(instance) is instance

    def test_unknown_name_lists_known(self):
        with pytest.raises(KeyError, match="greedy-sweep"):
            make_seek_planner("zigzag")
        with pytest.raises(KeyError):
            resolve_seek_planner("zigzag")

    def test_register_custom_planner(self):
        class ReversedPlanner(SeekPlanner):
            name = "test-reversed"

            def plan(self, extents, head_mb, spec):
                ordered = list(reversed(extents))
                return ordered, locate_cost(ordered, head_mb, spec)

        register_seek_planner(ReversedPlanner.name, ReversedPlanner)
        try:
            assert "test-reversed" in available_seek_planners()
            assert make_seek_planner("test-reversed").name == "test-reversed"
        finally:
            del seekplanner_mod._REGISTRY["test-reversed"]


def _all_planners():
    return [make_seek_planner(name) for name in available_seek_planners()]


# Integer starts with size 1.0 keep extents disjoint (gap >= size): distinct
# objects occupy disjoint tape regions, and the exact planner's turn-point
# optimality theorem assumes exactly that — overlapping extents can make a
# "suboptimal" order cheaper by reading through a later extent's region.
extent_sets = st.lists(
    st.integers(min_value=0, max_value=900),
    min_size=0,
    max_size=9,
    unique=True,
).map(lambda starts: [ext(i, float(s), size=1.0) for i, s in enumerate(starts)])

heads = st.floats(min_value=0.0, max_value=1000.0, allow_nan=False)


class TestPlannerProperties:
    @hyp_settings(max_examples=60, deadline=None)
    @given(extent_sets, heads, st.sampled_from([0.0, 2.0]))
    def test_every_planner_returns_a_permutation(self, extents, head, startup):
        spec = TapeSpec(1000.0, 10.0, locate_startup_s=startup)
        for planner in _all_planners():
            ordered, cost = planner.plan(extents, head, spec)
            assert sorted(e.object_id for e in ordered) == sorted(
                e.object_id for e in extents
            )
            assert cost >= 0.0

    @hyp_settings(max_examples=60, deadline=None)
    @given(extent_sets, heads, st.sampled_from([0.0, 2.0]))
    def test_reported_cost_prices_the_returned_order(self, extents, head, startup):
        spec = TapeSpec(1000.0, 10.0, locate_startup_s=startup)
        for planner in _all_planners():
            ordered, cost = planner.plan(extents, head, spec)
            assert cost == pytest.approx(locate_cost(ordered, head, spec))

    @hyp_settings(max_examples=60, deadline=None)
    @given(extent_sets, heads, st.sampled_from([0.0, 0.5, 2.0]))
    def test_exact_never_loses_to_any_other_planner(self, extents, head, startup):
        spec = TapeSpec(1000.0, 10.0, locate_startup_s=startup)
        _, exact_cost = make_seek_planner("exact").plan(extents, head, spec)
        for planner in _all_planners():
            _, cost = planner.plan(extents, head, spec)
            assert exact_cost <= cost + 1e-9

    @hyp_settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=900.0, allow_nan=False),
            min_size=0,
            max_size=1,
            unique=True,
        ),
        heads,
    )
    def test_planners_agree_on_empty_and_singleton(self, starts, head):
        spec = TapeSpec(1000.0, 10.0, locate_startup_s=2.0)
        extents = [ext(i, s) for i, s in enumerate(starts)]
        reference, ref_cost = plan_retrieval(extents, head, spec)
        for planner in _all_planners():
            ordered, cost = planner.plan(extents, head, spec)
            assert ordered == reference
            assert cost == pytest.approx(ref_cost)


class TestGreedyDelegates:
    def test_greedy_matches_plan_retrieval_exactly(self, spec):
        extents = [ext(1, 500.0), ext(2, 100.0), ext(3, 800.0), ext(4, 300.0)]
        assert GreedySweepPlanner().plan(extents, 400.0, spec) == plan_retrieval(
            extents, 400.0, spec
        )


class TestExactBeatsSweepSomewhere:
    def test_mixed_partition_beats_both_sweeps(self, startup_spec):
        """Two clusters far apart with a positive startup: serving the top
        cluster first (one turn-point) chains reads for free where either
        single sweep pays extra startup-laden locates."""
        extents = [
            ext(1, 10.0, 5.0),
            ext(2, 20.0, 5.0),
            ext(3, 800.0, 5.0),
            ext(4, 810.0, 5.0),
        ]
        head = 805.0
        _, greedy = plan_retrieval(extents, head, startup_spec)
        ordered, exact = make_seek_planner("exact").plan(
            extents, head, startup_spec
        )
        assert exact <= greedy
        assert exact == pytest.approx(locate_cost(ordered, head, startup_spec))

    def test_exact_matches_brute_force_on_small_sets(self, startup_spec):
        import itertools

        extents = [ext(1, 50.0), ext(2, 400.0), ext(3, 420.0), ext(4, 900.0)]
        for head in (0.0, 410.0, 950.0):
            best = min(
                locate_cost(list(perm), head, startup_spec)
                for perm in itertools.permutations(extents)
            )
            _, cost = make_seek_planner("exact").plan(extents, head, startup_spec)
            assert cost == pytest.approx(best)
