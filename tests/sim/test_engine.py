"""Scenario tests for the request-service engine with hand-computed timings.

Fixture hardware (easy numbers):
  tape: 1000 MB, full traverse 10 s  -> locate/rewind rate 100 MB/s
  drive: 10 MB/s transfer, load 5 s, unload 5 s
  robot: 2 s per cell<->drive move   -> exchange (return+fetch) = 4 s
"""

import pytest

from repro.catalog import LocationIndex, Request
from repro.des import Trace
from repro.hardware import (
    DriveSpec,
    LibrarySpec,
    SystemSpec,
    TapeId,
    TapeSpec,
    TapeSystem,
)
from repro.sim import mounted_response, simulate_request, uncontended_switch_time


def make_system(num_libraries=1, num_drives=2, num_tapes=4):
    spec = SystemSpec(
        num_libraries=num_libraries,
        library=LibrarySpec(
            num_drives=num_drives,
            num_tapes=num_tapes,
            cell_to_drive_s=2.0,
            drive=DriveSpec(transfer_rate_mb_s=10.0, load_s=5.0, unload_s=5.0),
            tape=TapeSpec(capacity_mb=1000.0, max_rewind_s=10.0),
        ),
    )
    return TapeSystem(spec), spec


def place(system, tape_id, objects):
    """objects: list of (object_id, start, size)."""
    tape = system.tape(tape_id)
    from repro.hardware import ObjectExtent

    tape.write_layout([ObjectExtent(o, s, z) for o, s, z in objects])


class TestMountedService:
    def test_single_object_on_mounted_tape(self):
        system, _ = make_system()
        place(system, TapeId(0, 0), [(1, 0.0, 100.0)])
        system.library(0).drives[0].mount(system.tape(TapeId(0, 0)))
        index = LocationIndex.from_system(system)

        m = simulate_request(system, index, Request(0, (1,), 1.0))
        assert m.response_s == pytest.approx(10.0)  # 100 MB at 10 MB/s
        assert m.seek_s == 0.0
        assert m.transfer_s == pytest.approx(10.0)
        assert m.switch_s == pytest.approx(0.0)
        assert m.num_switches == 0

    def test_two_objects_single_sweep(self):
        system, _ = make_system()
        place(system, TapeId(0, 0), [(1, 0.0, 100.0), (2, 200.0, 100.0)])
        system.library(0).drives[0].mount(system.tape(TapeId(0, 0)))
        index = LocationIndex.from_system(system)

        m = simulate_request(system, index, Request(0, (1, 2), 1.0))
        # read 1 (10 s), locate 100->200 (1 s), read 2 (10 s)
        assert m.response_s == pytest.approx(21.0)
        assert m.seek_s == pytest.approx(1.0)
        assert m.transfer_s == pytest.approx(20.0)

    def test_parallel_mounted_drives(self):
        system, _ = make_system()
        place(system, TapeId(0, 0), [(1, 0.0, 100.0)])
        place(system, TapeId(0, 1), [(2, 0.0, 300.0)])
        system.library(0).drives[0].mount(system.tape(TapeId(0, 0)))
        system.library(0).drives[1].mount(system.tape(TapeId(0, 1)))
        index = LocationIndex.from_system(system)

        m = simulate_request(system, index, Request(0, (1, 2), 1.0))
        # slower drive: 300 MB -> 30 s; the critical drive's decomposition
        assert m.response_s == pytest.approx(30.0)
        assert m.transfer_s == pytest.approx(30.0)
        assert m.num_drives == 2

    def test_matches_analytic_model(self):
        system, _ = make_system()
        place(system, TapeId(0, 0), [(1, 50.0, 100.0), (2, 400.0, 50.0)])
        place(system, TapeId(0, 1), [(3, 0.0, 200.0)])
        system.library(0).drives[0].mount(system.tape(TapeId(0, 0)))
        system.library(0).drives[1].mount(system.tape(TapeId(0, 1)))
        index = LocationIndex.from_system(system)
        request = Request(0, (1, 2, 3), 1.0)

        expected = mounted_response(system, index, request)  # pure, no mutation
        actual = simulate_request(system, index, request)
        assert actual.response_s == pytest.approx(expected.response_s)
        assert actual.seek_s == pytest.approx(expected.seek_s)
        assert actual.transfer_s == pytest.approx(expected.transfer_s)


class TestSwitching:
    def test_mount_into_empty_drive(self):
        system, _ = make_system()
        place(system, TapeId(0, 2), [(1, 0.0, 100.0)])
        index = LocationIndex.from_system(system)

        m = simulate_request(system, index, Request(0, (1,), 1.0))
        # fetch 2 + load 5 + transfer 10
        assert m.response_s == pytest.approx(17.0)
        assert m.switch_s == pytest.approx(7.0)
        assert m.num_switches == 1

    def test_displacement_switch(self):
        # Single drive: the unrelated mounted tape must be displaced.
        system, spec = make_system(num_drives=1)
        place(system, TapeId(0, 0), [(9, 0.0, 500.0)])  # unrelated mounted tape
        place(system, TapeId(0, 2), [(1, 0.0, 100.0)])
        drive = system.library(0).drives[0]
        drive.mount(system.tape(TapeId(0, 0)))
        system.tape(TapeId(0, 0)).head_mb = 500.0  # mid-tape head
        index = LocationIndex.from_system(system)

        m = simulate_request(system, index, Request(0, (1,), 1.0))
        # rewind 5 + unload 5 + exchange 4 + load 5 + transfer 10 = 29
        assert m.response_s == pytest.approx(29.0)
        assert m.switch_s == pytest.approx(19.0)
        # cross-check against the analytic lower bound:
        assert m.switch_s == pytest.approx(uncontended_switch_time(spec, 500.0))
        # Displaced tape is back in its cell, rewound.
        assert system.tape(TapeId(0, 0)).head_mb == 0.0
        assert drive.mounted.id == TapeId(0, 2)

    def test_robot_serializes_concurrent_switches(self):
        system, _ = make_system()
        place(system, TapeId(0, 2), [(1, 0.0, 100.0)])
        place(system, TapeId(0, 3), [(2, 0.0, 100.0)])
        index = LocationIndex.from_system(system)

        m = simulate_request(system, index, Request(0, (1, 2), 1.0))
        # Robot is held through fetch+load (constant-time mount op):
        # drive A: robot [0,7] (fetch 2 + load 5), xfer [7,17]
        # drive B: robot wait until 7, robot [7,14], xfer [14,24]
        assert m.response_s == pytest.approx(24.0)

    def test_independent_robots_across_libraries(self):
        system, _ = make_system(num_libraries=2)
        place(system, TapeId(0, 2), [(1, 0.0, 100.0)])
        place(system, TapeId(1, 2), [(2, 0.0, 100.0)])
        index = LocationIndex.from_system(system)

        m = simulate_request(system, index, Request(0, (1, 2), 1.0))
        # both libraries proceed in parallel: no cross-library robot wait
        assert m.response_s == pytest.approx(17.0)

    def test_single_drive_switches_sequentially(self):
        system, _ = make_system(num_drives=1, num_tapes=4)
        place(system, TapeId(0, 2), [(1, 0.0, 100.0)])
        place(system, TapeId(0, 3), [(2, 0.0, 100.0)])
        index = LocationIndex.from_system(system)

        m = simulate_request(system, index, Request(0, (1, 2), 1.0))
        # first: fetch 2 + load 5 + xfer 10 = 17 (head now at 100)
        # second: rewind 1 + unload 5 + exchange 4 + load 5 + xfer 10 = 42
        assert m.response_s == pytest.approx(42.0)
        assert m.num_switches == 2

    def test_lpt_longest_job_first(self):
        system, _ = make_system(num_drives=1, num_tapes=4)
        place(system, TapeId(0, 2), [(1, 0.0, 50.0)])     # short job
        place(system, TapeId(0, 3), [(2, 0.0, 500.0)])    # long job
        index = LocationIndex.from_system(system)
        trace = Trace()

        simulate_request(system, index, Request(0, (1, 2), 1.0), trace=trace)
        transfers = trace.spans("transfer")
        assert [s.attrs["object"] for s in transfers] == [2, 1]

    def test_pinned_drives_never_switch(self):
        system, _ = make_system(num_drives=2)
        place(system, TapeId(0, 0), [(9, 0.0, 10.0)])
        place(system, TapeId(0, 2), [(1, 0.0, 100.0)])
        pinned_drive = system.library(0).drives[0]
        pinned_drive.mount(system.tape(TapeId(0, 0)))
        pinned_drive.pinned = True
        index = LocationIndex.from_system(system)

        simulate_request(system, index, Request(0, (1,), 1.0))
        assert pinned_drive.mounted.id == TapeId(0, 0)  # untouched

    def test_all_pinned_library_uses_pinned_drive_as_last_resort(self):
        """Pinning is policy, not physics: when no unpinned drive exists,
        the pinned drive performs the switch rather than stranding the job."""
        system, _ = make_system(num_drives=1)
        place(system, TapeId(0, 0), [(9, 0.0, 10.0)])
        place(system, TapeId(0, 2), [(1, 0.0, 100.0)])
        drive = system.library(0).drives[0]
        drive.mount(system.tape(TapeId(0, 0)))
        drive.pinned = True
        index = LocationIndex.from_system(system)

        m = simulate_request(system, index, Request(0, (1,), 1.0))
        assert m.size_mb == pytest.approx(100.0)
        assert drive.mounted.id == TapeId(0, 2)  # pinned tape displaced

    def test_least_popular_mounted_tape_displaced_first(self):
        system, _ = make_system(num_drives=2)
        place(system, TapeId(0, 0), [(8, 0.0, 10.0)])  # popular tape
        place(system, TapeId(0, 1), [(9, 0.0, 10.0)])  # unpopular tape
        place(system, TapeId(0, 2), [(1, 0.0, 100.0)])
        system.library(0).drives[0].mount(system.tape(TapeId(0, 0)))
        system.library(0).drives[1].mount(system.tape(TapeId(0, 1)))
        index = LocationIndex.from_system(system)
        priority = {TapeId(0, 0): 0.9, TapeId(0, 1): 0.1}

        simulate_request(system, index, Request(0, (1,), 1.0), tape_priority=priority)
        # Popular tape survives; unpopular one was displaced.
        assert system.library(0).drives[0].mounted.id == TapeId(0, 0)
        assert system.library(0).drives[1].mounted.id == TapeId(0, 2)

    def test_mounted_switching_tape_served_before_unmount(self):
        """A mounted tape with requested objects serves them, then switches."""
        system, _ = make_system(num_drives=1)
        place(system, TapeId(0, 0), [(1, 0.0, 100.0)])
        place(system, TapeId(0, 2), [(2, 0.0, 100.0)])
        system.library(0).drives[0].mount(system.tape(TapeId(0, 0)))
        index = LocationIndex.from_system(system)
        trace = Trace()

        m = simulate_request(system, index, Request(0, (1, 2), 1.0), trace=trace)
        transfers = trace.spans("transfer")
        assert [s.attrs["object"] for s in transfers] == [1, 2]
        # serve 1 [0,10]; rewind 1 (head 100), unload 5, exchange 4, load 5,
        # xfer 10 -> 35
        assert m.response_s == pytest.approx(35.0)


class TestStatePersistence:
    def test_second_request_serves_from_cache(self):
        system, _ = make_system()
        place(system, TapeId(0, 2), [(1, 0.0, 100.0)])
        index = LocationIndex.from_system(system)
        request = Request(0, (1,), 1.0)

        first = simulate_request(system, index, request)
        assert first.response_s == pytest.approx(17.0)
        # Tape is now mounted with head at 100: seek back 1 s + transfer 10 s.
        second = simulate_request(system, index, request)
        assert second.response_s == pytest.approx(11.0)
        assert second.num_switches == 0

    def test_robot_wait_recorded(self):
        system, _ = make_system()
        place(system, TapeId(0, 2), [(1, 0.0, 100.0)])
        place(system, TapeId(0, 3), [(2, 0.0, 100.0)])
        index = LocationIndex.from_system(system)
        trace = Trace()
        simulate_request(system, index, Request(0, (1, 2), 1.0), trace=trace)
        waits = trace.spans("robot_wait")
        assert len(waits) == 1
        assert waits[0].duration == pytest.approx(7.0)  # fetch 2 + load 5

    def test_trace_disabled_by_default(self):
        system, _ = make_system()
        place(system, TapeId(0, 0), [(1, 0.0, 100.0)])
        system.library(0).drives[0].mount(system.tape(TapeId(0, 0)))
        index = LocationIndex.from_system(system)
        simulate_request(system, index, Request(0, (1,), 1.0))  # no crash
