"""End-to-end integration tests: workload -> placement -> simulation."""

import pytest

from repro.hardware import DriveSpec, LibrarySpec, SystemSpec, TapeSpec
from repro.placement import (
    ClusterProbabilityPlacement,
    ObjectProbabilityPlacement,
    ParallelBatchPlacement,
)
from repro.sim import SimulationSession, evaluate_scheme
from repro.workload import generate_workload


@pytest.fixture(scope="module")
def spec():
    return SystemSpec(
        num_libraries=2,
        library=LibrarySpec(
            num_drives=4,
            num_tapes=12,
            cell_to_drive_s=2.0,
            drive=DriveSpec(transfer_rate_mb_s=10.0, load_s=5.0, unload_s=5.0),
            tape=TapeSpec(capacity_mb=10_000.0, max_rewind_s=10.0),
        ),
    )


@pytest.fixture(scope="module")
def workload(spec):
    return generate_workload(
        num_objects=500,
        num_requests=30,
        request_size_bounds=(6, 15),
        object_size_bounds_mb=(10.0, 800.0),
        mean_object_size_mb=150.0,
        zipf_alpha=0.3,
        seed=99,
    )


SCHEMES = [
    ParallelBatchPlacement(m=2),
    ObjectProbabilityPlacement(),
    ClusterProbabilityPlacement(),
]


@pytest.mark.parametrize("scheme", SCHEMES, ids=lambda s: s.name)
class TestEndToEnd:
    def test_evaluation_is_complete_and_positive(self, scheme, workload, spec):
        result = evaluate_scheme(workload, spec, scheme, num_samples=20, seed=1)
        assert len(result) == 20
        assert result.avg_response_s > 0
        assert result.avg_bandwidth_mb_s > 0
        assert result.avg_transfer_s > 0
        assert result.avg_switch_s >= -1e-9  # float noise around zero
        assert result.avg_seek_s >= 0

    def test_all_requested_bytes_are_transferred(self, scheme, workload, spec):
        session = SimulationSession(workload, spec, scheme=scheme)
        request = workload.requests[0]
        metrics = session.serve(request)
        assert metrics.size_mb == pytest.approx(request.total_size_mb(workload.catalog))

    def test_deterministic_given_seed(self, scheme, workload, spec):
        a = evaluate_scheme(workload, spec, scheme, num_samples=10, seed=7)
        b = evaluate_scheme(workload, spec, scheme, num_samples=10, seed=7)
        assert a.avg_response_s == pytest.approx(b.avg_response_s)
        assert a.avg_switch_s == pytest.approx(b.avg_switch_s)

    def test_response_bounded_below_by_transfer_limit(self, scheme, workload, spec):
        """No request can beat (size / aggregate drive bandwidth)."""
        session = SimulationSession(workload, spec, scheme=scheme)
        for request in list(workload.requests)[:5]:
            m = session.serve(request)
            lower = m.size_mb / spec.aggregate_transfer_rate_mb_s
            assert m.response_s >= lower - 1e-9

    def test_switch_time_nonnegative(self, scheme, workload, spec):
        result = evaluate_scheme(workload, spec, scheme, num_samples=30, seed=3)
        for m in result.samples:
            assert m.switch_s >= -1e-9


class TestSessionMechanics:
    def test_requires_exactly_one_of_scheme_or_placement(self, workload, spec):
        with pytest.raises(ValueError):
            SimulationSession(workload, spec)
        scheme = ParallelBatchPlacement(m=2)
        placement = scheme.place(workload, spec)
        with pytest.raises(ValueError):
            SimulationSession(workload, spec, scheme=scheme, placement=placement)

    def test_precomputed_placement_accepted(self, workload, spec):
        placement = ParallelBatchPlacement(m=2).place(workload, spec)
        session = SimulationSession(workload, spec, placement=placement)
        assert session.scheme_name == "parallel_batch"

    def test_reset_restores_initial_state(self, workload, spec):
        session = SimulationSession(workload, spec, scheme=ParallelBatchPlacement(m=2))
        request = workload.requests[0]
        first = session.serve(request)
        session.serve(workload.requests[1])
        session.reset()
        again = session.serve(request)
        assert again.response_s == pytest.approx(first.response_s)

    def test_caching_effect_of_persistent_state(self, workload, spec):
        """Re-serving the same request immediately is never slower."""
        session = SimulationSession(workload, spec, scheme=ObjectProbabilityPlacement())
        request = workload.requests[0]
        first = session.serve(request)
        second = session.serve(request)
        assert second.response_s <= first.response_s + 1e-9
        assert second.num_switches == 0

    def test_warmup_discards_samples(self, workload, spec):
        session = SimulationSession(workload, spec, scheme=ObjectProbabilityPlacement())
        result = session.evaluate(num_samples=5, warmup=3, seed=2)
        assert len(result) == 5

    def test_trace_collects_spans(self, workload, spec):
        session = SimulationSession(
            workload, spec, scheme=ObjectProbabilityPlacement(), trace=True
        )
        session.serve(workload.requests[0])
        assert len(session.trace.spans("transfer")) > 0

    def test_pinned_tapes_stay_mounted_through_evaluation(self, workload, spec):
        session = SimulationSession(workload, spec, scheme=ParallelBatchPlacement(m=2))
        pinned = set(session.placement.pinned)
        session.evaluate(num_samples=15, seed=5)
        mounted = set(session.system.mounted_tape_ids())
        assert pinned <= mounted
