"""Tests for within-tape sweep planning."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import ObjectExtent, TapeSpec
from repro.sim import plan_retrieval, sweep_cost


@pytest.fixture
def spec():
    # 1000 MB tape traversed in 10 s -> locate rate 100 MB/s.
    return TapeSpec(capacity_mb=1000, max_rewind_s=10)


def ext(oid, start, size=10.0):
    return ObjectExtent(oid, start, size)


class TestSweepCost:
    def test_empty(self, spec):
        assert sweep_cost([], 0.0, spec, ascending=True) == 0.0

    def test_ascending_from_bot(self, spec):
        # extents at 100 and 300 (sizes 10): seek 0->100 (1s), 110->300 (1.9s)
        cost = sweep_cost([ext(1, 100), ext(2, 300)], 0.0, spec, ascending=True)
        assert cost == pytest.approx(1.0 + 1.9)

    def test_descending_from_eot(self, spec):
        # head at 1000: 1000->300 (7s), read to 310, 310->100 (2.1s)
        cost = sweep_cost([ext(1, 100), ext(2, 300)], 1000.0, spec, ascending=False)
        assert cost == pytest.approx(7.0 + 2.1)


class TestPlanRetrieval:
    def test_empty(self, spec):
        order, cost = plan_retrieval([], 50.0, spec)
        assert order == [] and cost == 0.0

    def test_prefers_ascending_from_bot(self, spec):
        order, _ = plan_retrieval([ext(2, 300), ext(1, 100)], 0.0, spec)
        assert [e.object_id for e in order] == [1, 2]

    def test_prefers_descending_from_eot(self, spec):
        order, _ = plan_retrieval([ext(1, 100), ext(2, 300)], 900.0, spec)
        assert [e.object_id for e in order] == [2, 1]

    def test_cost_matches_chosen_direction(self, spec):
        extents = [ext(1, 100), ext(2, 300), ext(3, 700)]
        _, cost = plan_retrieval(extents, 0.0, spec)
        assert cost == pytest.approx(sweep_cost(extents, 0.0, spec, ascending=True))

    def test_single_extent(self, spec):
        order, cost = plan_retrieval([ext(1, 500)], 0.0, spec)
        assert [e.object_id for e in order] == [1]
        assert cost == pytest.approx(5.0)

    @given(
        starts=st.lists(
            st.floats(min_value=0, max_value=900, allow_nan=False),
            min_size=1,
            max_size=10,
            unique=True,
        ),
        head=st.floats(min_value=0, max_value=1000, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_chosen_sweep_never_worse_than_either_direction(self, starts, head):
        spec = TapeSpec(capacity_mb=2000, max_rewind_s=10)
        extents = [ObjectExtent(i, s, 1.0) for i, s in enumerate(sorted(starts))]
        _, cost = plan_retrieval(extents, head, spec)
        up = sweep_cost(extents, head, spec, ascending=True)
        down = sweep_cost(extents, head, spec, ascending=False)
        assert cost == pytest.approx(min(up, down))
